//! Property tests for the storage substrate and its oracles.

use rtdb_storage::*;
use rtdb_types::*;
use rtdb_util::prop::{forall, vec_of, CASES};
use rtdb_util::Rng;

/// A tiny program: a list of (is_write, item) ops per transaction.
type Program = Vec<(bool, u32)>;

fn arb_programs(rng: &mut Rng) -> Vec<Program> {
    vec_of(rng, 1..5, |rng| {
        vec_of(rng, 1..5, |rng| (rng.bool(), rng.range_u32(0..5)))
    })
}

/// Build a transaction set from programs (unit durations).
fn set_of(programs: &[Program]) -> TransactionSet {
    let mut b = SetBuilder::new();
    for (i, prog) in programs.iter().enumerate() {
        let steps: Vec<Step> = prog
            .iter()
            .map(|&(w, item)| {
                if w {
                    Step::write(ItemId(item), 1)
                } else {
                    Step::read(ItemId(item), 1)
                }
            })
            .collect();
        let period = (steps.len() as u64 + 1) * 10;
        b.add(TransactionTemplate::new(format!("t{i}"), period, steps));
    }
    b.build().unwrap()
}

/// Execute the programs strictly serially (in the given order), recording
/// a faithful history.
fn run_serial(set: &TransactionSet, order: &[usize]) -> (History, Database) {
    let mut db = Database::new();
    let mut h = History::new();
    for &idx in order {
        let who = InstanceId::first(TxnId(idx as u32));
        let template = set.template(who.txn);
        h.push(Tick(0), who, EventKind::Begin);
        let mut ws = Workspace::new(who);
        for (i, step) in template.steps.iter().enumerate() {
            match step.op {
                Operation::Read(item) => {
                    let rec = ws.read(&db, item);
                    h.push(
                        Tick(1),
                        who,
                        EventKind::Read {
                            item,
                            value: rec.value,
                            version: rec.version,
                            own: rec.own,
                        },
                    );
                }
                Operation::Write(item) => {
                    let v = ws.write(i, item);
                    h.push(Tick(1), who, EventKind::StageWrite { item, value: v });
                }
                Operation::Compute => {}
            }
        }
        h.push(Tick(2), who, EventKind::Commit);
        for (item, value, version) in ws.commit_into(&mut db, Tick(2)) {
            h.push(
                Tick(2),
                who,
                EventKind::Install {
                    item,
                    value,
                    version,
                },
            );
        }
    }
    (h, db)
}

/// Any strictly serial execution passes both oracles.
#[test]
fn serial_histories_pass_both_oracles() {
    forall(CASES, |rng| {
        let programs = arb_programs(rng);
        let set = set_of(&programs);
        let order: Vec<usize> = (0..programs.len()).collect();
        let (h, db) = run_serial(&set, &order);

        let graph = SerializationGraph::build(&h);
        assert!(graph.find_cycle().is_none());

        let replay = replay_serial(&set, &h, &db);
        assert!(replay.is_serializable(), "{:?}", replay.violations);
    });
}

/// Serial execution in *any* order passes (commit order is the serial
/// order by construction).
#[test]
fn serial_in_reverse_order_passes() {
    forall(CASES, |rng| {
        let programs = arb_programs(rng);
        let set = set_of(&programs);
        let order: Vec<usize> = (0..programs.len()).rev().collect();
        let (h, db) = run_serial(&set, &order);
        assert!(replay_serial(&set, &h, &db).is_serializable());
        assert!(SerializationGraph::build(&h).find_cycle().is_none());
    });
}

/// The serialization graph's topological order always replays clean
/// on serial histories, and equals a valid serialization order.
#[test]
fn topological_order_exists_for_serial() {
    forall(CASES, |rng| {
        let programs = arb_programs(rng);
        let set = set_of(&programs);
        let order: Vec<usize> = (0..programs.len()).collect();
        let (h, _db) = run_serial(&set, &order);
        let graph = SerializationGraph::build(&h);
        let topo = graph.topological_order();
        assert!(topo.is_some());
        assert_eq!(topo.unwrap().len(), programs.len());
    });
}

/// Workspace invariants: reads of own staged writes return the staged
/// value; commit installs exactly the staged items; versions bump by
/// one per install.
#[test]
fn workspace_roundtrip() {
    forall(CASES, |rng| {
        let writes = vec_of(rng, 1..8, |rng| rng.range_u32(0..6));
        let mut db = Database::new();
        let who = InstanceId::first(TxnId(0));
        let mut ws = Workspace::new(who);
        for (i, &item) in writes.iter().enumerate() {
            let staged = ws.write(i, ItemId(item));
            let r = ws.read(&db, ItemId(item));
            assert!(r.own);
            assert_eq!(r.value, staged);
        }
        let distinct: std::collections::BTreeSet<u32> = writes.iter().copied().collect();
        let installed = ws.commit_into(&mut db, Tick(1));
        assert_eq!(installed.len(), distinct.len());
        for (item, value, version) in installed {
            assert_eq!(db.read(item).value, value);
            assert_eq!(db.read(item).version, version);
            assert_eq!(version, 1); // first writer of each item
        }
    });
}

/// Database version counters are per-item and monotonically increase
/// by one per install.
#[test]
fn version_monotonicity() {
    forall(CASES, |rng| {
        let ops = vec_of(rng, 1..20, |rng| (rng.range_u32(0..4), rng.next_u64()));
        let mut db = Database::new();
        let who = InstanceId::first(TxnId(0));
        let mut expected: std::collections::BTreeMap<u32, u64> = Default::default();
        for (i, &(item, val)) in ops.iter().enumerate() {
            let v = db.install(who, ItemId(item), Value(val), Tick(i as u64));
            let e = expected.entry(item).or_insert(0);
            *e += 1;
            assert_eq!(v, *e);
            assert_eq!(db.read(ItemId(item)).value, Value(val));
        }
    });
}
