//! Property tests for the storage substrate and its oracles.

use rtdb_storage::*;
use rtdb_types::*;
use rtdb_util::prop::{forall, vec_of, CASES};
use rtdb_util::Rng;

/// A tiny program: a list of (is_write, item) ops per transaction.
type Program = Vec<(bool, u32)>;

fn arb_programs(rng: &mut Rng) -> Vec<Program> {
    vec_of(rng, 1..5, |rng| {
        vec_of(rng, 1..5, |rng| (rng.bool(), rng.range_u32(0..5)))
    })
}

/// Build a transaction set from programs (unit durations).
fn set_of(programs: &[Program]) -> TransactionSet {
    let mut b = SetBuilder::new();
    for (i, prog) in programs.iter().enumerate() {
        let steps: Vec<Step> = prog
            .iter()
            .map(|&(w, item)| {
                if w {
                    Step::write(ItemId(item), 1)
                } else {
                    Step::read(ItemId(item), 1)
                }
            })
            .collect();
        let period = (steps.len() as u64 + 1) * 10;
        b.add(TransactionTemplate::new(format!("t{i}"), period, steps));
    }
    b.build().unwrap()
}

/// Execute the programs strictly serially (in the given order), recording
/// a faithful history.
fn run_serial(set: &TransactionSet, order: &[usize]) -> (History, Database) {
    let mut db = Database::new();
    let mut h = History::new();
    for &idx in order {
        let who = InstanceId::first(TxnId(idx as u32));
        let template = set.template(who.txn);
        h.push(Tick(0), who, EventKind::Begin);
        let mut ws = Workspace::new(who);
        for (i, step) in template.steps.iter().enumerate() {
            match step.op {
                Operation::Read(item) => {
                    let rec = ws.read(&db, item);
                    h.push(
                        Tick(1),
                        who,
                        EventKind::Read {
                            item,
                            value: rec.value,
                            version: rec.version,
                            own: rec.own,
                        },
                    );
                }
                Operation::Write(item) => {
                    let v = ws.write(i, item);
                    h.push(Tick(1), who, EventKind::StageWrite { item, value: v });
                }
                Operation::Compute => {}
            }
        }
        h.push(Tick(2), who, EventKind::Commit);
        for (item, value, version) in ws.commit_into(&mut db, Tick(2)) {
            h.push(
                Tick(2),
                who,
                EventKind::Install {
                    item,
                    value,
                    version,
                },
            );
        }
    }
    (h, db)
}

/// Any strictly serial execution passes both oracles.
#[test]
fn serial_histories_pass_both_oracles() {
    forall(CASES, |rng| {
        let programs = arb_programs(rng);
        let set = set_of(&programs);
        let order: Vec<usize> = (0..programs.len()).collect();
        let (h, db) = run_serial(&set, &order);

        let graph = SerializationGraph::build(&h);
        assert!(graph.find_cycle().is_none());

        let replay = replay_serial(&set, &h, &db);
        assert!(replay.is_serializable(), "{:?}", replay.violations);
    });
}

/// Serial execution in *any* order passes (commit order is the serial
/// order by construction).
#[test]
fn serial_in_reverse_order_passes() {
    forall(CASES, |rng| {
        let programs = arb_programs(rng);
        let set = set_of(&programs);
        let order: Vec<usize> = (0..programs.len()).rev().collect();
        let (h, db) = run_serial(&set, &order);
        assert!(replay_serial(&set, &h, &db).is_serializable());
        assert!(SerializationGraph::build(&h).find_cycle().is_none());
    });
}

/// The serialization graph's topological order always replays clean
/// on serial histories, and equals a valid serialization order.
#[test]
fn topological_order_exists_for_serial() {
    forall(CASES, |rng| {
        let programs = arb_programs(rng);
        let set = set_of(&programs);
        let order: Vec<usize> = (0..programs.len()).collect();
        let (h, _db) = run_serial(&set, &order);
        let graph = SerializationGraph::build(&h);
        let topo = graph.topological_order();
        assert!(topo.is_some());
        assert_eq!(topo.unwrap().len(), programs.len());
    });
}

/// Workspace invariants: reads of own staged writes return the staged
/// value; commit installs exactly the staged items; versions bump by
/// one per install.
#[test]
fn workspace_roundtrip() {
    forall(CASES, |rng| {
        let writes = vec_of(rng, 1..8, |rng| rng.range_u32(0..6));
        let mut db = Database::new();
        let who = InstanceId::first(TxnId(0));
        let mut ws = Workspace::new(who);
        for (i, &item) in writes.iter().enumerate() {
            let staged = ws.write(i, ItemId(item));
            let r = ws.read(&db, ItemId(item));
            assert!(r.own);
            assert_eq!(r.value, staged);
        }
        let distinct: std::collections::BTreeSet<u32> = writes.iter().copied().collect();
        let installed = ws.commit_into(&mut db, Tick(1));
        assert_eq!(installed.len(), distinct.len());
        for (item, value, version) in installed {
            assert_eq!(db.read(item).value, value);
            assert_eq!(db.read(item).version, version);
            assert_eq!(version, 1); // first writer of each item
        }
    });
}

/// Database version counters are per-item and monotonically increase
/// by one per install.
#[test]
fn version_monotonicity() {
    forall(CASES, |rng| {
        let ops = vec_of(rng, 1..20, |rng| (rng.range_u32(0..4), rng.next_u64()));
        let mut db = Database::new();
        let who = InstanceId::first(TxnId(0));
        let mut expected: std::collections::BTreeMap<u32, u64> = Default::default();
        for (i, &(item, val)) in ops.iter().enumerate() {
            let v = db.install(who, ItemId(item), Value(val), Tick(i as u64));
            let e = expected.entry(item).or_insert(0);
            *e += 1;
            assert_eq!(v, *e);
            assert_eq!(db.read(ItemId(item)).value, Value(val));
        }
    });
}

// ---------------------------------------------------------------------
// Snapshot path properties: multiversion reads against a map-store
// oracle that keeps the *full* database state at every epoch.
// ---------------------------------------------------------------------

/// A random commit schedule: per commit, the set of `(item, value)`
/// writes it installs. Versions are derived per item (monotone +1).
type Schedule = Vec<Vec<(u32, u64)>>;

fn arb_schedule(rng: &mut Rng) -> Schedule {
    vec_of(rng, 1..30, |rng| {
        let mut items: Vec<u32> = vec_of(rng, 0..4, |rng| rng.range_u32(0..6));
        items.sort_unstable();
        items.dedup();
        items
            .into_iter()
            .map(|item| (item, rng.next_u64()))
            .collect()
    })
}

/// Map-store oracle: `states[s]` is the complete `item -> value` map
/// after exactly the first `s` commits — serial execution at the epoch,
/// with none of the chain/pruning machinery under test.
fn epoch_states(schedule: &Schedule) -> Vec<std::collections::BTreeMap<u32, VersionedValue>> {
    let mut versions: std::collections::BTreeMap<u32, u64> = Default::default();
    let mut states = vec![std::collections::BTreeMap::new()];
    for commit in schedule {
        let mut state = states.last().unwrap().clone();
        for &(item, value) in commit {
            let v = versions.entry(item).or_insert(0);
            *v += 1;
            state.insert(
                item,
                VersionedValue {
                    value: Value(value),
                    version: *v,
                    writer: Some(InstanceId::first(TxnId(0))),
                    installed_at: Tick::ZERO,
                },
            );
        }
        states.push(state);
    }
    states
}

/// Every `(stamp, item)` read of both stores equals serial execution at
/// that epoch, per the map-store oracle.
#[test]
fn snapshot_reads_equal_serial_execution_at_epoch() {
    forall(CASES, |rng| {
        let schedule = arb_schedule(rng);
        let states = epoch_states(&schedule);

        let mut mv = MvStore::new();
        let snap = SnapshotStore::new(6, 1);
        snap.pin(0); // hold stamp 0 so nothing is reclaimed mid-check
        let mut versions: std::collections::BTreeMap<u32, u64> = Default::default();
        for commit in &schedule {
            let writes: Vec<(ItemId, VersionedValue)> = commit
                .iter()
                .map(|&(item, value)| {
                    let v = versions.entry(item).or_insert(0);
                    *v += 1;
                    (
                        ItemId(item),
                        VersionedValue {
                            value: Value(value),
                            version: *v,
                            writer: Some(InstanceId::first(TxnId(0))),
                            installed_at: Tick::ZERO,
                        },
                    )
                })
                .collect();
            for &(item, vv) in &writes {
                mv.publish(item, vv);
            }
            mv.seal();
            snap.publish(&writes);
        }

        assert_eq!(mv.stamp(), schedule.len() as u64);
        assert_eq!(snap.stamp(), schedule.len() as u64);
        for (stamp, state) in states.iter().enumerate() {
            for item in 0..6u32 {
                let expect = state.get(&item).copied();
                let got_mv = mv.read_at(ItemId(item), stamp as u64);
                let got_snap = snap.read_at(ItemId(item), stamp as u64);
                assert_eq!(got_mv, expect, "MvStore at stamp {stamp}, item {item}");
                assert_eq!(
                    got_snap, expect,
                    "SnapshotStore at stamp {stamp}, item {item}"
                );
            }
        }
    });
}

/// Pruning at a random floor keeps every read at or above the floor
/// exact (the epoch-GC rule loses only unreachable history).
#[test]
fn prune_preserves_reads_at_or_above_floor() {
    forall(CASES, |rng| {
        let schedule = arb_schedule(rng);
        let states = epoch_states(&schedule);
        let mut mv = MvStore::new();
        let mut versions: std::collections::BTreeMap<u32, u64> = Default::default();
        for commit in &schedule {
            for &(item, value) in commit {
                let v = versions.entry(item).or_insert(0);
                *v += 1;
                mv.publish(
                    ItemId(item),
                    VersionedValue {
                        value: Value(value),
                        version: *v,
                        writer: Some(InstanceId::first(TxnId(0))),
                        installed_at: Tick::ZERO,
                    },
                );
            }
            mv.seal();
        }
        let floor = rng.range_inclusive_u64(0, mv.stamp());
        mv.prune(floor);
        for stamp in floor..=mv.stamp() {
            for item in 0..6u32 {
                assert_eq!(
                    mv.read_at(ItemId(item), stamp),
                    states[stamp as usize].get(&item).copied(),
                    "after prune({floor}): stamp {stamp}, item {item}"
                );
            }
        }
    });
}

/// Memory flatness: an unpinned store soaked with far more publishes
/// than the sweep interval keeps every chain bounded by the interval
/// (plus the burst since the last sweep), and a pinned reader only ever
/// holds history back to its own stamp — released, the store collapses.
#[test]
fn epoch_gc_keeps_chains_flat() {
    forall(CASES, |rng| {
        let publishes = rng.range_inclusive_u64(700, 1_500);
        let hot_items = rng.range_inclusive_u64(1, 3) as u32;
        let snap = SnapshotStore::new(hot_items as usize, 2);
        let pin_at = rng.range_inclusive_u64(0, publishes / 2);
        let mut pinned = None;
        for i in 1..=publishes {
            if i == pin_at {
                pinned = Some(snap.pin(0));
            }
            let writes: Vec<(ItemId, VersionedValue)> = (0..hot_items)
                .map(|item| {
                    (
                        ItemId(item),
                        VersionedValue {
                            value: Value(i),
                            version: i,
                            writer: None,
                            installed_at: Tick::ZERO,
                        },
                    )
                })
                .collect();
            snap.publish(&writes);
        }
        // The pinned snapshot still reads exactly.
        if let Some(s) = pinned {
            let got = snap.read_at(ItemId(0), s);
            assert_eq!(got.map(|v| v.version), (s > 0).then_some(s));
            snap.unpin(0);
        }
        snap.advance_floor();
        // With no pins the chains collapse to one entry each, and the
        // latest state survives.
        assert_eq!(snap.max_chain_len(), 1);
        assert_eq!(
            snap.read_at(ItemId(0), snap.stamp()).map(|v| v.version),
            Some(publishes)
        );
    });
}
