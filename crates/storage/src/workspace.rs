//! Private transaction workspaces (the update-in-workspace model, paper §4).

use crate::db::{Database, Version};
use rtdb_types::{derive_write, InstanceId, ItemId, Value};

/// A record of one read performed by an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadRecord {
    /// Item read.
    pub item: ItemId,
    /// Value observed.
    pub value: Value,
    /// Committed version observed (0 = initial). Reads of the
    /// transaction's *own* staged write record the version it last
    /// observed from the store for that item, with `own = true`.
    pub version: Version,
    /// True if the value came from the instance's own staged write.
    pub own: bool,
}

/// The private workspace of one transaction instance.
///
/// Reads go to the committed store unless the instance has already staged a
/// write to the same item (a transaction sees its own updates). Writes are
/// staged locally and installed into the [`Database`] only at commit —
/// "data items are written into the database only upon successful commit"
/// (paper §4).
///
/// The workspace also maintains `DataRead(T_i)` — "the current set of data
/// items that transaction `T_i` has already read" — which the PCP-DA
/// locking condition LC4 consults.
///
/// Internally the staged writes and `DataRead` set are sorted `Vec`s rather
/// than tree maps: transactions touch a handful of items, so binary search
/// over a dense vector beats pointer-chasing, and [`Workspace::reset`] lets
/// the engine recycle the allocations across instances of the same
/// template.
#[derive(Clone, Debug)]
pub struct Workspace {
    owner: InstanceId,
    reads: Vec<ReadRecord>,
    /// Staged writes, sorted by item.
    staged: Vec<(ItemId, Value)>,
    /// `DataRead`, sorted.
    data_read: Vec<ItemId>,
    digest: Value,
    write_count: usize,
}

impl Workspace {
    /// Fresh workspace for `owner`.
    pub fn new(owner: InstanceId) -> Self {
        Self {
            owner,
            reads: Vec::new(),
            staged: Vec::new(),
            data_read: Vec::new(),
            digest: Value::INITIAL,
            write_count: 0,
        }
    }

    /// Clear all state and re-home the workspace to a new `owner`, keeping
    /// the buffers' capacity so recycled instances allocate nothing.
    pub fn reset(&mut self, owner: InstanceId) {
        self.owner = owner;
        self.reads.clear();
        self.staged.clear();
        self.data_read.clear();
        self.digest = Value::INITIAL;
        self.write_count = 0;
    }

    /// The owning instance.
    pub fn owner(&self) -> InstanceId {
        self.owner
    }

    /// The staged value for `item`, if this instance has written it.
    #[inline]
    pub fn staged_value(&self, item: ItemId) -> Option<Value> {
        self.staged
            .binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            .map(|idx| self.staged[idx].1)
    }

    #[inline]
    fn stage(&mut self, item: ItemId, value: Value) {
        match self.staged.binary_search_by_key(&item, |&(i, _)| i) {
            Ok(idx) => self.staged[idx].1 = value,
            Err(idx) => self.staged.insert(idx, (item, value)),
        }
        self.write_count += 1;
    }

    /// Perform a read: own staged write if present, otherwise the latest
    /// committed version. Records the read and folds the value into the
    /// read digest.
    pub fn read(&mut self, db: &Database, item: ItemId) -> ReadRecord {
        let committed = db.get(item);
        let rec = match self.staged_value(item) {
            Some(own_value) => ReadRecord {
                item,
                value: own_value,
                version: committed.version,
                own: true,
            },
            None => ReadRecord {
                item,
                value: committed.value,
                version: committed.version,
                own: false,
            },
        };
        self.reads.push(rec);
        // `DataRead` is the protocol-facing read set: the items whose
        // *committed pre-image* this transaction observed. A read served
        // from the transaction's own staged write cannot be invalidated by
        // any other writer's commit, so it does not enter the set (nor
        // does it take a read lock in the engine — the own write lock
        // covers it).
        if !rec.own {
            if let Err(idx) = self.data_read.binary_search(&item) {
                self.data_read.insert(idx, item);
            }
        }
        self.digest = self.digest.mix(rec.value);
        rec
    }

    /// Record a read served from a multiversion snapshot (the lock-exempt
    /// read-only path, see `crate::mvcc`). Snapshot readers never stage
    /// writes, so the observation can never be an own read; it still enters
    /// `DataRead` and the digest so histories and derived values stay
    /// comparable with the lock-based read path.
    pub fn read_versioned(&mut self, item: ItemId, value: Value, version: Version) -> ReadRecord {
        debug_assert!(
            self.staged.is_empty(),
            "snapshot readers never stage writes"
        );
        let rec = ReadRecord {
            item,
            value,
            version,
            own: false,
        };
        self.reads.push(rec);
        if let Err(idx) = self.data_read.binary_search(&item) {
            self.data_read.insert(idx, item);
        }
        self.digest = self.digest.mix(rec.value);
        rec
    }

    /// Record a **dirty** read: `value` is another transaction's
    /// uncommitted (early-released) write, `version` the version it is
    /// predicted to install at. Unlike [`Workspace::read_versioned`] the
    /// reader may stage writes of its own — early-release protocols mix
    /// dirty reads with updates — and like a committed-pre-image read the
    /// item enters `DataRead` (the read *can* be invalidated: a cascading
    /// abort discards it along with the whole instance).
    pub fn read_dirty(&mut self, item: ItemId, value: Value, version: Version) -> ReadRecord {
        debug_assert!(
            self.staged_value(item).is_none(),
            "own staged value shadows any dirty read"
        );
        let rec = ReadRecord {
            item,
            value,
            version,
            own: false,
        };
        self.reads.push(rec);
        if let Err(idx) = self.data_read.binary_search(&item) {
            self.data_read.insert(idx, item);
        }
        self.digest = self.digest.mix(rec.value);
        rec
    }

    /// Stage a write whose value is derived deterministically from the
    /// instance identity, the step index and everything read so far
    /// (see [`rtdb_types::derive_write`]). Returns the staged value.
    pub fn write(&mut self, step_index: usize, item: ItemId) -> Value {
        let value = derive_write(self.owner, step_index, item, self.digest);
        self.stage(item, value);
        value
    }

    /// Stage an explicit value (used by tests and by the replay oracle).
    pub fn write_value(&mut self, item: ItemId, value: Value) {
        self.stage(item, value);
    }

    /// `DataRead(T_i)`: the items whose committed pre-image this instance
    /// has observed (own-workspace reads excluded — they cannot be
    /// invalidated), sorted ascending.
    pub fn data_read(&self) -> &[ItemId] {
        &self.data_read
    }

    /// The staged (uncommitted) writes, sorted by item.
    pub fn staged_writes(&self) -> &[(ItemId, Value)] {
        &self.staged
    }

    /// The ordered log of reads.
    pub fn reads(&self) -> &[ReadRecord] {
        &self.reads
    }

    /// Current read digest (order-sensitive fold of all values read).
    pub fn digest(&self) -> Value {
        self.digest
    }

    /// Install all staged writes into the committed store. Returns the
    /// `(item, value, new_version)` triples in item order.
    pub fn commit_into(
        &self,
        db: &mut Database,
        at: rtdb_types::Tick,
    ) -> Vec<(ItemId, Value, Version)> {
        self.staged
            .iter()
            .map(|&(item, value)| {
                let version = db.install(self.owner, item, value, at);
                (item, value, version)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{Tick, TxnId};

    fn owner() -> InstanceId {
        InstanceId::first(TxnId(0))
    }

    #[test]
    fn reads_see_committed_values() {
        let mut db = Database::new();
        db.install(InstanceId::first(TxnId(9)), ItemId(0), Value(42), Tick(1));
        let mut ws = Workspace::new(owner());
        let r = ws.read(&db, ItemId(0));
        assert_eq!(r.value, Value(42));
        assert_eq!(r.version, 1);
        assert!(!r.own);
    }

    #[test]
    fn reads_see_own_staged_writes() {
        let db = Database::new();
        let mut ws = Workspace::new(owner());
        let staged = ws.write(0, ItemId(3));
        let r = ws.read(&db, ItemId(3));
        assert_eq!(r.value, staged);
        assert!(r.own);
    }

    #[test]
    fn staged_writes_are_invisible_until_commit() {
        let mut db = Database::new();
        let mut ws = Workspace::new(owner());
        ws.write(0, ItemId(0));
        // Another transaction still sees the initial value.
        assert_eq!(db.read(ItemId(0)).value, Value::INITIAL);

        let installed = ws.commit_into(&mut db, Tick(5));
        assert_eq!(installed.len(), 1);
        assert_eq!(db.read(ItemId(0)).value, installed[0].1);
        assert_eq!(db.read(ItemId(0)).version, 1);
    }

    #[test]
    fn data_read_tracks_items_not_values() {
        let db = Database::new();
        let mut ws = Workspace::new(owner());
        ws.read(&db, ItemId(1));
        ws.read(&db, ItemId(1));
        ws.read(&db, ItemId(2));
        assert_eq!(ws.data_read().len(), 2);
        assert!(ws.data_read().contains(&ItemId(1)));
        assert!(ws.data_read().contains(&ItemId(2)));
    }

    #[test]
    fn own_workspace_reads_stay_out_of_data_read() {
        let db = Database::new();
        let mut ws = Workspace::new(owner());
        ws.write(0, ItemId(3));
        ws.read(&db, ItemId(3)); // served from own staged write
        assert!(!ws.data_read().contains(&ItemId(3)));

        // But a committed-version read before the write does count.
        let mut ws2 = Workspace::new(owner());
        ws2.read(&db, ItemId(3));
        ws2.write(1, ItemId(3));
        ws2.read(&db, ItemId(3)); // now own
        assert!(ws2.data_read().contains(&ItemId(3)));
    }

    #[test]
    fn digest_depends_on_read_order() {
        let mut db = Database::new();
        db.install(InstanceId::first(TxnId(9)), ItemId(0), Value(1), Tick(1));
        db.install(InstanceId::first(TxnId(9)), ItemId(1), Value(2), Tick(1));

        let mut a = Workspace::new(owner());
        a.read(&db, ItemId(0));
        a.read(&db, ItemId(1));

        let mut b = Workspace::new(owner());
        b.read(&db, ItemId(1));
        b.read(&db, ItemId(0));

        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn derived_writes_differ_with_different_reads() {
        let mut db = Database::new();
        let mut a = Workspace::new(owner());
        a.write(1, ItemId(5));

        db.install(InstanceId::first(TxnId(9)), ItemId(0), Value(7), Tick(1));
        let mut b = Workspace::new(owner());
        b.read(&db, ItemId(0));
        b.write(1, ItemId(5));

        assert_ne!(
            a.staged_value(ItemId(5)).unwrap(),
            b.staged_value(ItemId(5)).unwrap()
        );
    }

    #[test]
    fn last_staged_write_wins() {
        let mut db = Database::new();
        let mut ws = Workspace::new(owner());
        ws.write(0, ItemId(0));
        let second = ws.write(1, ItemId(0));
        let installed = ws.commit_into(&mut db, Tick(2));
        assert_eq!(installed, vec![(ItemId(0), second, 1)]);
    }

    #[test]
    fn reset_clears_state_and_rehomes() {
        let db = Database::new();
        let mut ws = Workspace::new(owner());
        ws.read(&db, ItemId(1));
        ws.write(0, ItemId(2));
        let cap = (ws.reads.capacity(), ws.staged.capacity());

        let next = InstanceId::first(TxnId(1));
        ws.reset(next);
        assert_eq!(ws.owner(), next);
        assert!(ws.reads().is_empty());
        assert!(ws.staged_writes().is_empty());
        assert!(ws.data_read().is_empty());
        assert_eq!(ws.digest(), Value::INITIAL);
        assert!(ws.reads.capacity() >= cap.0);
        assert!(ws.staged.capacity() >= cap.1);
    }
}
