//! The serialization graph `SG(H)` and cycle detection (Theorem 3 oracle).
//!
//! Nodes are committed instances; edges are the conflicts of the history
//! under the update-in-workspace semantics:
//!
//! * **ww** — per-item install (version) order between committed writers;
//! * **wr** — a committed reader observed the version some writer
//!   installed: `writer → reader`;
//! * **rw** — a committed reader observed version `k` of an item that a
//!   later writer overwrote (installed version `k+1`): `reader → writer`
//!   (the reader logically precedes the overwriting writer).
//!
//! The paper argues (§4.1) that under deferred updates two writes are
//! non-conflicting *for ordering-constraint purposes* — their order is
//! simply the commit order. We still record ww edges (they follow install
//! order, hence commit order, and therefore can never create a cycle on
//! their own) so the graph is the classical `SG(H)` of Bernstein et al.,
//! which Theorem 3 references.

use crate::history::History;
use rtdb_types::{InstanceId, ItemId};
use std::collections::{BTreeMap, BTreeSet};

/// Kind of a conflict edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// write → write (install order).
    Ww,
    /// writer → reader (reads-from).
    Wr,
    /// reader → later writer (anti-dependency).
    Rw,
}

/// A directed conflict edge of `SG(H)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConflictEdge {
    /// Source instance.
    pub from: InstanceId,
    /// Target instance.
    pub to: InstanceId,
    /// Conflict kind.
    pub kind: EdgeKind,
    /// Item on which the conflict arises.
    pub item: ItemId,
}

/// The serialization graph of a history.
#[derive(Clone, Debug)]
pub struct SerializationGraph {
    nodes: BTreeSet<InstanceId>,
    edges: BTreeSet<ConflictEdge>,
}

impl SerializationGraph {
    /// Build `SG(H)` from a history. Only committed instances appear.
    pub fn build(history: &History) -> Self {
        let committed: BTreeSet<InstanceId> = history.commit_order().iter().copied().collect();
        let installs = history.install_order();
        let reads = history.committed_reads();

        let mut edges: BTreeSet<ConflictEdge> = BTreeSet::new();

        // ww edges: successive committed writers of the same item.
        for (item, seq) in &installs {
            for pair in seq.windows(2) {
                let (_, w1, _) = pair[0];
                let (_, w2, _) = pair[1];
                if w1 != w2 {
                    edges.insert(ConflictEdge {
                        from: w1,
                        to: w2,
                        kind: EdgeKind::Ww,
                        item: *item,
                    });
                }
            }
        }

        // Index: per item, version -> writer; and version -> next writer.
        let mut installer: BTreeMap<(ItemId, u64), InstanceId> = BTreeMap::new();
        let mut next_writer: BTreeMap<(ItemId, u64), InstanceId> = BTreeMap::new();
        for (item, seq) in &installs {
            for (version, writer, _) in seq {
                installer.insert((*item, *version), *writer);
            }
            for pair in seq.windows(2) {
                let (v1, _, _) = pair[0];
                let (_, w2, _) = pair[1];
                next_writer.insert((*item, v1), w2);
            }
            if let Some((first_version, first_writer, _)) = seq.first() {
                // Readers of the initial version 0 precede the first writer.
                if *first_version >= 1 {
                    next_writer.insert((*item, first_version - 1), *first_writer);
                }
            }
        }

        // wr and rw edges from committed reads. Reads served from the
        // instance's own workspace are internal and create no edges.
        for (&reader, rs) in &reads {
            for &(item, _value, version, own) in rs {
                if own {
                    continue;
                }
                if let Some(&writer) = installer.get(&(item, version)) {
                    if writer != reader {
                        edges.insert(ConflictEdge {
                            from: writer,
                            to: reader,
                            kind: EdgeKind::Wr,
                            item,
                        });
                    }
                }
                if let Some(&overwriter) = next_writer.get(&(item, version)) {
                    if overwriter != reader {
                        edges.insert(ConflictEdge {
                            from: reader,
                            to: overwriter,
                            kind: EdgeKind::Rw,
                            item,
                        });
                    }
                }
            }
        }

        SerializationGraph {
            nodes: committed,
            edges,
        }
    }

    /// All nodes (committed instances).
    pub fn nodes(&self) -> &BTreeSet<InstanceId> {
        &self.nodes
    }

    /// All conflict edges.
    pub fn edges(&self) -> impl Iterator<Item = &ConflictEdge> {
        self.edges.iter()
    }

    /// Find a cycle, if one exists, as the list of instances on it.
    /// `None` means the history is conflict-serializable.
    pub fn find_cycle(&self) -> Option<Vec<InstanceId>> {
        let mut adj: BTreeMap<InstanceId, Vec<InstanceId>> = BTreeMap::new();
        for e in &self.edges {
            adj.entry(e.from).or_default().push(e.to);
        }

        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: BTreeMap<InstanceId, Color> =
            self.nodes.iter().map(|&n| (n, Color::White)).collect();

        // Iterative DFS with an explicit path stack.
        for &start in &self.nodes {
            if color[&start] != Color::White {
                continue;
            }
            let mut stack: Vec<(InstanceId, usize)> = vec![(start, 0)];
            let mut path: Vec<InstanceId> = vec![start];
            color.insert(start, Color::Grey);
            while let Some((node, idx)) = stack.last_mut() {
                let node = *node;
                let succs = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
                if *idx < succs.len() {
                    let next = succs[*idx];
                    *idx += 1;
                    match color.get(&next).copied().unwrap_or(Color::Black) {
                        Color::White => {
                            color.insert(next, Color::Grey);
                            stack.push((next, 0));
                            path.push(next);
                        }
                        Color::Grey => {
                            // Found a cycle: slice the current path from
                            // the first occurrence of `next`.
                            let pos = path.iter().position(|&n| n == next).unwrap();
                            return Some(path[pos..].to_vec());
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    /// A topological order of the graph (a valid serialization order), or
    /// `None` if cyclic.
    pub fn topological_order(&self) -> Option<Vec<InstanceId>> {
        let mut indegree: BTreeMap<InstanceId, usize> =
            self.nodes.iter().map(|&n| (n, 0)).collect();
        let mut adj: BTreeMap<InstanceId, Vec<InstanceId>> = BTreeMap::new();
        for e in &self.edges {
            adj.entry(e.from).or_default().push(e.to);
            *indegree.entry(e.to).or_insert(0) += 1;
        }
        let mut ready: Vec<InstanceId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut out = Vec::with_capacity(self.nodes.len());
        while let Some(n) = ready.pop() {
            out.push(n);
            for &m in adj.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
                let d = indegree.get_mut(&m).unwrap();
                *d -= 1;
                if *d == 0 {
                    ready.push(m);
                }
            }
        }
        (out.len() == self.nodes.len()).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{EventKind, History};
    use rtdb_types::{Tick, TxnId, Value};

    fn inst(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn read(h: &mut History, at: u64, who: InstanceId, item: ItemId, version: u64) {
        h.push(
            Tick(at),
            who,
            EventKind::Read {
                item,
                value: Value(version),
                version,
                own: false,
            },
        );
    }

    fn commit_write(h: &mut History, at: u64, who: InstanceId, item: ItemId, version: u64) {
        h.push(Tick(at), who, EventKind::Commit);
        h.push(
            Tick(at),
            who,
            EventKind::Install {
                item,
                value: Value(version * 100),
                version,
            },
        );
    }

    #[test]
    fn serial_history_is_acyclic() {
        let mut h = History::new();
        let (a, b) = (inst(0), inst(1));
        h.push(Tick(0), a, EventKind::Begin);
        read(&mut h, 1, a, ItemId(0), 0);
        commit_write(&mut h, 2, a, ItemId(0), 1);
        h.push(Tick(3), b, EventKind::Begin);
        read(&mut h, 4, b, ItemId(0), 1);
        commit_write(&mut h, 5, b, ItemId(0), 2);

        let g = SerializationGraph::build(&h);
        assert!(g.find_cycle().is_none());
        let topo = g.topological_order().unwrap();
        assert_eq!(topo, vec![a, b]); // a must precede b (wr + ww + rw)
    }

    #[test]
    fn rw_wr_cycle_is_detected() {
        // Classic non-serializable interleaving:
        //   a reads x(v0); b reads y(v0); a commits write y(v1);
        //   b commits write x(v1).
        // Edges: a -rw-> b (a read x v0, b installed x v1)
        //        b -rw-> a (b read y v0, a installed y v1)
        let mut h = History::new();
        let (a, b) = (inst(0), inst(1));
        h.push(Tick(0), a, EventKind::Begin);
        h.push(Tick(0), b, EventKind::Begin);
        read(&mut h, 1, a, ItemId(0), 0);
        read(&mut h, 1, b, ItemId(1), 0);
        commit_write(&mut h, 2, a, ItemId(1), 1);
        commit_write(&mut h, 3, b, ItemId(0), 1);

        let g = SerializationGraph::build(&h);
        let cycle = g.find_cycle().expect("cycle must be found");
        assert!(cycle.contains(&a) && cycle.contains(&b));
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn own_reads_create_no_edges() {
        let mut h = History::new();
        let a = inst(0);
        h.push(Tick(0), a, EventKind::Begin);
        h.push(
            Tick(1),
            a,
            EventKind::Read {
                item: ItemId(0),
                value: Value(5),
                version: 0,
                own: true,
            },
        );
        commit_write(&mut h, 2, a, ItemId(0), 1);
        let g = SerializationGraph::build(&h);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn reader_of_initial_version_precedes_first_writer() {
        let mut h = History::new();
        let (a, b) = (inst(0), inst(1));
        h.push(Tick(0), a, EventKind::Begin);
        read(&mut h, 1, a, ItemId(0), 0);
        h.push(Tick(2), a, EventKind::Commit); // reader commits, no writes
        h.push(Tick(3), b, EventKind::Begin);
        commit_write(&mut h, 4, b, ItemId(0), 1);

        let g = SerializationGraph::build(&h);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, EdgeKind::Rw);
        assert_eq!(edges[0].from, a);
        assert_eq!(edges[0].to, b);
    }

    #[test]
    fn ww_edges_follow_install_order() {
        let mut h = History::new();
        let (a, b) = (inst(0), inst(1));
        h.push(Tick(0), a, EventKind::Begin);
        h.push(Tick(0), b, EventKind::Begin);
        commit_write(&mut h, 1, b, ItemId(0), 1);
        commit_write(&mut h, 2, a, ItemId(0), 2);
        let g = SerializationGraph::build(&h);
        let ww: Vec<_> = g.edges().filter(|e| e.kind == EdgeKind::Ww).collect();
        assert_eq!(ww.len(), 1);
        assert_eq!((ww[0].from, ww[0].to), (b, a));
        assert!(g.find_cycle().is_none());
    }
}
