//! The serial-replay correctness oracle.
//!
//! Theorem 3 of the paper states that every history produced by PCP-DA is
//! serializable, and its proof shows that the **commit order** is a valid
//! serialization order. This module turns that claim into an executable
//! check: re-run the committed instances *serially, in commit order*,
//! re-executing their templates' programs against a fresh database. Because
//! every write value is a pure function of the writer's identity and of
//! everything it has read (see [`rtdb_types::derive_write`]), the serial
//! re-execution must reproduce
//!
//! 1. the exact value observed by every read of the concurrent history, and
//! 2. the exact final database state.
//!
//! Any divergence is a concrete serialization anomaly, reported as a
//! [`ReplayViolation`].

use crate::db::Database;
use crate::history::History;
use crate::workspace::Workspace;
use rtdb_types::{InstanceId, ItemId, Operation, TransactionSet, Value};

/// One divergence between the concurrent history and its serial replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayViolation {
    /// A read in the concurrent history observed a different value than the
    /// serial replay produces.
    ReadMismatch {
        /// Who read.
        instance: InstanceId,
        /// Which of the instance's reads diverged (0-based, program order).
        read_index: usize,
        /// Item read.
        item: ItemId,
        /// Value in the concurrent history.
        observed: Value,
        /// Value under serial execution in commit order.
        serial: Value,
    },
    /// The committed instance performed a different number of reads than
    /// its template prescribes — an engine bug, not a protocol anomaly.
    ReadCountMismatch {
        /// Offending instance.
        instance: InstanceId,
        /// Reads in the history.
        observed: usize,
        /// Reads the template performs.
        expected: usize,
    },
    /// Final database states differ on an item.
    FinalStateMismatch {
        /// Item that differs.
        item: ItemId,
        /// Value after the concurrent run.
        observed: Option<Value>,
        /// Value after serial replay.
        serial: Option<Value>,
    },
}

/// Result of a replay check.
#[derive(Clone, Debug, Default)]
pub struct ReplayOutcome {
    /// All violations found (empty = the history is view-equivalent to the
    /// serial execution in commit order).
    pub violations: Vec<ReplayViolation>,
}

impl ReplayOutcome {
    /// True when the history passed the oracle.
    pub fn is_serializable(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replay `history` serially in commit order against the programs in `set`
/// and compare with the concurrent observations and `final_db`.
pub fn replay_serial(
    set: &TransactionSet,
    history: &History,
    final_db: &Database,
) -> ReplayOutcome {
    let mut out = ReplayOutcome::default();
    let mut db = Database::new();
    let committed_reads = history.committed_reads();

    for &who in history.commit_order() {
        let template = set.template(who.txn);
        let mut ws = Workspace::new(who);
        let mut serial_reads: Vec<(ItemId, Value)> = Vec::new();
        for (step_index, step) in template.steps.iter().enumerate() {
            match step.op {
                Operation::Read(item) => {
                    let rec = ws.read(&db, item);
                    serial_reads.push((item, rec.value));
                }
                Operation::Write(item) => {
                    ws.write(step_index, item);
                }
                Operation::Compute => {}
            }
        }
        // Compare against the concurrent history's reads for this instance.
        let observed = committed_reads
            .get(&who)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        if observed.len() != serial_reads.len() {
            out.violations.push(ReplayViolation::ReadCountMismatch {
                instance: who,
                observed: observed.len(),
                expected: serial_reads.len(),
            });
        }
        for (i, ((s_item, s_value), &(o_item, o_value, _, _))) in
            serial_reads.iter().zip(observed.iter()).enumerate()
        {
            debug_assert_eq!(*s_item, o_item, "programs are deterministic");
            if *s_value != o_value {
                out.violations.push(ReplayViolation::ReadMismatch {
                    instance: who,
                    read_index: i,
                    item: *s_item,
                    observed: o_value,
                    serial: *s_value,
                });
            }
        }
        // Install this instance's writes before the next one replays.
        ws.commit_into(&mut db, rtdb_types::Tick::ZERO);
    }

    // Final-state comparison.
    let serial_snapshot = db.snapshot();
    let observed_snapshot = final_db.snapshot();
    let items: std::collections::BTreeSet<ItemId> = serial_snapshot
        .keys()
        .chain(observed_snapshot.keys())
        .copied()
        .collect();
    for item in items {
        let s = serial_snapshot.get(&item).copied();
        let o = observed_snapshot.get(&item).copied();
        if s != o {
            out.violations.push(ReplayViolation::FinalStateMismatch {
                item,
                observed: o,
                serial: s,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::EventKind;
    use rtdb_types::{SetBuilder, Step, Tick, TransactionTemplate, TxnId};

    /// Two transactions: T1 reads x then writes y; T2 reads y then writes x.
    fn set() -> TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                10,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![Step::read(ItemId(1), 1), Step::write(ItemId(0), 1)],
            ))
            .build()
            .unwrap()
    }

    /// Execute the set serially for real and log a faithful history; the
    /// oracle must accept it.
    #[test]
    fn faithful_serial_run_passes() {
        let set = set();
        let mut db = Database::new();
        let mut h = History::new();
        for id in [TxnId(0), TxnId(1)] {
            let who = InstanceId::first(id);
            h.push(Tick(0), who, EventKind::Begin);
            let mut ws = Workspace::new(who);
            for (i, step) in set.template(id).steps.iter().enumerate() {
                match step.op {
                    Operation::Read(item) => {
                        let rec = ws.read(&db, item);
                        h.push(
                            Tick(1),
                            who,
                            EventKind::Read {
                                item,
                                value: rec.value,
                                version: rec.version,
                                own: rec.own,
                            },
                        );
                    }
                    Operation::Write(item) => {
                        let v = ws.write(i, item);
                        h.push(Tick(1), who, EventKind::StageWrite { item, value: v });
                    }
                    Operation::Compute => {}
                }
            }
            h.push(Tick(2), who, EventKind::Commit);
            for (item, value, version) in ws.commit_into(&mut db, Tick(2)) {
                h.push(
                    Tick(2),
                    who,
                    EventKind::Install {
                        item,
                        value,
                        version,
                    },
                );
            }
        }
        let outcome = replay_serial(&set, &h, &db);
        assert!(outcome.is_serializable(), "{:?}", outcome.violations);
    }

    /// Forge a non-serializable interleaving (both read the initial values,
    /// then both commit) and check that the oracle rejects it.
    #[test]
    fn forged_nonserializable_run_fails() {
        let set = set();
        let mut db = Database::new();
        let mut h = History::new();
        let t1 = InstanceId::first(TxnId(0));
        let t2 = InstanceId::first(TxnId(1));

        let mut ws1 = Workspace::new(t1);
        let mut ws2 = Workspace::new(t2);
        h.push(Tick(0), t1, EventKind::Begin);
        h.push(Tick(0), t2, EventKind::Begin);

        // Both read the initial versions concurrently.
        for (who, ws, item) in [(t1, &mut ws1, ItemId(0)), (t2, &mut ws2, ItemId(1))] {
            let rec = ws.read(&db, item);
            h.push(
                Tick(1),
                who,
                EventKind::Read {
                    item,
                    value: rec.value,
                    version: rec.version,
                    own: rec.own,
                },
            );
        }
        ws1.write(1, ItemId(1));
        ws2.write(1, ItemId(0));

        for (who, ws) in [(t1, ws1), (t2, ws2)] {
            h.push(Tick(2), who, EventKind::Commit);
            for (item, value, version) in ws.commit_into(&mut db, Tick(2)) {
                h.push(
                    Tick(2),
                    who,
                    EventKind::Install {
                        item,
                        value,
                        version,
                    },
                );
            }
        }

        let outcome = replay_serial(&set, &h, &db);
        assert!(!outcome.is_serializable());
        // T2 read y's initial value concurrently, but serial replay in
        // commit order (T1 first) would give it T1's write.
        assert!(outcome.violations.iter().any(
            |v| matches!(v, ReplayViolation::ReadMismatch { instance, .. } if *instance == t2)
        ));
    }

    #[test]
    fn read_count_mismatch_is_flagged() {
        let set = set();
        let db = Database::new();
        let mut h = History::new();
        let t1 = InstanceId::first(TxnId(0));
        h.push(Tick(0), t1, EventKind::Begin);
        // No reads logged at all, then a commit: template expects one read.
        h.push(Tick(1), t1, EventKind::Commit);
        let outcome = replay_serial(&set, &h, &db);
        assert!(outcome
            .violations
            .iter()
            .any(|v| matches!(v, ReplayViolation::ReadCountMismatch { .. })));
    }
}
