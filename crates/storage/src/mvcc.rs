//! Bounded multiversion chains for the snapshot read path.
//!
//! The update-in-workspace model installs all of a transaction's writes
//! atomically at commit, so every commit is a natural version boundary: we
//! stamp each lock-path commit with a global, monotonically increasing
//! **commit stamp** and keep, per item, a short chain of
//! `(stamp, VersionedValue)` entries. A read-only transaction pins the
//! current stamp `S` once and reads, for every item, the newest entry whose
//! stamp is `<= S` — a consistent snapshot equal to the database state after
//! exactly the first `S` commits, without acquiring a single lock.
//!
//! Reclamation is epoch-style: a **floor** stamp tracks the oldest snapshot
//! any reader may still observe, and chains are pruned to "newest entry at
//! or below the floor, plus everything above it". Publishing prunes the
//! chains it touches (hot items stay short), and a periodic full sweep
//! retires the tails of cold chains, so long open-loop soaks stay
//! memory-flat.
//!
//! Two implementations share the discipline:
//!
//! * [`MvStore`] — plain single-threaded store for the discrete-event
//!   simulator;
//! * [`SnapshotStore`] — the concurrent store for `rtdb-rt`, pure `std`
//!   (per-item mutexes + atomics, no unsafe): writers publish under the
//!   manager's state lock, readers pin with a publish-then-verify protocol
//!   and never block on anything but a single per-item mutex held for a
//!   binary search and a copy.

use crate::db::VersionedValue;
use rtdb_types::ItemId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

/// Global commit stamp: the number of lock-path commits that have sealed.
/// Stamp 0 is the initial database (no commits); the transaction that
/// commits `k`-th (in commit order) installs its writes at stamp `k`.
pub type Stamp = u64;

/// Sentinel for "no active snapshot" in a reader slot.
pub const NO_SNAPSHOT: Stamp = u64::MAX;

/// How many publishes between full sweeps over all chains (cold-item GC).
const SWEEP_INTERVAL: u64 = 256;

/// One item's version chain: `(stamp, value)` entries, stamp ascending.
/// At most one entry per stamp (a committing writer installs at most one
/// version per item).
type Chain = Vec<(Stamp, VersionedValue)>;

/// Newest entry at or below `stamp`, if any.
fn chain_read_at(chain: &Chain, stamp: Stamp) -> Option<VersionedValue> {
    match chain.binary_search_by_key(&stamp, |&(s, _)| s) {
        Ok(idx) => Some(chain[idx].1),
        Err(0) => None,
        Err(idx) => Some(chain[idx - 1].1),
    }
}

/// Prune `chain` to the reclamation rule: keep the newest entry with
/// stamp `<= floor` (the version every surviving snapshot at or above the
/// floor resolves to) and every entry above the floor.
fn chain_prune(chain: &mut Chain, floor: Stamp) {
    let cut = match chain.binary_search_by_key(&floor, |&(s, _)| s) {
        Ok(idx) => idx,
        Err(idx) => idx.saturating_sub(1),
    };
    if cut > 0 && chain.first().is_some_and(|&(s, _)| s <= floor) {
        chain.drain(..cut);
    }
}

/// Single-threaded multiversion side store for the simulator.
///
/// The engine publishes each committing writer's installs at the next
/// stamp, then [`MvStore::seal`]s the commit; read-only instances pin
/// [`MvStore::stamp`] at dispatch and resolve every read through
/// [`MvStore::read_at`]. [`MvStore::prune`] applies the epoch-GC rule given
/// the oldest stamp still pinned by an active snapshot.
#[derive(Clone, Debug, Default)]
pub struct MvStore {
    chains: std::collections::BTreeMap<ItemId, Chain>,
    stamp: Stamp,
    /// Longest chain ever observed (memory-flatness telemetry).
    high_water: usize,
}

impl MvStore {
    /// Empty store at stamp 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current commit stamp (number of sealed commits).
    pub fn stamp(&self) -> Stamp {
        self.stamp
    }

    /// Publish one installed version for the commit that will seal next
    /// (stamp `self.stamp() + 1`).
    pub fn publish(&mut self, item: ItemId, value: VersionedValue) {
        let chain = self.chains.entry(item).or_default();
        chain.push((self.stamp + 1, value));
        self.high_water = self.high_water.max(chain.len());
    }

    /// Seal the current commit: all versions published since the last seal
    /// become visible to snapshots taken from now on. Returns the new
    /// stamp. Read-only commits do not seal — they leave the stamp alone.
    pub fn seal(&mut self) -> Stamp {
        self.stamp += 1;
        self.stamp
    }

    /// The version of `item` visible at `stamp`, or `None` if no writer
    /// had committed to it by then (the item reads as
    /// [`VersionedValue::INITIAL`]).
    pub fn read_at(&self, item: ItemId, stamp: Stamp) -> Option<VersionedValue> {
        self.chains
            .get(&item)
            .and_then(|chain| chain_read_at(chain, stamp))
    }

    /// Retire every chain entry no snapshot at or above `floor` can
    /// observe.
    pub fn prune(&mut self, floor: Stamp) {
        for chain in self.chains.values_mut() {
            chain_prune(chain, floor);
        }
    }

    /// Longest per-item chain ever held (bounded-memory assertion hook).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Current length of the longest chain.
    pub fn max_chain_len(&self) -> usize {
        self.chains.values().map(Vec::len).max().unwrap_or(0)
    }
}

/// Concurrent multiversion store for the threaded runtime.
///
/// * **Writers** (both lock managers) call [`SnapshotStore::publish`] from
///   inside the commit critical section — the manager's state lock already
///   serialises committers, so publishing needs no extra coordination
///   beyond the per-item mutexes readers share.
/// * **Readers** pin a snapshot with [`SnapshotStore::pin`], which
///   publishes the chosen stamp into the worker's slot *before* verifying
///   the GC floor has not passed it (retrying if it has), then resolve
///   reads through [`SnapshotStore::read_at`] and release with
///   [`SnapshotStore::unpin`]. Chains live behind per-item `RwLock`s, so
///   a Zipfian read storm on one hot item shares its head instead of
///   convoying on it — only the (serialised) publisher takes the write
///   side.
/// * **Reclamation** rides on publish: every publish prunes the chains it
///   touches against the current floor, and every `SWEEP_INTERVAL`-th
///   publish recomputes the floor from the reader slots and sweeps all
///   chains (retiring cold items' tails).
///
/// The floor-advance/pin race is closed Peterson-style: the floor is
/// stored *before* the slots are re-scanned (and lowered again if a
/// just-pinned reader appeared), while readers store their slot *before*
/// loading the floor — under the total order of `SeqCst` one of the two
/// always observes the other.
#[derive(Debug)]
pub struct SnapshotStore {
    heads: Vec<RwLock<Chain>>,
    stamp: AtomicU64,
    floor: AtomicU64,
    /// Per-worker active snapshot stamp ([`NO_SNAPSHOT`] = none).
    slots: Vec<AtomicU64>,
    publishes: AtomicU64,
    high_water: AtomicUsize,
}

impl SnapshotStore {
    /// Store for items `0..n_items` and workers `0..n_workers`.
    pub fn new(n_items: usize, n_workers: usize) -> Self {
        Self {
            heads: (0..n_items).map(|_| RwLock::new(Vec::new())).collect(),
            stamp: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            slots: (0..n_workers)
                .map(|_| AtomicU64::new(NO_SNAPSHOT))
                .collect(),
            publishes: AtomicU64::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    /// The current commit stamp.
    pub fn stamp(&self) -> Stamp {
        self.stamp.load(Ordering::Acquire)
    }

    fn chain(&self, item: ItemId) -> &RwLock<Chain> {
        &self.heads[item.0 as usize]
    }

    /// Publish one committer's installs and seal them at the next stamp.
    /// MUST be called with the manager's state lock held (single publisher
    /// at a time); `writes` are the `(item, value)` pairs the commit
    /// installed into the database.
    pub fn publish(&self, writes: &[(ItemId, VersionedValue)]) {
        let next = self.stamp.load(Ordering::Relaxed) + 1;
        let floor = self.floor.load(Ordering::Relaxed);
        let mut longest = 0;
        for &(item, value) in writes {
            let mut chain = self.chain(item).write().unwrap();
            chain.push((next, value));
            chain_prune(&mut chain, floor);
            longest = longest.max(chain.len());
        }
        self.high_water.fetch_max(longest, Ordering::Relaxed);
        // Release-publish the stamp only after every chain entry is in
        // place: a reader that pins `next` must find all of its versions.
        self.stamp.store(next, Ordering::Release);
        if self.publishes.fetch_add(1, Ordering::Relaxed) % SWEEP_INTERVAL == SWEEP_INTERVAL - 1 {
            self.advance_floor();
        }
    }

    /// Recompute the GC floor from the reader slots and sweep every chain.
    /// Called automatically every `SWEEP_INTERVAL` publishes; callers
    /// holding the state lock may also invoke it directly (e.g. at the end
    /// of a run). Single caller at a time (state lock held).
    pub fn advance_floor(&self) {
        let scan_min = |slots: &[AtomicU64]| {
            slots
                .iter()
                .map(|s| s.load(Ordering::SeqCst))
                .min()
                .unwrap_or(NO_SNAPSHOT)
        };
        let stamp = self.stamp.load(Ordering::SeqCst);
        let mut floor = scan_min(&self.slots).min(stamp);
        // Announce before acting, then re-scan: a reader pinning
        // concurrently either sees this floor (and retries if passed) or
        // its slot is seen by the re-scan (and the floor is lowered).
        self.floor.store(floor, Ordering::SeqCst);
        let low = scan_min(&self.slots).min(stamp);
        if low < floor {
            floor = low;
            self.floor.store(floor, Ordering::SeqCst);
        }
        for head in &self.heads {
            let mut chain = head.write().unwrap();
            chain_prune(&mut chain, floor);
        }
    }

    /// Pin the current stamp as worker `worker`'s active snapshot and
    /// return it. Lock-free (a bounded retry loop against floor advance).
    pub fn pin(&self, worker: usize) -> Stamp {
        loop {
            let s = self.stamp.load(Ordering::Acquire);
            self.slots[worker].store(s, Ordering::SeqCst);
            if self.floor.load(Ordering::SeqCst) <= s {
                return s;
            }
            // The floor passed our candidate before the slot was visible;
            // drop the claim and retry at a fresher stamp.
            self.slots[worker].store(NO_SNAPSHOT, Ordering::SeqCst);
        }
    }

    /// Release worker `worker`'s active snapshot.
    pub fn unpin(&self, worker: usize) {
        self.slots[worker].store(NO_SNAPSHOT, Ordering::SeqCst);
    }

    /// The version of `item` visible at `stamp` (`None` = the item still
    /// reads as [`VersionedValue::INITIAL`]). `stamp` must be pinned.
    pub fn read_at(&self, item: ItemId, stamp: Stamp) -> Option<VersionedValue> {
        let chain = self.chain(item).read().unwrap();
        chain_read_at(&chain, stamp)
    }

    /// Longest per-item chain ever held (memory-flatness telemetry).
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Current length of the longest chain.
    pub fn max_chain_len(&self) -> usize {
        self.heads
            .iter()
            .map(|h| h.read().unwrap().len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{InstanceId, Tick, TxnId, Value};

    fn vv(version: u64, value: u64) -> VersionedValue {
        VersionedValue {
            value: Value(value),
            version,
            writer: Some(InstanceId::first(TxnId(0))),
            installed_at: Tick::ZERO,
        }
    }

    #[test]
    fn mvstore_reads_resolve_to_snapshot_stamp() {
        let mut mv = MvStore::new();
        assert_eq!(mv.read_at(ItemId(0), 0), None);

        mv.publish(ItemId(0), vv(1, 10));
        mv.seal();
        mv.publish(ItemId(0), vv(2, 20));
        mv.publish(ItemId(1), vv(1, 5));
        mv.seal();

        assert_eq!(mv.stamp(), 2);
        // Stamp 0: initial everywhere.
        assert_eq!(mv.read_at(ItemId(0), 0), None);
        // Stamp 1: only the first commit visible.
        assert_eq!(mv.read_at(ItemId(0), 1), Some(vv(1, 10)));
        assert_eq!(mv.read_at(ItemId(1), 1), None);
        // Stamp 2: both.
        assert_eq!(mv.read_at(ItemId(0), 2), Some(vv(2, 20)));
        assert_eq!(mv.read_at(ItemId(1), 2), Some(vv(1, 5)));
    }

    #[test]
    fn mvstore_prune_keeps_floor_visible_version() {
        let mut mv = MvStore::new();
        for i in 1..=5u64 {
            mv.publish(ItemId(0), vv(i, i * 10));
            mv.seal();
        }
        assert_eq!(mv.max_chain_len(), 5);
        mv.prune(3);
        // Stamps >= 3 must still resolve exactly.
        assert_eq!(mv.read_at(ItemId(0), 3), Some(vv(3, 30)));
        assert_eq!(mv.read_at(ItemId(0), 4), Some(vv(4, 40)));
        assert_eq!(mv.read_at(ItemId(0), 5), Some(vv(5, 50)));
        assert_eq!(mv.max_chain_len(), 3);
        assert_eq!(mv.high_water(), 5);

        // Pruning to the current stamp leaves exactly the latest version.
        mv.prune(mv.stamp());
        assert_eq!(mv.max_chain_len(), 1);
        assert_eq!(mv.read_at(ItemId(0), 5), Some(vv(5, 50)));
    }

    #[test]
    fn snapshot_store_pin_read_unpin() {
        let store = SnapshotStore::new(4, 2);
        let s0 = store.pin(0);
        assert_eq!(s0, 0);
        assert_eq!(store.read_at(ItemId(2), s0), None);

        store.publish(&[(ItemId(2), vv(1, 7))]);
        // The pinned snapshot still sees the pre-publish state.
        assert_eq!(store.read_at(ItemId(2), s0), None);

        let s1 = store.pin(1);
        assert_eq!(s1, 1);
        assert_eq!(store.read_at(ItemId(2), s1), Some(vv(1, 7)));
        store.unpin(0);
        store.unpin(1);
    }

    #[test]
    fn snapshot_store_floor_respects_pinned_readers() {
        let store = SnapshotStore::new(1, 2);
        store.publish(&[(ItemId(0), vv(1, 10))]);
        let pinned = store.pin(0); // stamp 1
        for i in 2..=6u64 {
            store.publish(&[(ItemId(0), vv(i, i * 10))]);
        }
        store.advance_floor();
        // Reader at stamp 1 must still resolve correctly after the sweep.
        assert_eq!(store.read_at(ItemId(0), pinned), Some(vv(1, 10)));
        store.unpin(0);
        store.advance_floor();
        // With no readers the chain collapses to the latest version.
        assert_eq!(store.max_chain_len(), 1);
        assert_eq!(store.read_at(ItemId(0), store.stamp()), Some(vv(6, 60)));
    }

    #[test]
    fn snapshot_store_publish_prunes_hot_chains() {
        let store = SnapshotStore::new(1, 1);
        // No readers: floor stays 0 until a sweep, but prune-on-publish
        // keeps the chain from growing without bound once the floor moves.
        for i in 1..=600u64 {
            store.publish(&[(ItemId(0), vv(i, i))]);
        }
        // At least one automatic sweep has run (600 > SWEEP_INTERVAL), so
        // the chain is bounded well below the publish count.
        assert!(store.max_chain_len() < 300, "len={}", store.max_chain_len());
        assert_eq!(store.read_at(ItemId(0), 600), Some(vv(600, 600)));
    }

    #[test]
    fn concurrent_readers_see_consistent_prefixes() {
        use std::sync::Arc;
        // Two items always written together: every consistent snapshot
        // must observe equal version numbers on both.
        let store = Arc::new(SnapshotStore::new(2, 4));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let writer = {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    for i in 1..=2000u64 {
                        store.publish(&[(ItemId(0), vv(i, i)), (ItemId(1), vv(i, i))]);
                    }
                    stop.store(1, Ordering::Release);
                })
            };
            for w in 0..3 {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while stop.load(Ordering::Acquire) == 0 {
                        let s = store.pin(w);
                        let a = store.read_at(ItemId(0), s).map_or(0, |v| v.version);
                        let b = store.read_at(ItemId(1), s).map_or(0, |v| v.version);
                        assert_eq!(a, b, "snapshot {s} saw torn versions {a}/{b}");
                        assert_eq!(a, s, "snapshot {s} resolved to version {a}");
                        store.unpin(w);
                    }
                });
            }
            writer.join().unwrap();
        });
        assert_eq!(store.stamp(), 2000);
    }
}
