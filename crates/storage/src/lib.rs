//! Memory-resident storage substrate for the PCP-DA reproduction.
//!
//! The paper assumes "a single processor with a memory resident database"
//! and the **update-in-workspace** transaction model (§4): before a
//! transaction commits it reads and updates data items only in its private
//! workspace; data items are written into the database only upon successful
//! commit. This crate provides:
//!
//! * [`Database`] — the committed store with per-item version counters;
//! * [`Workspace`] — a transaction instance's private read/write workspace
//!   (deferred updates), tracking `DataRead(T_i)` exactly as the protocol
//!   needs it;
//! * [`History`] — a complete, versioned log of every read, staged write,
//!   commit and abort, the raw material for the correctness oracles;
//! * [`mvcc`] — bounded per-item version chains keyed by a global commit
//!   stamp, powering the lock-free snapshot read path for read-only
//!   transactions, with epoch-style reclamation;
//! * [`SerializationGraph`] — the conflict graph `SG(H)` of a history with
//!   cycle detection (Theorem 3 oracle);
//! * [`replay`] — the serial-replay oracle: re-executes the committed
//!   transactions serially in commit order and verifies that every read of
//!   the concurrent history saw exactly the value it would have seen in
//!   that serial execution, and that the final database states coincide.
//!
//! Under strict locking (all locks held to commit) the update-in-workspace
//! model also faithfully emulates update-in-place for the 2PL baselines: an
//! exclusive lock held to commit makes deferred and immediate writes
//! indistinguishable to every other transaction.

#![forbid(unsafe_code)]

pub mod db;
pub mod graph;
pub mod history;
pub mod mvcc;
pub mod replay;
pub mod workspace;

pub use db::{Database, Version, VersionedValue};
pub use graph::{ConflictEdge, EdgeKind, SerializationGraph};
pub use history::{Event, EventKind, History};
pub use mvcc::{MvStore, SnapshotStore, Stamp, NO_SNAPSHOT};
pub use replay::{replay_serial, ReplayOutcome, ReplayViolation};
pub use workspace::Workspace;
