//! Execution histories.
//!
//! A [`History`] is the complete, ordered log of data-relevant events of one
//! simulation run. It is the input to both correctness oracles
//! ([`crate::SerializationGraph`] and [`crate::replay`]) and to the
//! blocking-time accounting in the analysis tests.

use crate::db::Version;
use rtdb_types::{InstanceId, ItemId, Tick, Value};
use std::collections::BTreeMap;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Instance (re)started executing its program from the first step.
    /// Restart-based protocols (2PL-HP) emit one `Begin` per attempt.
    Begin,
    /// A read was performed: the instance observed `value` at committed
    /// `version` of `item` (`own = true` if served from its own staged
    /// write).
    Read {
        /// Item read.
        item: ItemId,
        /// Value observed.
        value: Value,
        /// Committed version observed.
        version: Version,
        /// Served from the instance's own workspace.
        own: bool,
    },
    /// A write was staged in the private workspace.
    StageWrite {
        /// Item written.
        item: ItemId,
        /// Staged value.
        value: Value,
    },
    /// The instance committed; its staged writes were installed.
    Commit,
    /// One staged write was installed at commit time as `version` of
    /// `item`. Emitted immediately after the corresponding [`Commit`]
    /// event, one per written item.
    ///
    /// [`Commit`]: EventKind::Commit
    Install {
        /// Item installed.
        item: ItemId,
        /// Installed value.
        value: Value,
        /// New committed version.
        version: Version,
    },
    /// The instance was aborted (its workspace discarded). Only
    /// restart-based baselines produce aborts; PCP-DA never does.
    Abort,
}

/// One logged event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// When it happened.
    pub at: Tick,
    /// Which instance it concerns.
    pub instance: InstanceId,
    /// What happened.
    pub kind: EventKind,
}

/// The complete event log of a run.
#[derive(Clone, Debug, Default)]
pub struct History {
    events: Vec<Event>,
    commit_order: Vec<InstanceId>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size the event log for roughly `n` events, so steady-state
    /// runs append without reallocating.
    pub fn reserve_events(&mut self, n: usize) {
        self.events.reserve(n);
    }

    /// Append an event. `Commit` events additionally extend the commit
    /// order.
    pub fn push(&mut self, at: Tick, instance: InstanceId, kind: EventKind) {
        if matches!(kind, EventKind::Commit) {
            self.commit_order.push(instance);
        }
        self.events.push(Event { at, instance, kind });
    }

    /// All events in log order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Instances in commit order — the serialization order PCP-DA
    /// guarantees (Theorem 3).
    pub fn commit_order(&self) -> &[InstanceId] {
        &self.commit_order
    }

    /// Number of committed instances.
    pub fn committed(&self) -> usize {
        self.commit_order.len()
    }

    /// Number of abort events.
    pub fn aborts(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Abort))
            .count()
    }

    /// The reads of each committed instance's *final* (committing) attempt,
    /// in program order: events after the last `Begin` of that instance.
    pub fn committed_reads(&self) -> BTreeMap<InstanceId, Vec<(ItemId, Value, Version, bool)>> {
        let mut last_begin: BTreeMap<InstanceId, usize> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if matches!(e.kind, EventKind::Begin) {
                last_begin.insert(e.instance, i);
            }
        }
        let mut out: BTreeMap<InstanceId, Vec<(ItemId, Value, Version, bool)>> = BTreeMap::new();
        for &who in &self.commit_order {
            out.insert(who, Vec::new());
        }
        for (i, e) in self.events.iter().enumerate() {
            if let EventKind::Read {
                item,
                value,
                version,
                own,
            } = e.kind
            {
                if let Some(reads) = out.get_mut(&e.instance) {
                    if i >= *last_begin.get(&e.instance).unwrap_or(&0) {
                        reads.push((item, value, version, own));
                    }
                }
            }
        }
        out
    }

    /// Per-item install sequence `(version, writer, value)`, ascending by
    /// version — the ww order of the history.
    pub fn install_order(&self) -> BTreeMap<ItemId, Vec<(Version, InstanceId, Value)>> {
        let mut out: BTreeMap<ItemId, Vec<(Version, InstanceId, Value)>> = BTreeMap::new();
        for e in &self.events {
            if let EventKind::Install {
                item,
                value,
                version,
            } = e.kind
            {
                out.entry(item)
                    .or_default()
                    .push((version, e.instance, value));
            }
        }
        // Keep versions sorted (they are logged in commit order, which is
        // already ascending per item, but be defensive).
        for seq in out.values_mut() {
            seq.sort_by_key(|(v, _, _)| *v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    fn inst(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    #[test]
    fn commit_order_tracks_commits() {
        let mut h = History::new();
        h.push(Tick(0), inst(0), EventKind::Begin);
        h.push(Tick(1), inst(1), EventKind::Begin);
        h.push(Tick(2), inst(1), EventKind::Commit);
        h.push(Tick(3), inst(0), EventKind::Commit);
        assert_eq!(h.commit_order(), &[inst(1), inst(0)]);
        assert_eq!(h.committed(), 2);
        assert_eq!(h.aborts(), 0);
    }

    #[test]
    fn committed_reads_ignore_aborted_attempts() {
        let mut h = History::new();
        let t = inst(0);
        h.push(Tick(0), t, EventKind::Begin);
        h.push(
            Tick(1),
            t,
            EventKind::Read {
                item: ItemId(0),
                value: Value(1),
                version: 1,
                own: false,
            },
        );
        h.push(Tick(2), t, EventKind::Abort);
        h.push(Tick(3), t, EventKind::Begin); // restart
        h.push(
            Tick(4),
            t,
            EventKind::Read {
                item: ItemId(0),
                value: Value(2),
                version: 2,
                own: false,
            },
        );
        h.push(Tick(5), t, EventKind::Commit);

        let reads = h.committed_reads();
        assert_eq!(reads[&t], vec![(ItemId(0), Value(2), 2, false)]);
        assert_eq!(h.aborts(), 1);
    }

    #[test]
    fn committed_reads_exclude_uncommitted_instances() {
        let mut h = History::new();
        h.push(Tick(0), inst(0), EventKind::Begin);
        h.push(
            Tick(1),
            inst(0),
            EventKind::Read {
                item: ItemId(0),
                value: Value(1),
                version: 0,
                own: false,
            },
        );
        // never commits
        assert!(h.committed_reads().is_empty());
    }

    #[test]
    fn install_order_is_per_item_ascending() {
        let mut h = History::new();
        h.push(Tick(1), inst(0), EventKind::Commit);
        h.push(
            Tick(1),
            inst(0),
            EventKind::Install {
                item: ItemId(0),
                value: Value(10),
                version: 1,
            },
        );
        h.push(Tick(2), inst(1), EventKind::Commit);
        h.push(
            Tick(2),
            inst(1),
            EventKind::Install {
                item: ItemId(0),
                value: Value(20),
                version: 2,
            },
        );
        let order = h.install_order();
        assert_eq!(
            order[&ItemId(0)],
            vec![(1, inst(0), Value(10)), (2, inst(1), Value(20))]
        );
    }
}
