//! The committed store.

use rtdb_types::{InstanceId, ItemId, Tick, Value};
use std::collections::BTreeMap;

/// Monotonically increasing per-item version number. Version 0 is the
/// initial (unwritten) state of every item.
pub type Version = u64;

/// A committed value together with its provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VersionedValue {
    /// The committed value.
    pub value: Value,
    /// Per-item version, incremented by each committing writer.
    pub version: Version,
    /// The instance whose commit installed this version (`None` for the
    /// initial version 0).
    pub writer: Option<InstanceId>,
    /// When the version was installed.
    pub installed_at: Tick,
}

impl VersionedValue {
    /// The version-0 state every item starts in.
    pub const INITIAL: VersionedValue = VersionedValue {
        value: Value::INITIAL,
        version: 0,
        writer: None,
        installed_at: Tick::ZERO,
    };

    fn initial() -> Self {
        Self::INITIAL
    }
}

/// The memory-resident committed store.
///
/// Items spring into existence at their initial value on first touch, so a
/// database needs no schema. Reads never block here — visibility is decided
/// by the concurrency-control protocol before the storage layer is reached.
#[derive(Clone, Debug, Default)]
pub struct Database {
    items: BTreeMap<ItemId, VersionedValue>,
}

impl Database {
    /// An empty database; every item reads as [`Value::INITIAL`] at
    /// version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latest committed version of `item`, by value. Prefer
    /// [`Database::get`] on hot paths — it hands back a borrow and a miss
    /// costs nothing.
    pub fn read(&self, item: ItemId) -> VersionedValue {
        *self.get(item)
    }

    /// Latest committed version of `item` as a borrowed view; unwritten
    /// items borrow the shared [`VersionedValue::INITIAL`].
    pub fn get(&self, item: ItemId) -> &VersionedValue {
        self.items.get(&item).unwrap_or(&VersionedValue::INITIAL)
    }

    /// Install a committed write, returning the new version number.
    pub fn install(&mut self, writer: InstanceId, item: ItemId, value: Value, at: Tick) -> Version {
        let entry = self
            .items
            .entry(item)
            .or_insert_with(VersionedValue::initial);
        entry.version += 1;
        entry.value = value;
        entry.writer = Some(writer);
        entry.installed_at = at;
        entry.version
    }

    /// Absorb another database whose written items are disjoint from this
    /// one's — the shard-merge path: each shard installs only the items it
    /// owns, so the union of per-shard databases is the global store.
    pub fn absorb(&mut self, other: Database) {
        for (item, v) in other.items {
            let prev = self.items.insert(item, v);
            debug_assert!(prev.is_none(), "shards wrote overlapping item {item:?}");
        }
    }

    /// Snapshot of all item states (for final-state comparison).
    pub fn snapshot(&self) -> BTreeMap<ItemId, Value> {
        self.items.iter().map(|(k, v)| (*k, v.value)).collect()
    }

    /// Number of items ever written.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no item was ever written.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    #[test]
    fn unwritten_items_read_initial_version_zero() {
        let db = Database::new();
        let v = db.read(ItemId(7));
        assert_eq!(v.value, Value::INITIAL);
        assert_eq!(v.version, 0);
        assert_eq!(v.writer, None);
    }

    #[test]
    fn borrowed_get_matches_read() {
        let mut db = Database::new();
        assert_eq!(db.get(ItemId(3)), &VersionedValue::INITIAL);
        let w = InstanceId::first(TxnId(0));
        db.install(w, ItemId(3), Value(7), Tick(1));
        assert_eq!(*db.get(ItemId(3)), db.read(ItemId(3)));
        assert_eq!(db.get(ItemId(3)).value, Value(7));
    }

    #[test]
    fn install_bumps_version_and_records_writer() {
        let mut db = Database::new();
        let w1 = InstanceId::first(TxnId(0));
        let w2 = InstanceId::first(TxnId(1));
        assert_eq!(db.install(w1, ItemId(0), Value(10), Tick(5)), 1);
        assert_eq!(db.install(w2, ItemId(0), Value(20), Tick(9)), 2);
        let v = db.read(ItemId(0));
        assert_eq!(v.value, Value(20));
        assert_eq!(v.version, 2);
        assert_eq!(v.writer, Some(w2));
        assert_eq!(v.installed_at, Tick(9));
    }

    #[test]
    fn versions_are_per_item() {
        let mut db = Database::new();
        let w = InstanceId::first(TxnId(0));
        db.install(w, ItemId(0), Value(1), Tick(1));
        assert_eq!(db.read(ItemId(1)).version, 0);
        assert_eq!(db.install(w, ItemId(1), Value(2), Tick(2)), 1);
    }

    #[test]
    fn absorb_merges_disjoint_shards() {
        let w = InstanceId::first(TxnId(0));
        let mut even = Database::new();
        even.install(w, ItemId(0), Value(10), Tick(1));
        even.install(w, ItemId(2), Value(12), Tick(2));
        let mut odd = Database::new();
        odd.install(w, ItemId(1), Value(11), Tick(3));
        even.absorb(odd);
        assert_eq!(even.len(), 3);
        assert_eq!(even.read(ItemId(1)).value, Value(11));
        assert_eq!(even.read(ItemId(2)).installed_at, Tick(2));
    }

    #[test]
    fn snapshot_reflects_current_values() {
        let mut db = Database::new();
        let w = InstanceId::first(TxnId(0));
        db.install(w, ItemId(0), Value(1), Tick(1));
        db.install(w, ItemId(1), Value(2), Tick(1));
        db.install(w, ItemId(0), Value(3), Tick(2));
        let snap = db.snapshot();
        assert_eq!(snap[&ItemId(0)], Value(3));
        assert_eq!(snap[&ItemId(1)], Value(2));
        assert_eq!(db.len(), 2);
    }
}
