//! Naive-DA: the deliberately weakened dynamic-adjustment protocol of the
//! paper's Example 5.
//!
//! Section 7 observes that either of two conditions preserves single
//! blocking:
//!
//! 1. `P_i > Sysceil_i` (PCP-DA's LC2), or
//! 2. `P_i ≥ HPW(x)`,
//!
//! but that condition (2) **cannot avoid deadlocks** on its own — Example 5
//! constructs a two-transaction deadlock. LC3/LC4 restrict condition (2)
//! with the `T*` clauses precisely to exclude it. This protocol grants
//! read locks under the *unrestricted* disjunction (1) ∨ (2) (and write
//! locks under LC1), reproducing the deadlock so the engine's wait-for
//! detector and the Example 5 experiment can demonstrate it.

use rtdb_core::{Decision, EngineView, LockRequest, ProtocolFor};
use rtdb_types::{Ceiling, InstanceId, LockMode};
use std::collections::BTreeSet;

/// The deliberately deadlock-prone Example 5 protocol.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveDa;

impl NaiveDa {
    /// New instance.
    pub fn new() -> Self {
        NaiveDa
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for NaiveDa {
    fn name(&self) -> &'static str {
        "Naive-DA"
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        let locks = view.locks();
        let ceilings = view.ceilings();
        let p_i = view.base_priority(req.who);

        match req.mode {
            LockMode::Write => {
                if locks.no_rlock_by_others(req.item, req.who) {
                    Decision::Grant
                } else {
                    Decision::block_on(req.who, locks.readers_other_than(req.item, req.who))
                }
            }
            LockMode::Read => {
                let sys = ceilings.pcpda_sysceil(locks, req.who);
                // Condition (1).
                if sys.ceiling.cleared_by(p_i) {
                    return Decision::Grant;
                }
                // Condition (2): P_i >= HPW(x), with no further safeguard.
                let hpw = ceilings.wceil(req.item);
                if hpw <= Ceiling::At(p_i) {
                    return Decision::Grant;
                }
                // Blocked: per Lemma 4's shape, blockers are holders of
                // read-locked items at or above P_i.
                let mut blockers: BTreeSet<InstanceId> = BTreeSet::new();
                for (item, holders) in locks.read_locked_by_others(req.who) {
                    if !ceilings.wceil(item).cleared_by(p_i) {
                        blockers.extend(holders);
                    }
                }
                Decision::block_on(req.who, blockers)
            }
        }
    }

    fn may_deadlock(&self) -> bool {
        // The whole point of the demo: without PCP-DA's side conditions
        // the dynamic-adjustment idea alone deadlocks.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_core::testkit::StaticView;
    use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate, TxnId};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn req(who: InstanceId, item: u32, mode: LockMode) -> LockRequest {
        LockRequest {
            who,
            item: ItemId(item),
            mode,
        }
    }

    /// Example 5 set: T_H: R(y),W(x); T_L: R(x),W(y).
    fn example5() -> rtdb_types::TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "TH",
                10,
                vec![Step::read(ItemId(1), 1), Step::write(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "TL",
                10,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn example5_lock_sequence_reaches_circular_wait() {
        let set = example5();
        let mut view = StaticView::new(&set);
        let mut p = NaiveDa::new();
        let (th, tl) = (i(0), i(1));

        // T_L read-locks x (condition (1): nothing locked).
        assert_eq!(
            p.request(&view, req(tl, 0, LockMode::Read)),
            Decision::Grant
        );
        view.grant(tl, ItemId(0), LockMode::Read);
        view.record_read(tl, ItemId(0));

        // T_H read-locks y: condition (1) fails (Sysceil = Wceil(x) = P_H),
        // condition (2) P_H >= HPW(y) = P_L grants -- the unsafe grant
        // PCP-DA's LC3/LC4 forbid.
        assert_eq!(
            p.request(&view, req(th, 1, LockMode::Read)),
            Decision::Grant
        );
        view.grant(th, ItemId(1), LockMode::Read);
        view.record_read(th, ItemId(1));

        // T_H requests write x: blocked by T_L's read lock.
        assert_eq!(
            p.request(&view, req(th, 0, LockMode::Write)),
            Decision::Block { blockers: vec![tl] }
        );

        // T_L (inheriting P_H) requests write y: blocked by T_H -> cycle.
        assert_eq!(
            p.request(&view, req(tl, 1, LockMode::Write)),
            Decision::Block { blockers: vec![th] }
        );
    }

    #[test]
    fn pcpda_blocks_the_unsafe_grant_instead() {
        use rtdb_cc::PcpDa;
        let set = example5();
        let mut view = StaticView::new(&set);
        let mut p = PcpDa::new();
        let (th, tl) = (i(0), i(1));

        assert_eq!(
            p.request(&view, req(tl, 0, LockMode::Read)),
            Decision::Grant
        );
        view.grant(tl, ItemId(0), LockMode::Read);
        view.record_read(tl, ItemId(0));

        // Under PCP-DA, T_H's read of y is DENIED (LC3 fails on
        // y ∈ WriteSet(T*), LC4 fails on priority equality), so the
        // deadlock never forms.
        assert_eq!(
            p.request(&view, req(th, 1, LockMode::Read)),
            Decision::Block { blockers: vec![tl] }
        );
    }
}
