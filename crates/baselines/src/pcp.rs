//! The original priority ceiling protocol (Sha, Rajkumar, Lehoczky —
//! the paper's reference \[16\]), applied to data items.
//!
//! One absolute ceiling per item (`Aceil(x)`), exclusive access semantics
//! (no read sharing), and the single rule `P_i > Sysceil_i` where
//! `Sysceil_i` is the highest `Aceil` over items locked by others. The
//! ceiling test subsumes conflict detection: every transaction accessing
//! `x` has priority at most `Aceil(x)`, so any second access to a locked
//! item fails the test regardless of mode.

use rtdb_core::{Decision, EngineView, LockRequest, ProtocolFor};

/// The original PCP (stateless).
#[derive(Debug, Default, Clone, Copy)]
pub struct Pcp;

impl Pcp {
    /// New instance.
    pub fn new() -> Self {
        Pcp
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for Pcp {
    fn name(&self) -> &'static str {
        "PCP"
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        let p_i = view.base_priority(req.who);
        let sys = view.ceilings().pcp_sysceil(view.locks(), req.who);
        if sys.ceiling.cleared_by(p_i) {
            Decision::Grant
        } else {
            Decision::block_on(req.who, sys.holders)
        }
    }

    fn system_ceiling(&self, view: &V) -> rtdb_types::Ceiling {
        view.ceilings()
            .pcp_sysceil(view.locks(), rtdb_core::protocol::ceiling_observer())
            .ceiling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_core::testkit::StaticView;
    use rtdb_types::{InstanceId, ItemId, LockMode, SetBuilder, Step, TransactionTemplate, TxnId};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn req(who: InstanceId, item: u32, mode: LockMode) -> LockRequest {
        LockRequest {
            who,
            item: ItemId(item),
            mode,
        }
    }

    #[test]
    fn no_read_sharing_under_pcp() {
        // Both templates only READ x; under RW-PCP they could share, under
        // PCP the second is blocked by the absolute ceiling.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        let mut p = Pcp::new();
        assert_eq!(
            p.request(&view, req(i(1), 0, LockMode::Read)),
            Decision::Grant
        );
        view.grant(i(1), ItemId(0), LockMode::Read);
        assert_eq!(
            p.request(&view, req(i(0), 0, LockMode::Read)),
            Decision::Block {
                blockers: vec![i(1)]
            }
        );
    }

    #[test]
    fn unrelated_items_below_ceiling_are_blocked_too() {
        // Ceiling blocking: T2's item y is free but Aceil(x)=P1 >= P2.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![Step::read(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "T3",
                10,
                vec![Step::write(ItemId(0), 1)],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        let mut p = Pcp::new();
        view.grant(i(2), ItemId(0), LockMode::Write);
        assert_eq!(
            p.request(&view, req(i(1), 1, LockMode::Read)),
            Decision::Block {
                blockers: vec![i(2)]
            }
        );
    }

    #[test]
    fn higher_priority_than_ceiling_proceeds() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                10,
                vec![Step::read(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "T3",
                10,
                vec![Step::write(ItemId(0), 1)],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        let mut p = Pcp::new();
        view.grant(i(2), ItemId(0), LockMode::Write);
        // T1 accesses y; Aceil(x) = P2 < P1 -> grant.
        assert_eq!(
            p.request(&view, req(i(0), 1, LockMode::Read)),
            Decision::Grant
        );
    }
}
