//! Strict two-phase locking baselines.
//!
//! * [`TwoPlPi`] — 2PL with priority inheritance: classic read/write lock
//!   compatibility, conflicting requests block and the holders inherit the
//!   requester's priority. Deadlocks are possible; the engine detects them
//!   on the wait-for graph and (when configured) resolves by aborting the
//!   lowest-priority instance on the cycle.
//! * [`TwoPlHp`] — 2PL High Priority (Abbott & Garcia-Molina style):
//!   a conflict is resolved in favour of the higher-priority transaction.
//!   If the requester's priority exceeds every conflicting holder's, the
//!   holders are aborted and restarted; otherwise the requester blocks.
//!   All wait-for edges then point at higher-priority holders, so no cycle
//!   can form — deadlock-free, at the price of restarts, which is exactly
//!   the trade-off the paper's §2 discusses (restart overheads break the
//!   schedulability analysis).

use rtdb_core::{Decision, EngineView, LockRequest, ProtocolFor};
use rtdb_types::{InstanceId, LockMode};
use std::collections::BTreeSet;

/// Conflicting holders of `req` under classical r/w lock semantics.
fn conflict_holders<V: EngineView + ?Sized>(view: &V, req: LockRequest) -> BTreeSet<InstanceId> {
    let locks = view.locks();
    let mut out: BTreeSet<InstanceId> = BTreeSet::new();
    match req.mode {
        LockMode::Read => {
            out.extend(locks.writers_other_than(req.item, req.who));
        }
        LockMode::Write => {
            out.extend(locks.writers_other_than(req.item, req.who));
            out.extend(locks.readers_other_than(req.item, req.who));
        }
    }
    out
}

/// Strict 2PL with priority inheritance.
#[derive(Debug, Default, Clone, Copy)]
pub struct TwoPlPi;

impl TwoPlPi {
    /// New instance.
    pub fn new() -> Self {
        TwoPlPi
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for TwoPlPi {
    fn name(&self) -> &'static str {
        "2PL-PI"
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        let conflicts = conflict_holders(view, req);
        if conflicts.is_empty() {
            Decision::Grant
        } else {
            Decision::block_on(req.who, conflicts)
        }
    }

    fn may_deadlock(&self) -> bool {
        // Blocking on arbitrary conflicts with no ceiling discipline
        // admits circular waits; drivers pair 2PL-PI with the engine's
        // wait-for deadlock resolution.
        true
    }
}

/// 2PL High Priority: abort lower-priority conflicting holders.
#[derive(Debug, Default, Clone, Copy)]
pub struct TwoPlHp;

impl TwoPlHp {
    /// New instance.
    pub fn new() -> Self {
        TwoPlHp
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for TwoPlHp {
    fn name(&self) -> &'static str {
        "2PL-HP"
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        let conflicts = conflict_holders(view, req);
        if conflicts.is_empty() {
            return Decision::Grant;
        }
        let p_req = view.base_priority(req.who);
        if conflicts.iter().all(|&h| view.base_priority(h) < p_req) {
            Decision::AbortHolders {
                victims: conflicts.into_iter().collect(),
            }
        } else {
            Decision::block_on(req.who, conflicts)
        }
    }

    fn may_abort(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_core::testkit::StaticView;
    use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate, TxnId};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn req(who: InstanceId, item: u32, mode: LockMode) -> LockRequest {
        LockRequest {
            who,
            item: ItemId(item),
            mode,
        }
    }

    fn set() -> rtdb_types::TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                10,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "L",
                10,
                vec![Step::write(ItemId(0), 1), Step::read(ItemId(1), 1)],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn twopl_pi_read_read_shares() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = TwoPlPi::new();
        view.grant(i(1), ItemId(1), LockMode::Read);
        assert_eq!(
            p.request(&view, req(i(0), 1, LockMode::Read)),
            Decision::Grant
        );
    }

    #[test]
    fn twopl_pi_blocks_on_conflicts_regardless_of_priority() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = TwoPlPi::new();
        view.grant(i(1), ItemId(0), LockMode::Write);
        // Even the highest-priority transaction blocks under PI.
        assert_eq!(
            p.request(&view, req(i(0), 0, LockMode::Read)),
            Decision::Block {
                blockers: vec![i(1)]
            }
        );
        // Write request vs read holder also blocks.
        view.grant(i(0), ItemId(1), LockMode::Read);
        assert_eq!(
            p.request(&view, req(i(1), 1, LockMode::Write)),
            Decision::Block {
                blockers: vec![i(0)]
            }
        );
        assert!(!rtdb_core::Protocol::may_abort(&p));
    }

    #[test]
    fn twopl_hp_aborts_lower_priority_holders() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = TwoPlHp::new();
        view.grant(i(1), ItemId(0), LockMode::Write);
        assert_eq!(
            p.request(&view, req(i(0), 0, LockMode::Read)),
            Decision::AbortHolders {
                victims: vec![i(1)]
            }
        );
        assert!(rtdb_core::Protocol::may_abort(&p));
    }

    #[test]
    fn twopl_hp_blocks_behind_higher_priority_holders() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = TwoPlHp::new();
        view.grant(i(0), ItemId(1), LockMode::Read);
        assert_eq!(
            p.request(&view, req(i(1), 1, LockMode::Write)),
            Decision::Block {
                blockers: vec![i(0)]
            }
        );
    }

    #[test]
    fn twopl_hp_mixed_holders_block() {
        // One holder higher, one lower than the requester: must block
        // (an abort of only the lower one would not clear the conflict).
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                10,
                vec![Step::write(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "C",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        let mut p = TwoPlHp::new();
        view.grant(i(0), ItemId(0), LockMode::Read); // higher than B
        view.grant(i(2), ItemId(0), LockMode::Read); // lower than B
        let d = p.request(&view, req(i(1), 0, LockMode::Write));
        assert_eq!(
            d,
            Decision::Block {
                blockers: vec![i(0), i(2)]
            }
        );
    }
}
