//! CCP: the convex ceiling protocol (Nakazato, Lin — the paper's
//! reference \[13\]).
//!
//! CCP follows the original PCP's locking rule (`P_i > Sysceil_i` over
//! absolute ceilings) but releases locks before commit: once a
//! transaction has performed its **last access** to an item `x` and will
//! not access any item with a ceiling higher than or equal to `Aceil(x)`
//! in its remaining steps, it unlocks `x` immediately instead of holding
//! it to commit. The held ceilings therefore form a "convex" (unimodal)
//! profile over the transaction's lifetime, shortening the worst-case
//! blocking of high-priority transactions.
//!
//! Two points where this implementation is deliberately stricter than
//! the paper's one-paragraph description (both were *forced* by this
//! repository's serializability oracles — the looser readings produce
//! non-serializable histories, found by property testing and kept as
//! regression knowledge here):
//!
//! 1. **ties**: an item may not be released while an item with an *equal*
//!    ceiling is still to be locked (two transactions at the same ceiling
//!    can interleave around the releaser and close a serialization
//!    cycle);
//! 2. **lock point**: no release happens before the transaction holds
//!    every lock it will ever need (the 2PL growing phase). Releasing a
//!    read lock before a later lock acquisition lets a conflicting
//!    transaction both observe the released item and be observed through
//!    a later conflict — the classic non-2PL anomaly; the ceiling
//!    machinery alone does not prevent it.
//!
//! Because a written item may be unlocked before commit, later readers
//! must observe the value: the protocol declares
//! [`UpdateModel::InstallOnEarlyRelease`], instructing the engine to
//! install the staged write at the moment of the early unlock.
//!
//! The paper describes CCP only in prose (§2); this implementation is the
//! direct transcription of that prose, documented as a substitution in
//! DESIGN.md.

use rtdb_core::{Decision, EngineView, LockRequest, ProtocolFor, UpdateModel};
use rtdb_types::{InstanceId, ItemId, LockMode};

/// The convex ceiling protocol.
#[derive(Debug, Default, Clone, Copy)]
pub struct Ccp;

impl Ccp {
    /// New instance.
    pub fn new() -> Self {
        Ccp
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for Ccp {
    fn name(&self) -> &'static str {
        "CCP"
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        let p_i = view.base_priority(req.who);
        let sys = view.ceilings().pcp_sysceil(view.locks(), req.who);
        if sys.ceiling.cleared_by(p_i) {
            Decision::Grant
        } else {
            Decision::block_on(req.who, sys.holders)
        }
    }

    fn system_ceiling(&self, view: &V) -> rtdb_types::Ceiling {
        view.ceilings()
            .pcp_sysceil(view.locks(), rtdb_core::protocol::ceiling_observer())
            .ceiling
    }

    fn early_releases(
        &mut self,
        view: &V,
        who: InstanceId,
        completed_step: usize,
    ) -> Vec<(ItemId, LockMode)> {
        let template = view.set().template(who.txn);
        let remaining = &template.steps[completed_step + 1..];

        // Lock point: every remaining access must already be covered by a
        // held lock; otherwise no early release (see the module docs).
        let at_lock_point = remaining.iter().all(|s| match s.op.access() {
            None => true,
            Some((item, rtdb_types::LockMode::Read)) => {
                view.locks().holds(who, item, LockMode::Read)
                    || view.locks().holds(who, item, LockMode::Write)
            }
            Some((item, rtdb_types::LockMode::Write)) => {
                view.locks().holds(who, item, LockMode::Write)
            }
        });
        if !at_lock_point {
            return Vec::new();
        }

        // The highest ceiling this transaction will still access.
        let future_ceiling = remaining
            .iter()
            .filter_map(|s| s.op.item())
            .map(|x| view.ceilings().aceil(x))
            .max()
            .unwrap_or(rtdb_types::Ceiling::Dummy);

        // Whether any remaining step still accesses `item`.
        let still_needed = |item: ItemId| remaining.iter().any(|s| s.op.item() == Some(item));

        // Collect held locks eligible for early release: last use is past
        // and every remaining ceiling is *strictly* lower. (The paper's
        // prose — "will not lock any data items with a higher priority
        // ceiling" — is ambiguous about ties; releasing on a tie is
        // unsafe: two transactions at the same ceiling can then interleave
        // around the releaser and close a serialization cycle, which this
        // repository's property tests demonstrated. Strictly-lower keeps
        // the held-ceiling profile convex in the strong sense and all
        // histories serializable.)
        let no_future_data = remaining.iter().all(|s| s.op.item().is_none());
        let mut out = Vec::new();
        for lock in view.locks().held_by(who) {
            if still_needed(lock.item) {
                continue;
            }
            let c = view.ceilings().aceil(lock.item);
            if c > future_ceiling || no_future_data {
                out.push((lock.item, lock.mode));
            }
        }
        out
    }

    fn update_model(&self) -> UpdateModel {
        UpdateModel::InstallOnEarlyRelease
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_core::testkit::StaticView;
    use rtdb_types::{InstanceId, SetBuilder, Step, TransactionTemplate, TxnId};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    #[test]
    fn releases_high_ceiling_item_at_lock_point() {
        // T2: R(a), R(b), C, C with Aceil(a) > Aceil(b): once both locks
        // are held and the a-step is done, a is released before the
        // computation tail (the convex-profile benefit), and b goes at
        // the end of its own last access.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                10,
                vec![Step::read(ItemId(0), 1)],
            )) // raises Aceil(a)
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![
                    Step::read(ItemId(0), 1),
                    Step::read(ItemId(1), 1),
                    Step::compute(1),
                    Step::compute(1),
                ],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        view.grant(i(1), ItemId(0), LockMode::Read);
        let mut p = Ccp::new();
        // Before the lock point (b not yet held): nothing is released.
        assert!(p.early_releases(&view, i(1), 0).is_empty());
        // After the b-step both locks are held and neither is needed
        // again: both are released before the compute tail.
        view.grant(i(1), ItemId(1), LockMode::Read);
        let rel = p.early_releases(&view, i(1), 1);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn holds_lower_ceiling_item_while_equal_or_higher_access_remains() {
        // T2: R(b), R(a), R(b') pattern via: R(b), R(a), then a compute;
        // after step 0, a (higher ceiling) is not yet locked -> nothing
        // releases (lock point); after step 1 both held, b's ceiling is
        // *lower* than nothing remaining -> both release.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![
                    Step::read(ItemId(1), 1),
                    Step::read(ItemId(0), 1),
                    Step::compute(1),
                ],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        view.grant(i(1), ItemId(1), LockMode::Read);
        let mut p = Ccp::new();
        assert!(p.early_releases(&view, i(1), 0).is_empty());
        view.grant(i(1), ItemId(0), LockMode::Read);
        let rel = p.early_releases(&view, i(1), 1);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn holds_items_needed_by_equal_ceiling_future_access() {
        // T1: R(a), R(c), C where Aceil(a) == Aceil(c) (both touched by
        // the same higher template): after the a-step (lock point not yet
        // reached: c unheld) nothing releases; once c is held, a may not
        // release while an *equal*-ceiling access (c itself) remains —
        // but c's access is the current step, so both go at step 1.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                10,
                vec![Step::read(ItemId(0), 1), Step::read(ItemId(2), 1)],
            ))
            .with(TransactionTemplate::new(
                "T",
                10,
                vec![
                    Step::read(ItemId(0), 1),
                    Step::read(ItemId(2), 1),
                    Step::compute(1),
                ],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        view.grant(i(1), ItemId(0), LockMode::Read);
        let mut p = Ccp::new();
        assert!(p.early_releases(&view, i(1), 0).is_empty());
        view.grant(i(1), ItemId(2), LockMode::Read);
        assert_eq!(p.early_releases(&view, i(1), 1).len(), 2);
    }

    #[test]
    fn item_still_needed_later_is_kept() {
        // T1: R(x), C, W(x) — x read at step 0 but written at step 2.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                10,
                vec![
                    Step::read(ItemId(0), 1),
                    Step::compute(1),
                    Step::write(ItemId(0), 1),
                ],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        view.grant(i(0), ItemId(0), LockMode::Read);
        let mut p = Ccp::new();
        assert!(p.early_releases(&view, i(0), 0).is_empty());
    }

    #[test]
    fn uses_install_on_early_release_model() {
        assert_eq!(
            rtdb_core::Protocol::update_model(&Ccp::new()),
            UpdateModel::InstallOnEarlyRelease
        );
        assert_eq!(rtdb_core::Protocol::name(&Ccp::new()), "CCP");
    }
}
