//! RW-PCP: the read/write priority ceiling protocol (Sha, Rajkumar, Son,
//! Chang — the paper's reference \[17\]).
//!
//! Each item carries two static ceilings: `Wceil(x)` (highest priority
//! that may write `x`) and `Aceil(x)` (highest priority that may read or
//! write `x`). At run time the *r/w ceiling* is
//!
//! * `RWceil(x) = Aceil(x)` while `x` is write-locked,
//! * `RWceil(x) = Wceil(x)` while `x` is read-locked.
//!
//! `Sysceil_i` is the highest `RWceil` over items locked by transactions
//! other than `T_i`, and the single locking rule is `P_i > Sysceil_i`.
//! No explicit conflict check is needed: every transaction that could
//! access `x` in a conflicting mode has priority at most the relevant
//! ceiling, so the ceiling test subsumes conflict detection (paper §2).
//! Blocked requesters are blocked by the holder(s) of the ceiling item,
//! which inherit their priority.

use rtdb_core::{Decision, EngineView, LockRequest, ProtocolFor};

/// The RW-PCP protocol (stateless).
#[derive(Debug, Default, Clone, Copy)]
pub struct RwPcp;

impl RwPcp {
    /// New instance.
    pub fn new() -> Self {
        RwPcp
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for RwPcp {
    fn name(&self) -> &'static str {
        "RW-PCP"
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        let p_i = view.base_priority(req.who);
        let sys = view.ceilings().rwpcp_sysceil(view.locks(), req.who);
        if sys.ceiling.cleared_by(p_i) {
            Decision::Grant
        } else {
            Decision::block_on(req.who, sys.holders)
        }
    }

    fn system_ceiling(&self, view: &V) -> rtdb_types::Ceiling {
        view.ceilings()
            .rwpcp_sysceil(view.locks(), rtdb_core::protocol::ceiling_observer())
            .ceiling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_core::testkit::StaticView;
    use rtdb_types::{
        InstanceId, ItemId, LockMode, SetBuilder, Step, TransactionSet, TransactionTemplate, TxnId,
    };

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn req(who: InstanceId, item: u32, mode: LockMode) -> LockRequest {
        LockRequest {
            who,
            item: ItemId(item),
            mode,
        }
    }

    /// Example 1 set: T1: R(x); T2: R(y); T3: W(x).
    fn example1() -> TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![Step::read(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "T3",
                10,
                vec![Step::write(ItemId(0), 3)],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn example1_ceiling_blocking_of_t2() {
        // T3 write-locks x => RWceil(x) = Aceil(x) = P1. T2 requests read
        // of the *free* item y and is still blocked: ceiling blocking.
        let set = example1();
        let mut view = StaticView::new(&set);
        let mut p = RwPcp::new();
        assert_eq!(
            p.request(&view, req(i(2), 0, LockMode::Write)),
            Decision::Grant
        );
        view.grant(i(2), ItemId(0), LockMode::Write);

        let d = p.request(&view, req(i(1), 1, LockMode::Read));
        assert_eq!(
            d,
            Decision::Block {
                blockers: vec![i(2)]
            }
        );
    }

    #[test]
    fn example1_conflict_blocking_of_t1() {
        // T1 requests read of x itself: also blocked (P1 !> Aceil(x)=P1).
        let set = example1();
        let mut view = StaticView::new(&set);
        let mut p = RwPcp::new();
        view.grant(i(2), ItemId(0), LockMode::Write);
        let d = p.request(&view, req(i(0), 0, LockMode::Read));
        assert_eq!(
            d,
            Decision::Block {
                blockers: vec![i(2)]
            }
        );
    }

    #[test]
    fn read_locks_admit_higher_priority_readers_only() {
        // x read by T1 and T3(writes nothing else); Wceil governs.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![Step::write(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "T3",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        let mut p = RwPcp::new();
        // T3 read-locks x: RWceil(x) = Wceil(x) = P2.
        assert_eq!(
            p.request(&view, req(i(2), 0, LockMode::Read)),
            Decision::Grant
        );
        view.grant(i(2), ItemId(0), LockMode::Read);
        // T1 (P1 > P2) may also read-lock x.
        assert_eq!(
            p.request(&view, req(i(0), 0, LockMode::Read)),
            Decision::Grant
        );
        // T2 (the writer, P2 !> P2) is blocked.
        assert_eq!(
            p.request(&view, req(i(1), 0, LockMode::Write)),
            Decision::Block {
                blockers: vec![i(2)]
            }
        );
    }

    #[test]
    fn own_locks_do_not_raise_own_ceiling() {
        let set = example1();
        let mut view = StaticView::new(&set);
        let mut p = RwPcp::new();
        view.grant(i(2), ItemId(0), LockMode::Write);
        // T3 itself may continue locking.
        assert_eq!(
            p.request(&view, req(i(2), 1, LockMode::Read)),
            Decision::Grant
        );
    }

    #[test]
    fn write_write_exclusion_via_aceil() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                10,
                vec![Step::write(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                10,
                vec![Step::write(ItemId(0), 1)],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        let mut p = RwPcp::new();
        view.grant(i(1), ItemId(0), LockMode::Write);
        // A (higher priority) still cannot write-lock x: Aceil(x) = P_A.
        assert_eq!(
            p.request(&view, req(i(0), 0, LockMode::Write)),
            Decision::Block {
                blockers: vec![i(1)]
            }
        );
    }
}
