//! OCC-BC: optimistic concurrency control with broadcast commit (forward
//! validation) under priority scheduling.
//!
//! The paper's §2 contrasts the ceiling protocols against the
//! abort-and-restart school ([18, 19, 21]): let transactions run without
//! blocking and resolve conflicts at commit time by restarting the
//! invalidated parties. OCC-BC is the canonical representative:
//!
//! * every data access proceeds immediately (no locks ever block);
//! * when a transaction commits, every *active* transaction that has read
//!   an item the committer wrote is invalidated and restarted ("broadcast
//!   commit" / forward validation).
//!
//! The scheme is deadlock-free and blocking-free, but its restarts are
//! unbounded in the worst case — exactly why the paper rules the approach
//! out for *hard* real-time databases: "some cannot even provide the
//! schedulability analysis since they cannot bound the number of
//! abortions that a lower priority transaction may experience".
//! The E9 sweep makes that trade-off measurable.

use rtdb_core::{sorted_disjoint, Decision, EngineView, LockRequest, ProtocolFor};
use rtdb_types::InstanceId;

/// Optimistic concurrency control with broadcast commit.
#[derive(Debug, Default, Clone, Copy)]
pub struct OccBc;

impl OccBc {
    /// New instance.
    pub fn new() -> Self {
        OccBc
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for OccBc {
    fn name(&self) -> &'static str {
        "OCC-BC"
    }

    fn request(&mut self, _view: &V, _req: LockRequest) -> Decision {
        // Optimistic: never block. (The engine still records the "lock";
        // it is inert because this protocol never consults the table.)
        Decision::Grant
    }

    fn commit_victims(&mut self, view: &V, who: InstanceId) -> Vec<InstanceId> {
        let writes = view.staged_write_items(who);
        if writes.is_empty() {
            return Vec::new();
        }
        view.active_instances()
            .iter()
            .copied()
            .filter(|&other| other != who)
            .filter(|&other| !sorted_disjoint(view.data_read(other), &writes))
            .collect()
    }

    fn may_abort(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_core::testkit::StaticView;
    use rtdb_types::{ItemId, LockMode, SetBuilder, Step, TransactionTemplate, TxnId};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn set() -> rtdb_types::TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                10,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                10,
                vec![Step::read(ItemId(1), 1), Step::write(ItemId(0), 1)],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn never_blocks() {
        let set = set();
        let mut view = StaticView::new(&set);
        view.grant(i(1), ItemId(0), LockMode::Write);
        let mut p = OccBc::new();
        // Even a "conflicting" request proceeds.
        assert_eq!(
            p.request(
                &view,
                LockRequest {
                    who: i(0),
                    item: ItemId(0),
                    mode: LockMode::Write
                }
            ),
            Decision::Grant
        );
        assert!(rtdb_core::Protocol::may_abort(&p));
    }

    #[test]
    fn commit_invalidates_readers_of_written_items() {
        let set = set();
        let mut view = StaticView::new(&set);
        // B read y; A stages a write of y and commits.
        view.record_read(i(1), ItemId(1));
        view.record_staged_write(i(0), ItemId(1));
        let mut p = OccBc::new();
        assert_eq!(p.commit_victims(&view, i(0)), vec![i(1)]);
        // A reader of an unrelated item is spared.
        let mut view2 = StaticView::new(&set);
        view2.record_read(i(1), ItemId(0));
        view2.record_staged_write(i(0), ItemId(1));
        assert!(p.commit_victims(&view2, i(0)).is_empty());
    }

    #[test]
    fn read_only_commits_invalidate_nobody() {
        let set = set();
        let mut view = StaticView::new(&set);
        view.record_read(i(0), ItemId(0));
        view.record_read(i(1), ItemId(0));
        let mut p = OccBc::new();
        assert!(p.commit_victims(&view, i(0)).is_empty());
    }
}
