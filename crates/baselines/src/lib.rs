//! Baseline real-time concurrency-control protocols.
//!
//! Every comparator the paper names, implemented against the same
//! [`rtdb_core::ProtocolFor`] trait as PCP-DA so the simulator, the
//! oracles and the benchmarks treat them interchangeably:
//!
//! * [`RwPcp`] — the read/write priority ceiling protocol of Sha, Rajkumar
//!   and Lehoczky (the paper's main comparison target). Two static
//!   ceilings per item (`Wceil`, `Aceil`); the dynamic `RWceil` is
//!   `Aceil(x)` while `x` is write-locked and `Wceil(x)` while read-locked;
//!   a single rule `P_i > Sysceil_i` decides every request.
//! * [`Pcp`] — the original priority ceiling protocol with one absolute
//!   ceiling per item and exclusive access semantics.
//! * [`Ccp`] — the convex ceiling protocol of Nakazato and Lin: PCP's rule
//!   plus *early unlock* of an item once the transaction no longer needs
//!   it and will not lock any item with a higher ceiling.
//! * [`TwoPlPi`] — strict two-phase locking with priority inheritance.
//!   Can deadlock; the engine detects and (optionally) resolves by
//!   aborting the lowest-priority instance on the cycle.
//! * [`TwoPlHp`] — 2PL High Priority: conflicts are resolved in favour of
//!   the higher-priority transaction by aborting lower-priority holders.
//!   Deadlock-free but entails restarts.
//! * [`OccBc`] — optimistic concurrency control with broadcast commit:
//!   the abort-and-restart school the paper's §2 contrasts against; never
//!   blocks, restarts invalidated readers at commit.
//! * [`NaiveDa`] — the deliberately weakened variant the paper uses in
//!   Example 5 (condition "(2) `P_i ≥ HPW(x)`" without the `T*`
//!   safeguards); it deadlocks, demonstrating why LC3/LC4 carry their
//!   extra clauses.

#![forbid(unsafe_code)]

pub mod ccp;
pub mod naive_da;
pub mod occ;
pub mod pcp;
pub mod rwpcp;
pub mod twopl;

pub use ccp::Ccp;
pub use naive_da::NaiveDa;
pub use occ::OccBc;
pub use pcp::Pcp;
pub use rwpcp::RwPcp;
pub use twopl::{TwoPlHp, TwoPlPi};
