//! Bamboo: 2PL-HP with early release of write locks.

use crate::{conflict_holders, retire_candidates};
use rtdb_core::{Decision, EngineView, LockRequest, ProtocolFor};
use rtdb_types::{InstanceId, ItemId};

/// 2PL High Priority over active locks, early release of write locks
/// into the retired list; a retired chain is always acquirable — the
/// requester takes a commit dependency on the latest retiree, whatever
/// the priorities. See the crate docs for the shared retire policy and
/// the engine-side dependency machinery.
#[derive(Debug, Default, Clone, Copy)]
pub struct Bamboo;

impl Bamboo {
    /// New instance.
    pub fn new() -> Self {
        Bamboo
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for Bamboo {
    fn name(&self) -> &'static str {
        "Bamboo"
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        let conflicts = conflict_holders(view, req);
        let p_req = view.base_priority(req.who);
        if !conflicts.is_empty() {
            // Active conflicts: plain 2PL-HP. Wound only if *every*
            // holder is strictly lower priority (aborting a subset
            // would not clear the conflict).
            return if conflicts.iter().all(|&h| view.base_priority(h) < p_req) {
                Decision::AbortHolders {
                    victims: conflicts.into_iter().collect(),
                }
            } else {
                Decision::block_on(req.who, conflicts)
            };
        }
        // No active conflict. A retired chain is always acquirable: the
        // engine registers a commit dependency on the latest retiree at
        // grant, whatever the priorities. Depending on a lower-priority
        // retiree does invert priority at the commit gate, but the
        // inversion is bounded — the retiree is past all its writes and
        // only its compute tail separates it from commit — whereas
        // wounding it would throw away that completed work *and*
        // cascade every dirty reader it already served, which is
        // precisely the hotspot work early release exists to save.
        Decision::Grant
    }

    fn retires(&mut self, view: &V, who: InstanceId, completed_step: usize) -> Vec<ItemId> {
        retire_candidates(view, who, completed_step)
    }

    fn may_abort(&self) -> bool {
        true
    }

    fn may_deadlock(&self) -> bool {
        // Lock waits alone are HP-ordered (acyclic), but commit-gate
        // waits follow *retire* order, which need not agree with
        // priority — a gate edge plus a lock edge can close a cycle.
        // Drivers pair Bamboo with the engine's deadlock resolution.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_core::testkit::StaticView;
    use rtdb_types::{LockMode, SetBuilder, Step, TransactionTemplate, TxnId, Value};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn req(who: InstanceId, item: u32, mode: LockMode) -> LockRequest {
        LockRequest {
            who,
            item: ItemId(item),
            mode,
        }
    }

    fn set() -> rtdb_types::TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                10,
                vec![Step::write(ItemId(0), 1), Step::read(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "L",
                10,
                vec![Step::write(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn active_conflicts_follow_hp() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = Bamboo::new();
        view.grant(i(1), ItemId(0), LockMode::Write);
        assert_eq!(
            p.request(&view, req(i(0), 0, LockMode::Write)),
            Decision::AbortHolders {
                victims: vec![i(1)]
            }
        );
        view.release_all(i(1));
        view.grant(i(0), ItemId(0), LockMode::Write);
        assert_eq!(
            p.request(&view, req(i(1), 0, LockMode::Read)),
            Decision::Block {
                blockers: vec![i(0)]
            }
        );
    }

    #[test]
    fn retired_chain_grants_in_both_priority_directions() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = Bamboo::new();
        // High-priority txn 0 retired its write of item 0: a
        // lower-priority requester acquires over it (engine will take
        // the commit dependency).
        view.deps_mut().retire(i(0), ItemId(0), Value(7));
        assert_eq!(
            p.request(&view, req(i(1), 0, LockMode::Write)),
            Decision::Grant
        );
        // The reverse direction grants too: a high-priority requester
        // depends on the lower-priority latest retiree rather than
        // wounding its completed work (the inversion at the gate is
        // bounded by the retiree's compute tail).
        let mut view = StaticView::new(&set);
        view.deps_mut().retire(i(1), ItemId(0), Value(7));
        assert_eq!(
            p.request(&view, req(i(0), 0, LockMode::Read)),
            Decision::Grant
        );
    }

    #[test]
    fn retires_write_locks_past_last_access_only() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = Bamboo::new();
        // Txn 1: W(x) then W(y). After step 0, x is done — retire it.
        view.grant(i(1), ItemId(0), LockMode::Write);
        assert_eq!(
            ProtocolFor::retires(&mut p, &view, i(1), 0),
            vec![ItemId(0)]
        );
        // Read locks never retire: txn 0 after its last step holds
        // W(x) (already releasable) — but a read lock on y stays.
        let mut view = StaticView::new(&set);
        view.grant(i(0), ItemId(1), LockMode::Read);
        assert!(ProtocolFor::retires(&mut p, &view, i(0), 1).is_empty());
        assert!(rtdb_core::Protocol::may_abort(&p) && rtdb_core::Protocol::may_deadlock(&p));
    }
}
