//! Brook-2PL: deadlock-free early release via a static seniority order.

use crate::{conflict_holders, retire_candidates, senior};
use rtdb_core::{Decision, EngineView, LockRequest, ProtocolFor};
use rtdb_types::{InstanceId, ItemId};

/// Early-release 2PL with wait-die conflict resolution over the
/// seniority order of [`crate::senior`]: a requester facing a senior
/// conflicting holder (or a senior latest retiree) aborts itself
/// ([`Decision::AbortSelf`]); facing only juniors it waits — or, over a
/// retired chain, acquires and lets the engine register the commit
/// dependency. Every lock-wait edge and every commit-gate edge then
/// points senior → junior (a dependency on a retiree is only taken when
/// the retiree is junior), so the combined wait graph is acyclic and no
/// deadlock can form — without the wound machinery Bamboo needs.
#[derive(Debug, Default, Clone, Copy)]
pub struct Brook2Pl;

impl Brook2Pl {
    /// New instance.
    pub fn new() -> Self {
        Brook2Pl
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for Brook2Pl {
    fn name(&self) -> &'static str {
        "Brook-2PL"
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        let conflicts = conflict_holders(view, req);
        if !conflicts.is_empty() {
            let seniors: Vec<InstanceId> = conflicts
                .iter()
                .copied()
                .filter(|&h| senior(h, req.who))
                .collect();
            return if seniors.is_empty() {
                // The requester is senior to every conflicting holder:
                // waiting keeps all edges senior → junior.
                Decision::block_on(req.who, conflicts)
            } else {
                // Wait-die: the junior party restarts. The engine holds
                // the restart until a blocker commits or aborts, so the
                // retry is not a same-instant livelock.
                Decision::AbortSelf { blockers: seniors }
            };
        }
        if let Some(deps) = view.deps() {
            if let Some((latest, _)) = deps.latest_retired(req.item) {
                if latest.owner != req.who && senior(latest.owner, req.who) {
                    // A commit dependency on a *senior* retiree would
                    // point junior → senior in the gate graph — the one
                    // edge direction that could close a cycle. Die
                    // instead and retry once the retiree resolves.
                    return Decision::AbortSelf {
                        blockers: vec![latest.owner],
                    };
                }
            }
        }
        Decision::Grant
    }

    fn retires(&mut self, view: &V, who: InstanceId, completed_step: usize) -> Vec<ItemId> {
        retire_candidates(view, who, completed_step)
    }

    fn may_abort(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_core::testkit::StaticView;
    use rtdb_types::{ItemId, LockMode, SetBuilder, Step, TransactionTemplate, TxnId, Value};

    fn inst(t: u32, seq: u32) -> InstanceId {
        InstanceId::new(TxnId(t), seq)
    }

    fn req(who: InstanceId, item: u32, mode: LockMode) -> LockRequest {
        LockRequest {
            who,
            item: ItemId(item),
            mode,
        }
    }

    fn set() -> rtdb_types::TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                10,
                vec![Step::write(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                10,
                vec![Step::write(ItemId(0), 1), Step::read(ItemId(1), 1)],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn seniority_is_arrival_then_template() {
        assert!(senior(inst(1, 0), inst(0, 1))); // earlier arrival wins
        assert!(senior(inst(0, 0), inst(1, 0))); // tie: higher-priority template wins
        assert!(!senior(inst(1, 0), inst(1, 0)));
    }

    #[test]
    fn junior_requester_dies_senior_requester_waits() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = Brook2Pl::new();
        let sr = inst(0, 0);
        let jr = inst(1, 0);
        view.grant(sr, ItemId(0), LockMode::Write);
        assert_eq!(
            p.request(&view, req(jr, 0, LockMode::Write)),
            Decision::AbortSelf { blockers: vec![sr] }
        );
        view.release_all(sr);
        view.grant(jr, ItemId(0), LockMode::Write);
        assert_eq!(
            p.request(&view, req(sr, 0, LockMode::Read)),
            Decision::Block { blockers: vec![jr] }
        );
    }

    #[test]
    fn retired_chain_dies_on_senior_retiree_grants_over_junior() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = Brook2Pl::new();
        let sr = inst(0, 0);
        let jr = inst(1, 0);
        view.deps_mut().retire(sr, ItemId(0), Value(3));
        assert_eq!(
            p.request(&view, req(jr, 0, LockMode::Write)),
            Decision::AbortSelf { blockers: vec![sr] }
        );
        let mut view = StaticView::new(&set);
        view.deps_mut().retire(jr, ItemId(0), Value(3));
        assert_eq!(
            p.request(&view, req(sr, 0, LockMode::Write)),
            Decision::Grant
        );
        assert!(rtdb_core::Protocol::may_abort(&p) && !rtdb_core::Protocol::may_deadlock(&p));
    }

    #[test]
    fn retires_mirror_bamboo_policy() {
        let set = set();
        let mut view = StaticView::new(&set);
        let mut p = Brook2Pl::new();
        let a = inst(0, 0);
        view.grant(a, ItemId(0), LockMode::Write);
        view.grant(a, ItemId(1), LockMode::Write);
        // After step 0 only item 0 is past its last access.
        assert_eq!(ProtocolFor::retires(&mut p, &view, a, 0), vec![ItemId(0)]);
        // After the final step both remaining write locks retire.
        assert_eq!(
            ProtocolFor::retires(&mut p, &view, a, 1),
            vec![ItemId(0), ItemId(1)]
        );
    }
}
