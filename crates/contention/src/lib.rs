//! Hotspot-tolerant early-release protocols.
//!
//! Both protocols in this crate sit on the dependency-tracking subsystem
//! of `rtdb-core` ([`rtdb_core::DepTracker`]): after a transaction's
//! *last* write access to an item it **retires** the write lock — the
//! lock is released into a per-item retired list instead of being held to
//! commit, and later transactions may acquire the item immediately,
//! reading the retiree's uncommitted value. The engine registers a commit
//! dependency on the latest retiree at grant time, gates every commit
//! until its dependencies drain, and cascades aborts along the dependency
//! graph. That machinery is protocol-agnostic; the two kinds here are
//! only the *conflict rules* layered on top:
//!
//! * [`Bamboo`] — 2PL-HP over the active locks (wound all
//!   strictly-lower-priority conflicting holders, else block); a
//!   *retired* chain is always acquirable — the requester takes a
//!   commit dependency on the latest retiree, whatever the priorities.
//!   The priority inversion at the gate is bounded (the retiree is past
//!   its writes), and granting preserves the retiree's completed work
//!   plus everything its dirty readers built on it. Gate waits can
//!   close cycles with lock waits, so `may_deadlock` is true and
//!   drivers run it with the engine's deadlock resolution. After
//!   "Releasing Locks As Early As You Can" (Guo et al.).
//! * [`Brook2Pl`] — deadlock-free early release via a static seniority
//!   order (wait-die): a requester facing a *senior* conflicting holder
//!   or retiree aborts itself and is restarted once a blocker leaves;
//!   facing only juniors it waits (or, over a retired chain, acquires
//!   and takes the dependency). Every lock-wait and gate-wait edge then
//!   points senior → junior, so the wait graph is acyclic. After
//!   "Brook-2PL" (Habibi et al.).
//!
//! Retire policy (shared): after completing step `s`, every held write
//! lock whose item is not accessed in steps `s+1..` is retired. Read
//! locks are never retired — they are held to commit, which (together
//! with the commit gate forcing commit order = retire order per item)
//! keeps commit-order replay a valid serializability oracle for both
//! kinds; see DESIGN.md §6h.

#![forbid(unsafe_code)]

mod bamboo;
mod brook;

pub use bamboo::Bamboo;
pub use brook::Brook2Pl;

use rtdb_core::EngineView;
use rtdb_types::{InstanceId, ItemId, LockMode};
use std::collections::BTreeSet;

/// Conflicting holders of `req` under classical r/w lock semantics.
/// (Retired writers are *not* holders — that is the whole point.)
pub(crate) fn conflict_holders<V: EngineView + ?Sized>(
    view: &V,
    req: rtdb_core::LockRequest,
) -> BTreeSet<InstanceId> {
    let locks = view.locks();
    let mut out: BTreeSet<InstanceId> = BTreeSet::new();
    match req.mode {
        LockMode::Read => {
            out.extend(locks.writers_other_than(req.item, req.who));
        }
        LockMode::Write => {
            out.extend(locks.writers_other_than(req.item, req.who));
            out.extend(locks.readers_other_than(req.item, req.who));
        }
    }
    out
}

/// Write locks of `who` whose last access lies at or before
/// `completed_step`: the retire set shared by both protocols. Unlike
/// CCP's convex release there is no lock-point requirement — releasing
/// before the growing phase ends is exactly what the dependency tracker
/// makes safe (successors take a commit dependency instead of a lock
/// wait). Returns an empty set when the engine exposes no [`DepTracker`]
/// (retiring without tracking would be unsound).
///
/// [`DepTracker`]: rtdb_core::DepTracker
pub(crate) fn retire_candidates<V: EngineView + ?Sized>(
    view: &V,
    who: InstanceId,
    completed_step: usize,
) -> Vec<ItemId> {
    if view.deps().is_none() {
        return Vec::new();
    }
    let template = view.set().template(who.txn);
    let remaining = &template.steps[completed_step + 1..];
    let still_needed = |item: ItemId| remaining.iter().any(|s| s.op.item() == Some(item));
    let mut out: Vec<ItemId> = view
        .locks()
        .held_by(who)
        .filter(|l| l.mode == LockMode::Write && !still_needed(l.item))
        .map(|l| l.item)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// `a` precedes `b` in the static seniority order used by [`Brook2Pl`]:
/// earlier arrivals are senior; among simultaneous arrivals the
/// higher-priority template (lower `TxnId`) is senior. The order is a
/// pure function of the [`InstanceId`], so it is identical across
/// engines and survives restarts (a restarted instance keeps its id and
/// therefore its seniority — the wait-die no-starvation argument).
pub(crate) fn senior(a: InstanceId, b: InstanceId) -> bool {
    (a.seq, a.txn.0) < (b.seq, b.txn.0)
}
