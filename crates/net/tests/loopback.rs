//! Loopback acceptance tests: real TCP clients against [`rtdb_net::serve`]
//! on 127.0.0.1, validated against the simulator and the admission
//! accounting invariants.
//!
//! The burst test extends the PR 5 sim-vs-rt acceptance pattern through
//! the socket: the same conflict-free burst workload, submitted by N
//! *client connections* instead of an in-process submitter, must
//! reproduce the simulator's commit order and final database bit-for-bit
//! on one worker. Timing margins follow the in-process test's rules —
//! every met/missed verdict has tens of milliseconds of slack, and the
//! admission order is forced by waiting for each submission's `Accepted`
//! before sending the next.

use rtdb_core::ProtocolKind;
use rtdb_net::{serve, NetClient, NetConfig, Request, Response};
use rtdb_rt::{AdmissionPolicy, FrontConfig, RtConfig};
use rtdb_sim::{Engine, RunOutcome, SimConfig};
use rtdb_types::{InstanceId, ItemId, SetBuilder, Step, TransactionSet, TransactionTemplate};
use std::time::Duration;

/// Milliseconds in nanoseconds.
const MS: u64 = 1_000_000;

/// Generous per-response wait: loopback round-trips are microseconds,
/// but CI schedulers stall.
const WAIT: Duration = Duration::from_secs(20);

/// The conflict-free burst workload of `crates/rt/tests/front.rs`:
/// template k has service 10 ticks, cumulative completion 10·(k+1), and
/// a period chosen so the met/missed pattern is forced by arithmetic
/// with ≥ 3 ticks of margin.
fn burst_set() -> TransactionSet {
    let periods = [16u64, 17, 40, 45, 46];
    let mut b = SetBuilder::new();
    for (k, &p) in periods.iter().enumerate() {
        b.add(
            TransactionTemplate::new(format!("T{k}"), p, vec![Step::write(ItemId(k as u32), 10)])
                .with_instances(1),
        );
    }
    b.build().expect("burst set")
}

/// A tiny two-template write workload for the overload tests.
fn small_set() -> TransactionSet {
    SetBuilder::new()
        .with(TransactionTemplate::new(
            "a",
            100,
            vec![Step::write(ItemId(0), 2)],
        ))
        .with(TransactionTemplate::new(
            "b",
            100,
            vec![Step::write(ItemId(1), 2)],
        ))
        .build()
        .expect("set")
}

/// Acceptance criterion: N client connections submit the burst through
/// the TCP edge on 1 worker and reproduce the simulator's commit order,
/// miss pattern and final database bit-for-bit.
#[test]
fn loopback_burst_reproduces_sim_commit_order_bit_for_bit() {
    const TICK: u64 = 4 * MS;
    let kind = ProtocolKind::PcpDa;
    let set = burst_set();

    // Ground truth: the simulator's commit order and miss verdicts.
    let sim = Engine::new(&set, SimConfig::default())
        .run_kind(kind)
        .expect("sim run");
    assert_eq!(sim.outcome, RunOutcome::Completed);
    let sim_order: Vec<InstanceId> = sim.history.commit_order().to_vec();
    let sim_missed: Vec<bool> = sim_order
        .iter()
        .map(|id| {
            !sim.metrics
                .instance(*id)
                .expect("sim metrics")
                .met_deadline()
        })
        .collect();
    assert_eq!(sim_missed, [false, true, false, false, true]);

    let front = FrontConfig::new(kind)
        .with_policy(AdmissionPolicy::Block)
        .with_rt(RtConfig::new(kind).with_threads(1).with_tick_ns(TICK));
    let (rt, client_missed) = serve(&set, NetConfig::new(front), |addr| {
        // One connection per template, submitting in priority order.
        // Waiting for each Accepted before the next client submits
        // forces the admission (and thus dispatch) order, exactly like
        // the in-process submitter's program order does.
        let mut clients: Vec<NetClient> = (0..set.len())
            .map(|_| NetClient::connect(addr).expect("connect"))
            .collect();
        for (k, client) in clients.iter_mut().enumerate() {
            let period = set.template(rtdb_types::TxnId(k as u32)).period.raw();
            client
                .submit(Request::Submit {
                    ticket: k as u64,
                    txn: k as u32,
                    tenant: 0,
                    release_ns: 0,
                    deadline_ns: Some(period * TICK),
                })
                .expect("submit");
            match client.wait_response(WAIT).expect("accept") {
                Response::Accepted { ticket } => assert_eq!(ticket, k as u64),
                other => panic!("client {k}: expected Accepted, got {other:?}"),
            }
        }
        // Every client waits for its terminal Committed.
        let mut missed = vec![false; clients.len()];
        for (k, client) in clients.iter_mut().enumerate() {
            match client.wait_response(WAIT).expect("terminal") {
                Response::Committed {
                    ticket,
                    missed_deadline,
                    latency_ns,
                    queue_ns,
                    service_ns,
                    ..
                } => {
                    assert_eq!(ticket, k as u64);
                    assert_eq!(queue_ns + service_ns, latency_ns);
                    missed[k] = missed_deadline;
                }
                other => panic!("client {k}: expected Committed, got {other:?}"),
            }
        }
        missed
    })
    .expect("serve");

    assert_eq!(rt.committed, 5);
    assert_eq!((rt.shed, rt.rejected), (0, 0));
    let rt_order: Vec<InstanceId> = rt.jobs.iter().map(|j| j.id).collect();
    assert_eq!(rt_order, sim_order, "commit order diverged through TCP");
    let rt_missed: Vec<bool> = rt.jobs.iter().map(|j| j.missed_deadline()).collect();
    assert_eq!(rt_missed, sim_missed, "miss pattern diverged through TCP");
    assert_eq!(
        rt.db.snapshot(),
        sim.db.snapshot(),
        "final database diverged through TCP"
    );
    // The wire told each client the same verdict the server recorded:
    // client k submitted template k.
    for (job, &sim_order_id) in rt.jobs.iter().zip(&sim_order) {
        assert_eq!(job.id, sim_order_id);
        assert_eq!(job.missed_deadline(), client_missed[job.id.txn.index()]);
    }
}

/// A client disconnecting mid-job neither loses the job nor wedges the
/// server: the orphaned job still executes and commits into the result,
/// and later submissions from other connections proceed normally.
#[test]
fn disconnect_mid_job_still_commits_and_server_survives() {
    let set = small_set();
    let front = FrontConfig::new(ProtocolKind::PcpDa)
        .with_policy(AdmissionPolicy::Block)
        .with_rt(
            RtConfig::new(ProtocolKind::PcpDa)
                .with_threads(1)
                .with_tick_ns(10 * MS),
        );
    let (rt, ()) = serve(&set, NetConfig::new(front), |addr| {
        let mut doomed = NetClient::connect(addr).expect("connect");
        doomed
            .submit(Request::Submit {
                ticket: 1,
                txn: 0,
                tenant: 0,
                release_ns: 0,
                deadline_ns: None,
            })
            .expect("submit");
        assert!(matches!(
            doomed.wait_response(WAIT).expect("accept"),
            Response::Accepted { ticket: 1 }
        ));
        // Disconnect while the 20 ms job runs (or queues).
        drop(doomed);

        let mut survivor = NetClient::connect(addr).expect("connect");
        survivor
            .submit(Request::Submit {
                ticket: 2,
                txn: 1,
                tenant: 0,
                release_ns: 0,
                deadline_ns: None,
            })
            .expect("submit");
        assert!(matches!(
            survivor.wait_response(WAIT).expect("accept"),
            Response::Accepted { ticket: 2 }
        ));
        // The survivor queues behind the orphan on the single worker, so
        // its Committed proves the orphan ran to completion first.
        assert!(matches!(
            survivor.wait_response(WAIT).expect("terminal"),
            Response::Committed { ticket: 2, .. }
        ));
    })
    .expect("serve");

    assert_eq!(rt.committed, 2, "the orphaned job still committed");
    assert_eq!((rt.shed, rt.rejected), (0, 0));
}

/// Invalid submissions are rejected at the edge — unknown template,
/// tenant above the cap — without disturbing the run; an undecodable
/// frame kills only its own connection.
#[test]
fn invalid_submissions_bounce_at_the_edge() {
    let set = small_set();
    let front = FrontConfig::new(ProtocolKind::PcpDa)
        .with_rt(RtConfig::new(ProtocolKind::PcpDa).with_threads(1));
    let (rt, ()) = serve(&set, NetConfig::new(front), |addr| {
        let mut client = NetClient::connect(addr).expect("connect");
        client
            .submit(Request::Submit {
                ticket: 1,
                txn: 99, // no such template
                tenant: 0,
                release_ns: 0,
                deadline_ns: None,
            })
            .expect("submit");
        assert!(matches!(
            client.wait_response(WAIT).expect("response"),
            Response::Rejected { ticket: 1 }
        ));
        client
            .submit(Request::Submit {
                ticket: 2,
                txn: 0,
                tenant: rtdb_net::MAX_TENANT + 1,
                release_ns: 0,
                deadline_ns: None,
            })
            .expect("submit");
        assert!(matches!(
            client.wait_response(WAIT).expect("response"),
            Response::Rejected { ticket: 2 }
        ));
        // A valid submission on the same connection still works.
        client
            .submit(Request::Submit {
                ticket: 3,
                txn: 0,
                tenant: 0,
                release_ns: 0,
                deadline_ns: None,
            })
            .expect("submit");
        let mut saw_commit = false;
        for _ in 0..2 {
            match client.wait_response(WAIT).expect("response") {
                Response::Accepted { ticket: 3 } => {}
                Response::Committed { ticket: 3, .. } => {
                    saw_commit = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_commit);
    })
    .expect("serve");

    assert_eq!(rt.committed, 1);
    // The two edge rejections never reached the admission queue, so the
    // run's reject counter (admission-level) stays 0.
    assert_eq!(rt.rejected, 0);
}

/// Multi-connection overload through sockets: every tenant's offered
/// load is fully accounted — exactly one terminal response per
/// submission on the wire, and `committed + shed + rejected == offered`
/// per tenant in the server's result.
#[test]
fn overload_accounting_balances_per_tenant_through_sockets() {
    const PER_TENANT: u64 = 12;
    let set = small_set();
    let front = FrontConfig::new(ProtocolKind::PcpDa)
        .with_policy(AdmissionPolicy::LeastSlack)
        .with_capacity(2)
        .with_rt(
            RtConfig::new(ProtocolKind::PcpDa)
                .with_threads(1)
                .with_tick_ns(MS),
        );
    let (rt, wire_counts) = serve(&set, NetConfig::new(front), |addr| {
        let tenants = 3u32;
        let mut clients: Vec<NetClient> = (0..tenants)
            .map(|_| NetClient::connect(addr).expect("connect"))
            .collect();
        // Burst-fire all submissions: a 2-slot queue against a worker
        // doing 2 ms per job guarantees shed traffic. Half the requests
        // carry an already-past deadline (negative slack), half none.
        for (t, client) in clients.iter_mut().enumerate() {
            for i in 0..PER_TENANT {
                client
                    .submit(Request::Submit {
                        ticket: i,
                        txn: (i % 2) as u32,
                        tenant: t as u32,
                        release_ns: 0,
                        deadline_ns: if i % 2 == 0 { Some(1) } else { None },
                    })
                    .expect("submit");
            }
        }
        // Drain until every submission has its terminal response.
        let mut counts = Vec::new();
        for client in clients.iter_mut() {
            let (mut committed, mut shed, mut rejected) = (0u64, 0u64, 0u64);
            while committed + shed + rejected < PER_TENANT {
                match client.wait_response(WAIT).expect("response") {
                    Response::Accepted { .. } => {}
                    Response::Committed { .. } => committed += 1,
                    Response::Shed { .. } => shed += 1,
                    Response::Rejected { .. } => rejected += 1,
                }
            }
            counts.push((committed, shed, rejected));
        }
        counts
    })
    .expect("serve");

    let offered = 3 * PER_TENANT;
    assert_eq!(
        rt.committed + rt.shed + rt.rejected,
        offered,
        "submissions leaked"
    );
    assert_eq!(rt.tenants.len(), 3);
    for (t, row) in rt.tenants.iter().enumerate() {
        assert_eq!(row.tenant, t as u32);
        assert_eq!(
            row.offered(),
            PER_TENANT,
            "tenant {t}: committed {} + shed {} + rejected {}",
            row.committed,
            row.shed,
            row.rejected
        );
        // The wire's view agrees with the server's ledger.
        let (committed, shed, rejected) = wire_counts[t];
        assert_eq!(
            (row.committed, row.shed, row.rejected),
            (committed, shed, rejected),
            "tenant {t}: wire and ledger disagree"
        );
    }
    // Per-template shed telemetry covers every shed job.
    assert_eq!(rt.shed_by_txn.iter().sum::<u64>(), rt.shed);
}
