//! A small blocking-with-timeout client for the wire protocol — the
//! load generator's (and the tests') view of the service edge.

use crate::wire::{FrameBuf, Request, Response, WireError};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One client connection. Submissions are pipelined: [`NetClient::submit`]
/// returns as soon as the frame is written; responses are pulled with
/// [`NetClient::poll_response`] / [`NetClient::wait_response`] and
/// correlated by the client-chosen ticket.
pub struct NetClient {
    stream: TcpStream,
    rbuf: FrameBuf,
}

fn wire_err(e: WireError) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, e)
}

impl NetClient {
    /// Connect to a [`crate::serve`] endpoint.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(NetClient {
            stream,
            rbuf: FrameBuf::new(),
        })
    }

    /// Write one request frame, spinning through `WouldBlock` until the
    /// kernel accepts every byte (frames are tiny; this never spins in
    /// practice unless the server has stalled).
    pub fn submit(&mut self, req: Request) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(40);
        req.encode(&mut bytes);
        let mut written = 0;
        while written < bytes.len() {
            match self.stream.write(&bytes[written..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Non-blocking: the next buffered response, reading whatever the
    /// socket has first. `Ok(None)` means no complete frame yet.
    pub fn poll_response(&mut self) -> std::io::Result<Option<Response>> {
        if let Some(payload) = self.rbuf.next_frame().map_err(wire_err)? {
            return Ok(Some(Response::decode(&payload).map_err(wire_err)?));
        }
        let mut tmp = [0u8; 4096];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.rbuf.extend(&tmp[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        match self.rbuf.next_frame().map_err(wire_err)? {
            Some(payload) => Ok(Some(Response::decode(&payload).map_err(wire_err)?)),
            None => Ok(None),
        }
    }

    /// Block (politely) until a response arrives or `timeout` elapses.
    pub fn wait_response(&mut self, timeout: Duration) -> std::io::Result<Response> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(resp) = self.poll_response()? {
                return Ok(resp);
            }
            if Instant::now() >= deadline {
                return Err(ErrorKind::TimedOut.into());
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}
