//! The TCP service edge for the rtdb runtime.
//!
//! Everything before this crate submits work in-process: the closed
//! loop's workers *are* the admitters, and the admission front-end
//! ([`rtdb_rt::front`]) takes requests over channels from threads in the
//! same address space. This crate is the missing network surface — the
//! front door real open-loop traffic would actually arrive through:
//!
//! * [`wire`] — a little-endian, length-prefixed binary protocol
//!   (submit a template instantiation with release/deadline/tenant;
//!   receive accepted/committed/shed/rejected), with an incremental
//!   frame accumulator hardened against desynchronized peers;
//! * [`server`] — [`serve`]: a single-threaded non-blocking event loop
//!   (hand-rolled `std::net` readiness polling — the build is offline
//!   and pure-std, so no tokio/mio) multiplexing every connection onto
//!   the admission queue through a non-blocking submitter adapter;
//! * [`client`] — [`NetClient`]: the pipelining client the load
//!   generator and the loopback tests drive the edge with.
//!
//! The edge adds *transport*, not *policy*: admission decisions
//! (least-slack shedding, per-tenant fairness budgets) live in
//! [`rtdb_rt::admission`] and apply identically to in-process and
//! socket submissions, which is what lets the loopback tests replay a
//! socket run against the simulator bit-for-bit.

#![forbid(unsafe_code)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::NetClient;
pub use server::{serve, NetConfig};
pub use wire::{FrameBuf, Request, Response, WireError, MAX_FRAME_LEN, MAX_TENANT};
