//! The wire protocol: little-endian, length-prefixed binary frames.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload; the first payload byte is the opcode. Clients send
//! [`Request`] frames, the server answers with [`Response`] frames. The
//! client supplies its own `ticket` with every submission and the server
//! echoes it on every response for that submission, so a client can
//! pipeline arbitrarily many requests over one connection and correlate
//! out-of-order completions.
//!
//! ```text
//! Submit (client → server), opcode 0x01:
//!   u8  opcode          u64 ticket          u32 txn
//!   u32 tenant          u64 release_ns      u8  has_deadline
//!   [u64 deadline_ns]   (present iff has_deadline == 1)
//!
//! Accepted  (server → client), opcode 0x81:  u8 opcode, u64 ticket
//! Committed (server → client), opcode 0x82:
//!   u8  opcode        u64 ticket        u64 commit_ns
//!   u64 latency_ns    u64 queue_ns      u64 service_ns
//!   u32 restarts      u8  missed_deadline
//! Shed      (server → client), opcode 0x83:  u8 opcode, u64 ticket
//! Rejected  (server → client), opcode 0x84:  u8 opcode, u64 ticket
//! ```
//!
//! A submission is answered by `Accepted` (it entered the admission
//! queue; a terminal `Committed` or `Shed` follows later) or terminally
//! by `Rejected`/`Shed` right away. Exactly one terminal response
//! eventually arrives per accepted submission, in commit order, not
//! submission order.
//!
//! Malformed frames (unknown opcode, truncated payload, oversized
//! length) are protocol errors: the server drops the connection. The
//! frame length is capped far below anything a legal frame needs, so a
//! desynchronized or hostile peer cannot make the server buffer
//! unbounded data.

/// Hard cap on a frame's payload length. The largest legal frame
/// (Submit with a deadline) is 34 bytes; anything near the cap is a
/// desynchronized peer.
pub const MAX_FRAME_LEN: usize = 256;

/// Largest tenant id the server accepts. Tenant ids index dense ledger
/// slots, so an attacker-controlled huge id would be an allocation
/// amplifier; submissions above the cap are rejected.
pub const MAX_TENANT: u32 = 4095;

/// Client → server messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit one transaction-template instantiation.
    Submit {
        /// Client-chosen correlation ticket, echoed on every response.
        ticket: u64,
        /// Template index ([`rtdb_types::TxnId`]).
        txn: u32,
        /// Tenant to bill under the fairness budgets.
        tenant: u32,
        /// Intended release time, ns since the server's front-end epoch.
        release_ns: u64,
        /// Absolute deadline, same clock; `None` = no deadline.
        deadline_ns: Option<u64>,
    },
}

/// Server → client messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// The submission entered the admission queue; a terminal
    /// [`Response::Committed`] or [`Response::Shed`] follows.
    Accepted {
        /// The client's correlation ticket.
        ticket: u64,
    },
    /// The job committed (terminal).
    Committed {
        /// The client's correlation ticket.
        ticket: u64,
        /// Commit completion time, ns since the front-end epoch.
        commit_ns: u64,
        /// Admission → commit latency.
        latency_ns: u64,
        /// Queueing share of the latency.
        queue_ns: u64,
        /// Service share of the latency.
        service_ns: u64,
        /// Aborts absorbed before committing.
        restarts: u32,
        /// Whether the job committed after its deadline.
        missed_deadline: bool,
    },
    /// The job was shed — at admission (least-slack victim, terminal and
    /// immediate) or later from the queue (terminal, follows an
    /// [`Response::Accepted`]).
    Shed {
        /// The client's correlation ticket.
        ticket: u64,
    },
    /// The submission was rejected at admission (full queue, unknown
    /// template, tenant above [`MAX_TENANT`], or server shutting down).
    /// Terminal and immediate.
    Rejected {
        /// The client's correlation ticket.
        ticket: u64,
    },
}

const OP_SUBMIT: u8 = 0x01;
const OP_ACCEPTED: u8 = 0x81;
const OP_COMMITTED: u8 = 0x82;
const OP_SHED: u8 = 0x83;
const OP_REJECTED: u8 = 0x84;

/// A malformed frame: the connection that produced it must be dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos + n;
        if end > self.buf.len() {
            return Err(WireError(format!(
                "truncated frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError(format!(
                "{} trailing bytes after frame payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

impl Request {
    /// Append this request as one length-prefixed frame.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Request::Submit {
                ticket,
                txn,
                tenant,
                release_ns,
                deadline_ns,
            } => {
                let mut p = Vec::with_capacity(34);
                p.push(OP_SUBMIT);
                p.extend_from_slice(&ticket.to_le_bytes());
                p.extend_from_slice(&txn.to_le_bytes());
                p.extend_from_slice(&tenant.to_le_bytes());
                p.extend_from_slice(&release_ns.to_le_bytes());
                match deadline_ns {
                    Some(d) => {
                        p.push(1);
                        p.extend_from_slice(&d.to_le_bytes());
                    }
                    None => p.push(0),
                }
                frame(&p, out);
            }
        }
    }

    /// Decode one frame payload (without the length prefix).
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        match r.u8()? {
            OP_SUBMIT => {
                let ticket = r.u64()?;
                let txn = r.u32()?;
                let tenant = r.u32()?;
                let release_ns = r.u64()?;
                let deadline_ns = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    b => return Err(WireError(format!("bad has_deadline byte {b:#04x}"))),
                };
                r.finish()?;
                Ok(Request::Submit {
                    ticket,
                    txn,
                    tenant,
                    release_ns,
                    deadline_ns,
                })
            }
            op => Err(WireError(format!("unknown request opcode {op:#04x}"))),
        }
    }
}

impl Response {
    /// Append this response as one length-prefixed frame.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Response::Accepted { ticket } => {
                let mut p = Vec::with_capacity(9);
                p.push(OP_ACCEPTED);
                p.extend_from_slice(&ticket.to_le_bytes());
                frame(&p, out);
            }
            Response::Committed {
                ticket,
                commit_ns,
                latency_ns,
                queue_ns,
                service_ns,
                restarts,
                missed_deadline,
            } => {
                let mut p = Vec::with_capacity(46);
                p.push(OP_COMMITTED);
                p.extend_from_slice(&ticket.to_le_bytes());
                p.extend_from_slice(&commit_ns.to_le_bytes());
                p.extend_from_slice(&latency_ns.to_le_bytes());
                p.extend_from_slice(&queue_ns.to_le_bytes());
                p.extend_from_slice(&service_ns.to_le_bytes());
                p.extend_from_slice(&restarts.to_le_bytes());
                p.push(missed_deadline as u8);
                frame(&p, out);
            }
            Response::Shed { ticket } => {
                let mut p = Vec::with_capacity(9);
                p.push(OP_SHED);
                p.extend_from_slice(&ticket.to_le_bytes());
                frame(&p, out);
            }
            Response::Rejected { ticket } => {
                let mut p = Vec::with_capacity(9);
                p.push(OP_REJECTED);
                p.extend_from_slice(&ticket.to_le_bytes());
                frame(&p, out);
            }
        }
    }

    /// Decode one frame payload (without the length prefix).
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            OP_ACCEPTED => Response::Accepted { ticket: r.u64()? },
            OP_COMMITTED => Response::Committed {
                ticket: r.u64()?,
                commit_ns: r.u64()?,
                latency_ns: r.u64()?,
                queue_ns: r.u64()?,
                service_ns: r.u64()?,
                restarts: r.u32()?,
                missed_deadline: match r.u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(WireError(format!("bad missed byte {b:#04x}"))),
                },
            },
            OP_SHED => Response::Shed { ticket: r.u64()? },
            OP_REJECTED => Response::Rejected { ticket: r.u64()? },
            op => return Err(WireError(format!("unknown response opcode {op:#04x}"))),
        };
        r.finish()?;
        Ok(resp)
    }

    /// True for responses that end a submission's life (everything but
    /// [`Response::Accepted`]).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::Accepted { .. })
    }

    /// The echoed client ticket.
    pub fn ticket(&self) -> u64 {
        match *self {
            Response::Accepted { ticket }
            | Response::Committed { ticket, .. }
            | Response::Shed { ticket }
            | Response::Rejected { ticket } => ticket,
        }
    }
}

/// An incremental frame accumulator: feed it raw socket bytes, pop
/// complete payloads. Enforces [`MAX_FRAME_LEN`].
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted away once the
    /// cursor passes half the buffer.
    start: usize,
}

impl FrameBuf {
    /// An empty accumulator.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Append raw bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame payload, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError(format!(
                "frame length {len} exceeds cap {MAX_FRAME_LEN}"
            )));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        if self.start > self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Submit {
                ticket: 7,
                txn: 3,
                tenant: 1,
                release_ns: 123,
                deadline_ns: Some(456),
            },
            Request::Submit {
                ticket: u64::MAX,
                txn: 0,
                tenant: 0,
                release_ns: 0,
                deadline_ns: None,
            },
        ];
        for req in reqs {
            let mut bytes = Vec::new();
            req.encode(&mut bytes);
            let mut fb = FrameBuf::new();
            fb.extend(&bytes);
            let payload = fb.next_frame().expect("well formed").expect("complete");
            assert_eq!(Request::decode(&payload), Ok(req));
            assert_eq!(fb.next_frame(), Ok(None));
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Accepted { ticket: 1 },
            Response::Committed {
                ticket: 2,
                commit_ns: 3,
                latency_ns: 4,
                queue_ns: 1,
                service_ns: 3,
                restarts: 5,
                missed_deadline: true,
            },
            Response::Shed { ticket: 6 },
            Response::Rejected { ticket: 7 },
        ];
        let mut bytes = Vec::new();
        for r in &resps {
            r.encode(&mut bytes);
        }
        let mut fb = FrameBuf::new();
        // Feed byte-by-byte: reassembly must be split-agnostic.
        for b in bytes {
            fb.extend(&[b]);
        }
        let mut decoded = Vec::new();
        while let Some(p) = fb.next_frame().expect("well formed") {
            decoded.push(Response::decode(&p).expect("decodes"));
        }
        assert_eq!(decoded, resps);
        assert!(decoded[1].is_terminal() && !decoded[0].is_terminal());
    }

    #[test]
    fn malformed_frames_are_errors() {
        // Oversized length prefix.
        let mut fb = FrameBuf::new();
        fb.extend(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(fb.next_frame().is_err());
        // Unknown opcode.
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(Response::decode(&[0x7f]).is_err());
        // Truncated payload.
        assert!(Request::decode(&[OP_SUBMIT, 1, 2]).is_err());
        // Trailing garbage.
        let mut bytes = Vec::new();
        Response::Accepted { ticket: 9 }.encode(&mut bytes);
        let mut with_junk = bytes[4..].to_vec();
        with_junk.push(0xee);
        assert!(Response::decode(&with_junk).is_err());
    }
}
