//! The TCP service edge: a single-threaded non-blocking event loop that
//! bridges socket clients onto the admission front-end.
//!
//! [`serve`] wraps [`run_front`]: it binds a listener, spawns the event
//! loop inside the front-end's scope, and hands the caller's driver the
//! bound address. The event loop accepts connections, decodes
//! [`Request`] frames, submits them through a *non-blocking* submitter
//! adapter ([`Submitter::try_submit`] — a full admission queue bounces a
//! frame, it never parks the loop), and pumps [`Completion`]s back out as
//! [`Response`] frames. One OS thread multiplexes every connection; the
//! worker pool behind the dispatcher does the heavy lifting, exactly as
//! in the in-process front-end.
//!
//! **Client disconnect mid-job.** Dropping a connection drops its
//! submitter and completion receiver. Jobs it already got admitted keep
//! their place in the dispatcher and still execute and commit into the
//! run's [`RtResult`] — admission is a promise to the *system*, not to
//! the socket — but their completion sends fail silently into the closed
//! channel. Nothing leaks: the ticket map dies with the connection.
//!
//! **Shutdown.** When the driver returns, the loop stops accepting,
//! performs a final drain/flush pass, and exits; then the front-end
//! closes the admission queue with its usual drain semantics. Jobs still
//! in flight at that point execute and are counted in the result, but
//! their completions have no socket to go to — a client that wants its
//! terminal responses must wait for them *before* the driver returns.

use crate::wire::{FrameBuf, Request, Response, MAX_TENANT};
use rtdb_rt::front::FrontHandle;
use rtdb_rt::{run_front, Completion, FrontConfig, JobRequest, RtResult, SubmitOutcome, Submitter};
use rtdb_types::{TransactionSet, TxnId};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::time::Duration;

/// Configuration of one [`serve`] run.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// The admission front-end behind the socket (worker pool, queue
    /// capacity, admission policy, fairness budgets).
    pub front: FrontConfig,
    /// Port to bind on 127.0.0.1; `0` (the default) picks an ephemeral
    /// port — the actual address is handed to the driver.
    pub port: u16,
    /// Connection cap; accepts beyond it are dropped immediately.
    pub max_conns: usize,
    /// Event-loop sleep when a full pass made no progress (no accepts,
    /// no bytes, no completions). Keeps the idle loop off the CPU the
    /// workers need.
    pub idle_sleep: Duration,
}

impl NetConfig {
    /// Defaults: ephemeral port, 1024 connections, 100 µs idle sleep.
    pub fn new(front: FrontConfig) -> Self {
        NetConfig {
            front,
            port: 0,
            max_conns: 1024,
            idle_sleep: Duration::from_micros(100),
        }
    }

    /// Bind a specific port instead of an ephemeral one.
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Set the connection cap.
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns;
        self
    }
}

/// One live connection's server-side state.
struct Conn<'e> {
    stream: TcpStream,
    rbuf: FrameBuf,
    /// Pending outbound bytes; `out_start` is the flush cursor.
    out: Vec<u8>,
    out_start: usize,
    sub: Submitter<'e>,
    rx: Receiver<Completion>,
    /// server ticket → client ticket, for completions still owed.
    tickets: HashMap<u64, u64>,
    dead: bool,
}

impl Conn<'_> {
    fn queue_response(&mut self, resp: Response) {
        resp.encode(&mut self.out);
    }

    /// Write as much pending output as the socket accepts.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.out_start < self.out.len() {
            match self.stream.write(&self.out[self.out_start..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.out_start += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_start == self.out.len() {
            self.out.clear();
            self.out_start = 0;
        } else if self.out_start > self.out.len() / 2 {
            self.out.drain(..self.out_start);
            self.out_start = 0;
        }
        progressed
    }

    /// Read what the socket has, decode frames, submit requests.
    fn pump_reads(&mut self, templates: usize) -> bool {
        let mut progressed = false;
        let mut tmp = [0u8; 4096];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    self.rbuf.extend(&tmp[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        loop {
            let payload = match self.rbuf.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => {
                    // Protocol error: drop the connection.
                    self.dead = true;
                    break;
                }
            };
            match Request::decode(&payload) {
                Ok(req) => self.handle_request(req, templates),
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progressed
    }

    fn handle_request(&mut self, req: Request, templates: usize) {
        let Request::Submit {
            ticket,
            txn,
            tenant,
            release_ns,
            deadline_ns,
        } = req;
        // Validate before touching the admission queue: an unknown
        // template or an absurd tenant id is the client's bug, not an
        // overload signal.
        if txn as usize >= templates || tenant > MAX_TENANT {
            self.queue_response(Response::Rejected { ticket });
            return;
        }
        let mut job = JobRequest::new(TxnId(txn))
            .released_at(release_ns)
            .for_tenant(tenant);
        job.deadline_ns = deadline_ns;
        match self.sub.try_submit(job) {
            SubmitOutcome::Admitted { ticket: server } => {
                self.tickets.insert(server, ticket);
                self.queue_response(Response::Accepted { ticket });
            }
            SubmitOutcome::Shed { .. } => self.queue_response(Response::Shed { ticket }),
            SubmitOutcome::Rejected | SubmitOutcome::Closed => {
                self.queue_response(Response::Rejected { ticket })
            }
        }
    }

    /// Translate arrived completions into response frames.
    fn pump_completions(&mut self) -> bool {
        let mut progressed = false;
        while let Ok(c) = self.rx.try_recv() {
            progressed = true;
            match c {
                Completion::Committed { ticket, report } => {
                    if let Some(client) = self.tickets.remove(&ticket) {
                        self.queue_response(Response::Committed {
                            ticket: client,
                            commit_ns: report.commit_ns,
                            latency_ns: report.latency_ns,
                            queue_ns: report.queue_ns,
                            service_ns: report.service_ns,
                            restarts: report.restarts,
                            missed_deadline: report.missed_deadline(),
                        });
                    }
                }
                Completion::Shed { ticket, .. } => {
                    if let Some(client) = self.tickets.remove(&ticket) {
                        self.queue_response(Response::Shed { ticket: client });
                    }
                }
            }
        }
        progressed
    }
}

fn event_loop(
    front: FrontHandle<'_>,
    listener: &TcpListener,
    templates: usize,
    config: &NetConfig,
    stop: &AtomicBool,
) {
    let mut conns: Vec<Conn<'_>> = Vec::new();
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let mut progressed = false;
        if !stopping {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        progressed = true;
                        if conns.len() >= config.max_conns {
                            drop(stream);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let (sub, rx) = front.submitter();
                        conns.push(Conn {
                            stream,
                            rbuf: FrameBuf::new(),
                            out: Vec::new(),
                            out_start: 0,
                            sub,
                            rx,
                            tickets: HashMap::new(),
                            dead: false,
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            progressed |= conn.pump_reads(templates);
            progressed |= conn.pump_completions();
            progressed |= conn.flush();
        }
        conns.retain(|c| !c.dead);
        if stopping {
            // One final drain already happened above; anything still
            // undelivered has no client waiting on it by contract.
            break;
        }
        if !progressed {
            std::thread::sleep(config.idle_sleep);
        }
    }
}

/// Serve `set` over TCP on 127.0.0.1. Binds the listener, starts the
/// admission front-end (`config.front`), runs the event loop on its own
/// scoped thread, and calls `driver` with the bound address on the
/// current thread. When the driver returns the loop stops and the
/// front-end shuts down with drain semantics. Returns the run's
/// [`RtResult`] together with the driver's value.
pub fn serve<R>(
    set: &TransactionSet,
    config: NetConfig,
    driver: impl FnOnce(SocketAddr) -> R,
) -> std::io::Result<(RtResult, R)> {
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let templates = set.len();
    let stop = AtomicBool::new(false);

    let (result, value) = run_front(set, config.front, |front| {
        std::thread::scope(|scope| {
            let net = scope.spawn(|| event_loop(front, &listener, templates, &config, &stop));
            let value = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| driver(addr)));
            stop.store(true, Ordering::Release);
            net.join().expect("event loop panicked");
            match value {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            }
        })
    });
    Ok((result, value))
}
