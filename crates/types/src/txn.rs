//! Periodic transaction templates.

use crate::{Duration, ItemId, LockMode, Operation, Step, Tick, TxnId};
use std::collections::BTreeSet;

/// A periodic transaction template.
///
/// A template describes one real-time transaction type: its period (which
/// under rate-monotonic assignment also determines its priority and, as in
/// the paper, its relative deadline), its release offset, and the ordered
/// sequence of read/write/compute [`Step`]s each instance executes.
#[derive(Clone, PartialEq, Eq)]
pub struct TransactionTemplate {
    /// Template identifier (index into the owning [`crate::TransactionSet`]).
    pub id: TxnId,
    /// Human-readable name used in traces, e.g. `"T1"` or `"nav-update"`.
    pub name: String,
    /// Period; the deadline of each instance is the end of its period.
    pub period: Duration,
    /// Release time of the first instance.
    pub offset: Tick,
    /// The ordered steps every instance executes.
    pub steps: Vec<Step>,
    /// Number of instances to release; `None` = unbounded (until the
    /// simulation horizon).
    pub instances: Option<u32>,
}

impl TransactionTemplate {
    /// Create a template. `id` is assigned by the set builder.
    pub fn new(name: impl Into<String>, period: u64, steps: Vec<Step>) -> Self {
        Self {
            id: TxnId(u32::MAX),
            name: name.into(),
            period: Duration(period),
            offset: Tick::ZERO,
            steps,
            instances: None,
        }
    }

    /// Set the release time of the first instance.
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = Tick(offset);
        self
    }

    /// Limit the number of released instances.
    pub fn with_instances(mut self, n: u32) -> Self {
        self.instances = Some(n);
        self
    }

    /// Worst-case execution time: the sum of all step durations
    /// (`C_i` in the paper's schedulability analysis).
    pub fn wcet(&self) -> Duration {
        self.steps.iter().map(|s| s.duration).sum()
    }

    /// CPU utilisation of this template, `C_i / Pd_i`.
    pub fn utilization(&self) -> f64 {
        self.wcet().raw() as f64 / self.period.raw() as f64
    }

    /// The set of items this template may read (`DataRead` upper bound).
    pub fn read_set(&self) -> BTreeSet<ItemId> {
        self.steps
            .iter()
            .filter_map(|s| match s.op {
                Operation::Read(x) => Some(x),
                _ => None,
            })
            .collect()
    }

    /// The set of items this template may write (`WriteSet(T_i)`; known a
    /// priori, as the paper's protocols require).
    pub fn write_set(&self) -> BTreeSet<ItemId> {
        self.steps
            .iter()
            .filter_map(|s| match s.op {
                Operation::Write(x) => Some(x),
                _ => None,
            })
            .collect()
    }

    /// All items this template accesses in either mode.
    pub fn access_set(&self) -> BTreeSet<ItemId> {
        self.steps.iter().filter_map(|s| s.op.item()).collect()
    }

    /// True if no step of this template writes: every instance is a pure
    /// reader. Read-only templates are the candidates for the snapshot
    /// read path (`rtdb_core::TxnMode::ReadOnly`) — they stage nothing,
    /// install nothing, and can serialize at a commit epoch.
    pub fn is_read_only(&self) -> bool {
        !self
            .steps
            .iter()
            .any(|s| matches!(s.op, Operation::Write(_)))
    }

    /// True if the template may access `item` in `mode`.
    pub fn may_access(&self, item: ItemId, mode: LockMode) -> bool {
        self.steps.iter().any(|s| match (s.op, mode) {
            (Operation::Read(x), LockMode::Read) => x == item,
            (Operation::Write(x), LockMode::Write) => x == item,
            _ => false,
        })
    }

    /// Release time of instance `seq`.
    pub fn release_of(&self, seq: u32) -> Tick {
        self.offset + Duration(self.period.raw() * seq as u64)
    }

    /// Absolute deadline of instance `seq` (end of its period).
    pub fn deadline_of(&self, seq: u32) -> Tick {
        self.release_of(seq) + self.period
    }

    /// Sanity-check the template: non-empty steps, non-zero period, WCET
    /// fits within the period.
    pub fn validate(&self) -> crate::Result<()> {
        if self.steps.is_empty() {
            return Err(crate::Error::InvalidTemplate {
                name: self.name.clone(),
                reason: "template has no steps".into(),
            });
        }
        if self.period.is_zero() {
            return Err(crate::Error::InvalidTemplate {
                name: self.name.clone(),
                reason: "period must be positive".into(),
            });
        }
        if self.steps.iter().any(|s| s.duration.is_zero()) {
            return Err(crate::Error::InvalidTemplate {
                name: self.name.clone(),
                reason: "every step must consume at least one tick".into(),
            });
        }
        if self.wcet() > self.period {
            return Err(crate::Error::InvalidTemplate {
                name: self.name.clone(),
                reason: format!("WCET {} exceeds period {}", self.wcet(), self.period),
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for TransactionTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionTemplate")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("period", &self.period)
            .field("offset", &self.offset)
            .field("steps", &self.steps)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TransactionTemplate {
        TransactionTemplate::new(
            "T",
            10,
            vec![
                Step::read(ItemId(0), 1),
                Step::write(ItemId(1), 2),
                Step::compute(1),
            ],
        )
        .with_offset(3)
    }

    #[test]
    fn wcet_and_utilization() {
        let t = t();
        assert_eq!(t.wcet(), Duration(4));
        assert!((t.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn read_write_sets() {
        let t = t();
        assert!(t.read_set().contains(&ItemId(0)));
        assert!(!t.read_set().contains(&ItemId(1)));
        assert!(t.write_set().contains(&ItemId(1)));
        assert_eq!(t.access_set().len(), 2);
        assert!(t.may_access(ItemId(0), LockMode::Read));
        assert!(!t.may_access(ItemId(0), LockMode::Write));
    }

    #[test]
    fn read_only_detection() {
        assert!(!t().is_read_only());
        let ro =
            TransactionTemplate::new("R", 10, vec![Step::read(ItemId(0), 1), Step::compute(2)]);
        assert!(ro.is_read_only());
        let compute_only = TransactionTemplate::new("C", 10, vec![Step::compute(1)]);
        assert!(compute_only.is_read_only());
    }

    #[test]
    fn release_and_deadline() {
        let t = t();
        assert_eq!(t.release_of(0), Tick(3));
        assert_eq!(t.release_of(2), Tick(23));
        assert_eq!(t.deadline_of(0), Tick(13));
    }

    #[test]
    fn validation_rejects_bad_templates() {
        let empty = TransactionTemplate::new("e", 5, vec![]);
        assert!(empty.validate().is_err());

        let over = TransactionTemplate::new("o", 2, vec![Step::compute(3)]);
        assert!(over.validate().is_err());

        let zero_step = TransactionTemplate::new("z", 5, vec![Step::compute(0)]);
        assert!(zero_step.validate().is_err());

        assert!(t().validate().is_ok());
    }
}
