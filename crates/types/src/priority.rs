//! Priorities and priority ceilings.
//!
//! The paper lists transactions `T_1 .. T_n` in *descending* order of
//! priority, `T_1` highest. Internally we represent a priority as a `u32`
//! where a **larger value means a higher priority**, which keeps comparisons
//! (`P_i > Sysceil`) in their natural direction.
//!
//! A [`Ceiling`] is either a priority or the *dummy* ceiling, "lower than
//! the priorities of all transactions in the system" (paper §3, Example 1).
//! The dummy is the value of `Sysceil` when no relevant item is locked.

use std::fmt;

/// A transaction priority. Larger numeric value = higher priority.
///
/// Priorities in a [`crate::TransactionSet`] form a total order: no two
/// templates share a priority (the paper assumes a total order; rate
/// monotonic ties are broken by template index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u32);

impl Priority {
    /// The lowest real priority.
    pub const MIN: Priority = Priority(0);

    /// The highest representable priority (reserved for internal use, e.g.
    /// saturation during priority inheritance proofs).
    pub const MAX: Priority = Priority(u32::MAX);

    /// Raw numeric level.
    #[inline]
    pub fn level(self) -> u32 {
        self.0
    }

    /// The ceiling equal to this priority.
    #[inline]
    pub fn as_ceiling(self) -> Ceiling {
        Ceiling::At(self)
    }
}

impl fmt::Debug for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P({})", self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Delegate so width/alignment format flags are honoured.
        fmt::Display::fmt(&self.0, f)
    }
}

/// A priority ceiling: either a concrete priority level or the *dummy*
/// ceiling that compares below every priority.
///
/// `Ceiling` implements a total order with `Dummy < At(p)` for every `p`,
/// so the paper's locking conditions read naturally:
///
/// ```
/// use rtdb_types::{Ceiling, Priority};
/// let sysceil = Ceiling::Dummy;
/// let p = Priority(3);
/// assert!(p.as_ceiling() > sysceil); // "P_i > Sysceil"
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ceiling {
    /// No ceiling in effect — lower than all transaction priorities.
    #[default]
    Dummy,
    /// Ceiling at the given priority level.
    At(Priority),
}

impl Ceiling {
    /// True if this is the dummy ceiling.
    #[inline]
    pub fn is_dummy(self) -> bool {
        matches!(self, Ceiling::Dummy)
    }

    /// The priority level, if any.
    #[inline]
    pub fn priority(self) -> Option<Priority> {
        match self {
            Ceiling::Dummy => None,
            Ceiling::At(p) => Some(p),
        }
    }

    /// Pointwise maximum of two ceilings.
    #[inline]
    pub fn max(self, other: Ceiling) -> Ceiling {
        std::cmp::max(self, other)
    }

    /// True if a transaction at priority `p` clears this ceiling, i.e.
    /// `p > ceiling` in the paper's sense (a dummy ceiling is cleared by
    /// every priority).
    #[inline]
    pub fn cleared_by(self, p: Priority) -> bool {
        match self {
            Ceiling::Dummy => true,
            Ceiling::At(c) => p > c,
        }
    }
}

impl PartialOrd for Ceiling {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ceiling {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use Ceiling::*;
        match (self, other) {
            (Dummy, Dummy) => std::cmp::Ordering::Equal,
            (Dummy, At(_)) => std::cmp::Ordering::Less,
            (At(_), Dummy) => std::cmp::Ordering::Greater,
            (At(a), At(b)) => a.cmp(b),
        }
    }
}

impl From<Priority> for Ceiling {
    #[inline]
    fn from(p: Priority) -> Self {
        Ceiling::At(p)
    }
}

impl fmt::Debug for Ceiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ceiling::Dummy => write!(f, "dummy"),
            Ceiling::At(p) => write!(f, "ceil({})", p.0),
        }
    }
}

impl fmt::Display for Ceiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ceiling::Dummy => f.pad("dummy"),
            Ceiling::At(p) => fmt::Display::fmt(&p.0, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_is_below_everything() {
        assert!(Ceiling::Dummy < Ceiling::At(Priority::MIN));
        assert!(Ceiling::Dummy < Ceiling::At(Priority(7)));
        assert!(Ceiling::Dummy.cleared_by(Priority::MIN));
    }

    #[test]
    fn ceiling_order_follows_priority_order() {
        assert!(Ceiling::At(Priority(2)) < Ceiling::At(Priority(3)));
        assert_eq!(
            Ceiling::At(Priority(2)).max(Ceiling::Dummy),
            Ceiling::At(Priority(2))
        );
    }

    #[test]
    fn cleared_by_is_strict() {
        let c = Ceiling::At(Priority(5));
        assert!(c.cleared_by(Priority(6)));
        assert!(!c.cleared_by(Priority(5))); // equality does NOT clear
        assert!(!c.cleared_by(Priority(4)));
    }

    #[test]
    fn default_is_dummy() {
        assert!(Ceiling::default().is_dummy());
        assert_eq!(Ceiling::Dummy.priority(), None);
        assert_eq!(Ceiling::At(Priority(1)).priority(), Some(Priority(1)));
    }
}
