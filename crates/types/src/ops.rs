//! Transaction operations and steps.

use crate::{Duration, ItemId};
use std::fmt;

/// Lock mode of a data access.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// Shared read lock (`Rlock` in the paper).
    Read,
    /// Exclusive write lock (`Wlock` in the paper).
    Write,
}

impl LockMode {
    /// True for [`LockMode::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, LockMode::Read)
    }

    /// True for [`LockMode::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, LockMode::Write)
    }

    /// The opposite mode (upgrades hold both).
    #[inline]
    pub fn other(self) -> LockMode {
        match self {
            LockMode::Read => LockMode::Write,
            LockMode::Write => LockMode::Read,
        }
    }
}

impl fmt::Debug for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Read => write!(f, "R"),
            LockMode::Write => write!(f, "W"),
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Read => write!(f, "read"),
            LockMode::Write => write!(f, "write"),
        }
    }
}

/// One logical operation of a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Read data item — acquires a read lock at step start.
    Read(ItemId),
    /// Write data item — acquires a write lock at step start. Under the
    /// update-in-workspace model the new value stays in the private
    /// workspace until commit.
    Write(ItemId),
    /// Pure computation: consumes CPU, touches no data.
    Compute,
}

impl Operation {
    /// The item accessed, if any.
    #[inline]
    pub fn item(self) -> Option<ItemId> {
        match self {
            Operation::Read(x) | Operation::Write(x) => Some(x),
            Operation::Compute => None,
        }
    }

    /// The lock mode required, if any.
    #[inline]
    pub fn lock_mode(self) -> Option<LockMode> {
        match self {
            Operation::Read(_) => Some(LockMode::Read),
            Operation::Write(_) => Some(LockMode::Write),
            Operation::Compute => None,
        }
    }

    /// `(item, mode)` for data operations.
    #[inline]
    pub fn access(self) -> Option<(ItemId, LockMode)> {
        match self {
            Operation::Read(x) => Some((x, LockMode::Read)),
            Operation::Write(x) => Some((x, LockMode::Write)),
            Operation::Compute => None,
        }
    }
}

impl fmt::Debug for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Read(x) => write!(f, "Read({x})"),
            Operation::Write(x) => write!(f, "Write({x})"),
            Operation::Compute => write!(f, "Compute"),
        }
    }
}

/// One step of a transaction template: an operation plus the CPU time it
/// consumes.
///
/// The lock (if any) is requested at the instant the step becomes current;
/// once granted, the step consumes `duration` ticks of CPU, during which the
/// transaction may be preempted (but keeps its locks — all locks are held
/// until commit).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    /// What the step does.
    pub op: Operation,
    /// CPU time the step consumes once its lock (if any) is granted.
    pub duration: Duration,
}

impl Step {
    /// A read step of `duration` ticks.
    #[inline]
    pub fn read(item: ItemId, duration: u64) -> Step {
        Step {
            op: Operation::Read(item),
            duration: Duration(duration),
        }
    }

    /// A write step of `duration` ticks.
    #[inline]
    pub fn write(item: ItemId, duration: u64) -> Step {
        Step {
            op: Operation::Write(item),
            duration: Duration(duration),
        }
    }

    /// A pure-compute step of `duration` ticks.
    #[inline]
    pub fn compute(duration: u64) -> Step {
        Step {
            op: Operation::Compute,
            duration: Duration(duration),
        }
    }
}

impl fmt::Debug for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{:?}", self.op, self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_accessors() {
        let x = ItemId(0);
        assert_eq!(Operation::Read(x).access(), Some((x, LockMode::Read)));
        assert_eq!(Operation::Write(x).access(), Some((x, LockMode::Write)));
        assert_eq!(Operation::Compute.access(), None);
        assert_eq!(Operation::Compute.item(), None);
        assert_eq!(Operation::Read(x).lock_mode(), Some(LockMode::Read));
    }

    #[test]
    fn step_constructors() {
        let s = Step::read(ItemId(1), 3);
        assert_eq!(s.op, Operation::Read(ItemId(1)));
        assert_eq!(s.duration, Duration(3));
        assert_eq!(Step::compute(2).op, Operation::Compute);
    }

    #[test]
    fn lock_mode_predicates() {
        assert!(LockMode::Read.is_read());
        assert!(!LockMode::Read.is_write());
        assert!(LockMode::Write.is_write());
    }
}
