//! Discrete simulation time.
//!
//! The simulator uses integer ticks so every run is exactly reproducible and
//! the worked examples of the paper (Figures 1–5) can be asserted
//! tick-for-tick. A [`Tick`] is a point in time; a [`Duration`] is a span.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in discrete simulation time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

/// A span of discrete simulation time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Tick {
    /// Time zero — the start of every simulation.
    pub const ZERO: Tick = Tick(0);

    /// The largest representable tick; used as "never" in event scheduling.
    pub const MAX: Tick = Tick(u64::MAX);

    /// Span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier > self` (time in this workspace never flows
    /// backwards; a violation is a simulator bug).
    #[inline]
    pub fn since(self, earlier: Tick) -> Duration {
        assert!(
            earlier <= self,
            "time went backwards: {earlier:?} > {self:?}"
        );
        Duration(self.0 - earlier.0)
    }

    /// Saturating difference, zero when `earlier > self`.
    #[inline]
    pub fn saturating_since(self, earlier: Tick) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The raw tick count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// A single tick.
    pub const ONE: Duration = Duration(1);

    /// True if the span is empty.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The raw length in ticks.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of spans.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition of spans.
    #[inline]
    pub fn checked_add(self, rhs: Duration) -> Option<Duration> {
        self.0.checked_add(rhs.0).map(Duration)
    }
}

impl Add<Duration> for Tick {
    type Output = Tick;
    #[inline]
    fn add(self, rhs: Duration) -> Tick {
        Tick(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Tick {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Tick {
    type Output = Tick;
    #[inline]
    fn sub(self, rhs: Duration) -> Tick {
        Tick(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Debug for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Delegate so width/alignment format flags are honoured.
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Delegate so width/alignment format flags are honoured.
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_arithmetic() {
        let t = Tick(5) + Duration(3);
        assert_eq!(t, Tick(8));
        assert_eq!(t.since(Tick(5)), Duration(3));
        assert_eq!(t - Duration(8), Tick::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_reversed_order() {
        let _ = Tick(1).since(Tick(2));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Tick(1).saturating_since(Tick(2)), Duration::ZERO);
        assert_eq!(Tick(9).saturating_since(Tick(2)), Duration(7));
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [Duration(1), Duration(2), Duration(3)].into_iter().sum();
        assert_eq!(total, Duration(6));
    }
}
