//! Transaction sets and priority assignment.

use crate::{
    Ceiling, Duration, Error, ItemId, LockMode, Priority, Result, TransactionTemplate, TxnId,
};
use std::collections::BTreeSet;

/// A fixed set of periodic transaction templates with a total priority
/// order.
///
/// The paper writes `T_1, ..., T_n` "listed in descending order of priority,
/// with `T_1` having the highest priority". A `TransactionSet` preserves
/// that convention: template `TxnId(0)` is `T_1`. Priorities are assigned
/// either explicitly (insertion order = descending priority, used for the
/// paper's worked examples) or by the rate-monotonic rule (shorter period =
/// higher priority, ties broken by insertion order).
///
/// Static ceilings derive from the set:
/// * `Wceil(x)` / `HPW(x)` — priority of the highest-priority template that
///   may **write** `x` ([`TransactionSet::wceil`]);
/// * `Aceil(x)` — priority of the highest-priority template that may read
///   **or** write `x` ([`TransactionSet::aceil`]), used by RW-PCP.
#[derive(Clone, Debug)]
pub struct TransactionSet {
    templates: Vec<TransactionTemplate>,
    /// `priorities[i]` is the priority of template `TxnId(i)`.
    priorities: Vec<Priority>,
}

impl TransactionSet {
    /// All templates, indexed by [`TxnId`].
    #[inline]
    pub fn templates(&self) -> &[TransactionTemplate] {
        &self.templates
    }

    /// Number of templates.
    #[inline]
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True if the set has no templates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The template with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range — a foreign-set id is a logic error.
    #[inline]
    pub fn template(&self, id: TxnId) -> &TransactionTemplate {
        &self.templates[id.index()]
    }

    /// Base (original) priority of a template.
    #[inline]
    pub fn priority_of(&self, id: TxnId) -> Priority {
        self.priorities[id.index()]
    }

    /// Templates ordered by descending priority (paper order `T_1..T_n`).
    pub fn by_descending_priority(&self) -> Vec<TxnId> {
        let mut ids: Vec<TxnId> = self.templates.iter().map(|t| t.id).collect();
        ids.sort_by_key(|id| std::cmp::Reverse(self.priority_of(*id)));
        ids
    }

    /// All items accessed by any template.
    pub fn items(&self) -> BTreeSet<ItemId> {
        self.templates.iter().flat_map(|t| t.access_set()).collect()
    }

    /// `HPW(x)` / static `Wceil(x)`: the priority of the highest-priority
    /// template that may write `x`; [`Ceiling::Dummy`] if no template
    /// writes `x`.
    pub fn wceil(&self, item: ItemId) -> Ceiling {
        self.ceiling_where(item, LockMode::Write)
    }

    /// `Aceil(x)`: the priority of the highest-priority template that may
    /// read or write `x`; [`Ceiling::Dummy`] if no template accesses `x`.
    pub fn aceil(&self, item: ItemId) -> Ceiling {
        self.templates
            .iter()
            .filter(|t| t.access_set().contains(&item))
            .map(|t| Ceiling::At(self.priority_of(t.id)))
            .max()
            .unwrap_or(Ceiling::Dummy)
    }

    fn ceiling_where(&self, item: ItemId, mode: LockMode) -> Ceiling {
        self.templates
            .iter()
            .filter(|t| t.may_access(item, mode))
            .map(|t| Ceiling::At(self.priority_of(t.id)))
            .max()
            .unwrap_or(Ceiling::Dummy)
    }

    /// Total CPU utilisation `Σ C_i / Pd_i`.
    pub fn total_utilization(&self) -> f64 {
        self.templates.iter().map(|t| t.utilization()).sum()
    }

    /// The hyperperiod (LCM of all periods) — one full pattern of arrivals.
    pub fn hyperperiod(&self) -> Duration {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        Duration(
            self.templates
                .iter()
                .map(|t| t.period.raw())
                .fold(1u64, |acc, p| acc / gcd(acc, p) * p),
        )
    }
}

/// Builder for [`TransactionSet`].
///
/// Templates are added in the paper's order (descending priority). Call
/// [`SetBuilder::build`] to keep that explicit order, or
/// [`SetBuilder::build_rate_monotonic`] to re-rank by period.
#[derive(Default)]
pub struct SetBuilder {
    templates: Vec<TransactionTemplate>,
}

impl SetBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a template; returns the id it will have in the built set.
    pub fn add(&mut self, mut template: TransactionTemplate) -> TxnId {
        let id = TxnId(self.templates.len() as u32);
        template.id = id;
        self.templates.push(template);
        id
    }

    /// Chaining variant of [`SetBuilder::add`].
    pub fn with(mut self, template: TransactionTemplate) -> Self {
        self.add(template);
        self
    }

    /// Build with explicit priorities: the first template added is `T_1`
    /// (highest priority), matching the paper's examples.
    pub fn build(self) -> Result<TransactionSet> {
        let n = self.templates.len();
        self.finish(|idx, _| Priority((n - 1 - idx) as u32))
    }

    /// Build with rate-monotonic priorities: shorter period = higher
    /// priority; ties broken in favour of earlier insertion (total order).
    pub fn build_rate_monotonic(self) -> Result<TransactionSet> {
        // Rank templates: sort indices by (period asc, insertion asc); the
        // first rank gets the highest priority.
        let mut order: Vec<usize> = (0..self.templates.len()).collect();
        order.sort_by_key(|&i| (self.templates[i].period, i));
        let n = self.templates.len();
        let mut rank_of = vec![0usize; n];
        for (rank, &i) in order.iter().enumerate() {
            rank_of[i] = rank;
        }
        self.finish(|idx, _| Priority((n - 1 - rank_of[idx]) as u32))
    }

    fn finish(
        self,
        priority: impl Fn(usize, &TransactionTemplate) -> Priority,
    ) -> Result<TransactionSet> {
        if self.templates.is_empty() {
            return Err(Error::EmptySet);
        }
        for t in &self.templates {
            t.validate()?;
        }
        let priorities: Vec<Priority> = self
            .templates
            .iter()
            .enumerate()
            .map(|(i, t)| priority(i, t))
            .collect();
        // Total order check.
        let mut seen: BTreeSet<Priority> = BTreeSet::new();
        for p in &priorities {
            if !seen.insert(*p) {
                return Err(Error::DuplicatePriority(*p));
            }
        }
        Ok(TransactionSet {
            templates: self.templates,
            priorities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Step;

    fn example4_set() -> TransactionSet {
        // Paper Example 4: T1: Read(x); T2: Write(y); T3: Read(z),Write(z);
        // T4: Read(y),Write(x). Descending priority by insertion order.
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                20,
                vec![Step::read(ItemId(0), 2)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                20,
                vec![Step::write(ItemId(1), 2)],
            ))
            .with(TransactionTemplate::new(
                "T3",
                20,
                vec![Step::read(ItemId(2), 1), Step::write(ItemId(2), 1)],
            ))
            .with(TransactionTemplate::new(
                "T4",
                20,
                vec![
                    Step::read(ItemId(1), 1),
                    Step::write(ItemId(0), 1),
                    Step::compute(3),
                ],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn explicit_build_gives_descending_priorities() {
        let s = example4_set();
        let p: Vec<u32> = (0..4).map(|i| s.priority_of(TxnId(i)).level()).collect();
        assert_eq!(p, vec![3, 2, 1, 0]);
        assert_eq!(
            s.by_descending_priority(),
            vec![TxnId(0), TxnId(1), TxnId(2), TxnId(3)]
        );
    }

    #[test]
    fn wceil_matches_paper_example4() {
        let s = example4_set();
        // Per the paper's definition, Wceil(x) is the priority of the
        // highest-priority template that may WRITE x. (Example 4's printed
        // "Wceil(x) = P1" contradicts that definition — x is written only
        // by T4 — and its own narrative, which uses Sysceil = Wceil(y) = P2;
        // we follow the definition.)
        assert_eq!(s.wceil(ItemId(1)), Ceiling::At(s.priority_of(TxnId(1)))); // y written by T2
        assert_eq!(s.wceil(ItemId(2)), Ceiling::At(s.priority_of(TxnId(2)))); // z written by T3
        assert_eq!(s.wceil(ItemId(0)), Ceiling::At(s.priority_of(TxnId(3)))); // x written by T4
    }

    #[test]
    fn aceil_takes_readers_into_account() {
        let s = example4_set();
        // x read by T1 (P highest) and written by T4.
        assert_eq!(s.aceil(ItemId(0)), Ceiling::At(s.priority_of(TxnId(0))));
        // Unaccessed item -> dummy.
        assert_eq!(s.aceil(ItemId(9)), Ceiling::Dummy);
        assert_eq!(s.wceil(ItemId(9)), Ceiling::Dummy);
    }

    #[test]
    fn rate_monotonic_orders_by_period() {
        let s = SetBuilder::new()
            .with(TransactionTemplate::new(
                "slow",
                100,
                vec![Step::compute(1)],
            ))
            .with(TransactionTemplate::new("fast", 10, vec![Step::compute(1)]))
            .with(TransactionTemplate::new("mid", 50, vec![Step::compute(1)]))
            .build_rate_monotonic()
            .unwrap();
        assert!(s.priority_of(TxnId(1)) > s.priority_of(TxnId(2)));
        assert!(s.priority_of(TxnId(2)) > s.priority_of(TxnId(0)));
    }

    #[test]
    fn rate_monotonic_breaks_ties_deterministically() {
        let s = SetBuilder::new()
            .with(TransactionTemplate::new("a", 10, vec![Step::compute(1)]))
            .with(TransactionTemplate::new("b", 10, vec![Step::compute(1)]))
            .build_rate_monotonic()
            .unwrap();
        assert!(s.priority_of(TxnId(0)) > s.priority_of(TxnId(1)));
    }

    #[test]
    fn empty_set_is_rejected() {
        assert!(matches!(SetBuilder::new().build(), Err(Error::EmptySet)));
    }

    #[test]
    fn hyperperiod_is_lcm() {
        let s = SetBuilder::new()
            .with(TransactionTemplate::new("a", 4, vec![Step::compute(1)]))
            .with(TransactionTemplate::new("b", 6, vec![Step::compute(1)]))
            .build()
            .unwrap();
        assert_eq!(s.hyperperiod(), Duration(12));
    }

    #[test]
    fn total_utilization_sums_templates() {
        let s = SetBuilder::new()
            .with(TransactionTemplate::new("a", 4, vec![Step::compute(1)]))
            .with(TransactionTemplate::new("b", 8, vec![Step::compute(2)]))
            .build()
            .unwrap();
        assert!((s.total_utilization() - 0.5).abs() < 1e-12);
    }
}
