//! Error types shared across the workspace.

use crate::{InstanceId, ItemId, Priority};
use std::fmt;

/// Workspace-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced while building transaction sets or executing
/// simulations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A transaction set must contain at least one template.
    EmptySet,
    /// Two templates were assigned the same priority — the paper requires
    /// a total priority order.
    DuplicatePriority(Priority),
    /// A template failed validation.
    InvalidTemplate {
        /// Template name.
        name: String,
        /// What was wrong.
        reason: String,
    },
    /// A transaction accessed an item without holding the required lock —
    /// always a protocol/engine bug, surfaced instead of silently
    /// corrupting the history.
    LockNotHeld {
        /// Offending instance.
        instance: InstanceId,
        /// Item accessed.
        item: ItemId,
    },
    /// A deadlock was detected (a cycle in the wait-for graph). Carries the
    /// instances on the cycle. Only the deliberately broken Naive-DA
    /// baseline and unrestricted 2PL can produce this.
    Deadlock(Vec<InstanceId>),
    /// The simulation exceeded its event budget without reaching the
    /// horizon — almost always a stuck schedule (a bug or a deadlock that
    /// went undetected).
    EventBudgetExhausted,
    /// A simulation configuration problem.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptySet => write!(f, "transaction set is empty"),
            Error::DuplicatePriority(p) => {
                write!(
                    f,
                    "duplicate priority {p}: priorities must form a total order"
                )
            }
            Error::InvalidTemplate { name, reason } => {
                write!(f, "invalid template `{name}`: {reason}")
            }
            Error::LockNotHeld { instance, item } => {
                write!(
                    f,
                    "{instance} accessed {item} without holding the required lock"
                )
            }
            Error::Deadlock(cycle) => {
                write!(f, "deadlock detected among ")?;
                for (i, t) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            Error::EventBudgetExhausted => {
                write!(f, "simulation event budget exhausted before the horizon")
            }
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxnId;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::Deadlock(vec![
            InstanceId::first(TxnId(0)),
            InstanceId::first(TxnId(1)),
        ]);
        let msg = e.to_string();
        assert!(msg.contains("deadlock"));
        assert!(msg.contains("T1#0"));
        assert!(msg.contains("T2#0"));

        let e = Error::InvalidTemplate {
            name: "nav".into(),
            reason: "period must be positive".into(),
        };
        assert!(e.to_string().contains("nav"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::EmptySet);
    }
}
