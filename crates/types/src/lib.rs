//! Common vocabulary for the PCP-DA reproduction.
//!
//! This crate defines the fundamental types shared by every other crate in
//! the workspace: identifiers, discrete simulation time, priorities and
//! ceilings, lock modes, transaction templates (periodic real-time
//! transactions as sequences of read/write/compute steps) and transaction
//! sets with rate-monotonic priority assignment.
//!
//! The model follows the paper exactly (Lam, Son, Hung, ICDE 1997, §5):
//!
//! * a single processor with a memory-resident database;
//! * periodic transactions with rate-monotonic priority assignment — a
//!   transaction with a shorter period gets a higher priority, the deadline
//!   of an instance is the end of its period;
//! * priorities form a *total order* (ties are broken deterministically);
//! * transactions acquire read/write locks before accessing data items and
//!   hold all locks until commit.

#![forbid(unsafe_code)]

pub mod error;
pub mod id;
pub mod ops;
pub mod priority;
pub mod set;
pub mod time;
pub mod txn;
pub mod value;

pub use error::{Error, Result};
pub use id::{InstanceId, ItemId, SlotId, TxnId};
pub use ops::{LockMode, Operation, Step};
pub use priority::{Ceiling, Priority};
pub use set::{SetBuilder, TransactionSet};
pub use time::{Duration, Tick};
pub use txn::TransactionTemplate;
pub use value::{derive_write, Value};
