//! Data item values.
//!
//! Values carried by data items are opaque 64-bit words. Transactions in
//! the simulator *actually compute* on them — each write stores a pure
//! function of the transaction's identity and everything it has read so far
//! — so the serial-replay oracle in `rtdb-storage` can detect serialization
//! anomalies by value, not just by conflict graph.

use crate::{InstanceId, ItemId};
use std::fmt;

/// The value of a data item.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Value(pub u64);

impl Value {
    /// The initial value of every item in a freshly created database.
    pub const INITIAL: Value = Value(0);

    /// Raw word.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Fold another value into a running digest (order-sensitive).
    ///
    /// Used by transactions to accumulate everything they have read; the
    /// combination is a cheap non-cryptographic mix (FNV-style) that is
    /// deterministic and sensitive to both value and order.
    #[inline]
    pub fn mix(self, other: Value) -> Value {
        const PRIME: u64 = 0x100_0000_01b3;
        // Rotate the accumulator before folding so the operation is
        // order-sensitive (plain XOR would commute).
        Value((self.0.rotate_left(17) ^ other.0).wrapping_mul(PRIME))
    }
}

/// Deterministically derive the value an instance writes to `item` at its
/// `step_index`-th step, given the digest of everything it has read so far.
///
/// Purity of this function is what makes serial replay a sound oracle: a
/// serial re-execution of the committed transactions performs the same
/// computation, so any divergence in values proves a non-serializable
/// interleaving.
pub fn derive_write(
    writer: InstanceId,
    step_index: usize,
    item: ItemId,
    read_digest: Value,
) -> Value {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for word in [
        writer.txn.0 as u64,
        writer.seq as u64,
        step_index as u64,
        item.0 as u64,
        read_digest.0,
    ] {
        h ^= word;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    Value(h)
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:016x}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxnId;

    #[test]
    fn derive_write_is_deterministic() {
        let w = InstanceId::new(TxnId(1), 2);
        let a = derive_write(w, 0, ItemId(3), Value(42));
        let b = derive_write(w, 0, ItemId(3), Value(42));
        assert_eq!(a, b);
    }

    #[test]
    fn derive_write_distinguishes_inputs() {
        let w = InstanceId::new(TxnId(1), 2);
        let base = derive_write(w, 0, ItemId(3), Value(42));
        assert_ne!(base, derive_write(w, 1, ItemId(3), Value(42)));
        assert_ne!(base, derive_write(w, 0, ItemId(4), Value(42)));
        assert_ne!(base, derive_write(w, 0, ItemId(3), Value(43)));
        assert_ne!(
            base,
            derive_write(InstanceId::new(TxnId(1), 3), 0, ItemId(3), Value(42))
        );
        assert_ne!(
            base,
            derive_write(InstanceId::new(TxnId(2), 2), 0, ItemId(3), Value(42))
        );
    }

    #[test]
    fn mix_is_order_sensitive() {
        let a = Value(1).mix(Value(2));
        let b = Value(2).mix(Value(1));
        assert_ne!(a, b);
        assert_eq!(Value(1).mix(Value(2)), Value(1).mix(Value(2)));
    }
}
