//! Identifiers for data items, transaction templates and periodic instances.

use std::fmt;

/// Identifier of a data item in the memory-resident database.
///
/// Items are the unit of locking in every protocol in this workspace; the
/// paper calls them `x`, `y`, `z`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// Numeric index of the item.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render the first few items with the paper's letters for readable
        // traces, falling back to x<N>.
        match self.0 {
            0 => write!(f, "x"),
            1 => write!(f, "y"),
            2 => write!(f, "z"),
            n => write!(f, "x{n}"),
        }
    }
}

/// Identifier of a transaction *template* (a periodic transaction type).
///
/// The paper writes `T_1 .. T_n`, listed in descending order of priority.
/// `TxnId(0)` conventionally corresponds to `T_1` (highest priority) when a
/// [`crate::TransactionSet`] is built with explicit priorities.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u32);

impl TxnId {
    /// Numeric index of the template.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// Index of a slot in a dense per-instance state arena.
///
/// Slots are recycled across instance completions: a `SlotId` is only
/// meaningful while the instance it was handed out for is live, and the
/// stable [`InstanceId`] remains the identity used in traces and metrics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

impl SlotId {
    /// Numeric index of the slot.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of one periodic *instance* (job) of a transaction template.
///
/// The `k`-th arrival of template `T_i` is `InstanceId { txn: i, seq: k }`
/// (`seq` starts at 0). All runtime state — locks, workspaces, blocking —
/// is tracked per instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId {
    /// The template this instance belongs to.
    pub txn: TxnId,
    /// Zero-based arrival sequence number within the template.
    pub seq: u32,
}

impl InstanceId {
    /// Instance `seq` of template `txn`.
    #[inline]
    pub fn new(txn: TxnId, seq: u32) -> Self {
        Self { txn, seq }
    }

    /// The first instance of a template.
    #[inline]
    pub fn first(txn: TxnId) -> Self {
        Self { txn, seq: 0 }
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}#{}", self.txn, self.seq)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.txn, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_display_uses_paper_letters() {
        assert_eq!(ItemId(0).to_string(), "x");
        assert_eq!(ItemId(1).to_string(), "y");
        assert_eq!(ItemId(2).to_string(), "z");
        assert_eq!(ItemId(7).to_string(), "x7");
    }

    #[test]
    fn txn_display_is_one_based() {
        assert_eq!(TxnId(0).to_string(), "T1");
        assert_eq!(TxnId(3).to_string(), "T4");
    }

    #[test]
    fn instance_ordering_is_by_template_then_seq() {
        let a = InstanceId::new(TxnId(0), 5);
        let b = InstanceId::new(TxnId(1), 0);
        assert!(a < b);
        assert!(InstanceId::first(TxnId(0)) < a);
    }

    #[test]
    fn ids_are_copy_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(InstanceId::first(TxnId(2)));
        assert!(s.contains(&InstanceId::new(TxnId(2), 0)));
    }
}
