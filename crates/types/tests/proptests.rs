//! Property tests for the foundational types.

use proptest::prelude::*;
use rtdb_types::*;

fn arb_ceiling() -> impl Strategy<Value = Ceiling> {
    prop_oneof![
        Just(Ceiling::Dummy),
        (0u32..100).prop_map(|p| Ceiling::At(Priority(p))),
    ]
}

proptest! {
    /// Ceiling ordering is a total order with Dummy as bottom.
    #[test]
    fn ceiling_order_laws(a in arb_ceiling(), b in arb_ceiling(), c in arb_ceiling()) {
        // Totality + antisymmetry via Ord.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Dummy is bottom.
        prop_assert!(Ceiling::Dummy <= a);
        // max agrees with Ord.
        prop_assert_eq!(a.max(b), std::cmp::max(a, b));
    }

    /// `cleared_by` is exactly "strictly above the ceiling".
    #[test]
    fn cleared_by_matches_order(p in 0u32..100, c in arb_ceiling()) {
        let pr = Priority(p);
        prop_assert_eq!(c.cleared_by(pr), Ceiling::At(pr) > c);
    }

    /// Tick/Duration arithmetic is consistent.
    #[test]
    fn tick_duration_arithmetic(base in 0u64..1_000_000, d1 in 0u64..10_000, d2 in 0u64..10_000) {
        let t = Tick(base);
        let a = t + Duration(d1) + Duration(d2);
        let b = t + (Duration(d1) + Duration(d2));
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.since(t), Duration(d1 + d2));
        prop_assert_eq!(a - Duration(d2), t + Duration(d1));
    }

    /// derive_write is a pure function and injective-ish across inputs
    /// (no collisions observed across distinct step indices and items
    /// within one instance — a smoke check, not a cryptographic claim).
    #[test]
    fn derive_write_purity(
        txn in 0u32..64, seq in 0u32..64, step in 0usize..16,
        item in 0u32..64, digest in any::<u64>(),
    ) {
        let who = InstanceId::new(TxnId(txn), seq);
        let a = derive_write(who, step, ItemId(item), Value(digest));
        let b = derive_write(who, step, ItemId(item), Value(digest));
        prop_assert_eq!(a, b);
        // Different step index changes the value.
        let c = derive_write(who, step + 1, ItemId(item), Value(digest));
        prop_assert_ne!(a, c);
    }

    /// Rate-monotonic priority assignment: shorter period never gets a
    /// lower priority, and priorities are a permutation of 0..n.
    #[test]
    fn rate_monotonic_is_monotone(periods in prop::collection::vec(2u64..500, 1..10)) {
        let mut b = SetBuilder::new();
        for (i, &p) in periods.iter().enumerate() {
            b.add(TransactionTemplate::new(format!("t{i}"), p, vec![Step::compute(1)]));
        }
        let set = b.build_rate_monotonic().unwrap();
        let n = set.len();
        let mut seen = vec![false; n];
        for t in set.templates() {
            let lvl = set.priority_of(t.id).level() as usize;
            prop_assert!(lvl < n);
            prop_assert!(!seen[lvl], "duplicate priority");
            seen[lvl] = true;
        }
        for a in set.templates() {
            for b in set.templates() {
                if a.period < b.period {
                    prop_assert!(
                        set.priority_of(a.id) > set.priority_of(b.id),
                        "shorter period must get higher priority"
                    );
                }
            }
        }
    }

    /// Ceiling definitions: Wceil(x) <= Aceil(x) for every item.
    #[test]
    fn wceil_bounded_by_aceil(
        ops in prop::collection::vec(
            prop::collection::vec((0u32..6, any::<bool>()), 1..4),
            2..6,
        ),
    ) {
        let mut b = SetBuilder::new();
        for (i, txn_ops) in ops.iter().enumerate() {
            let steps: Vec<Step> = txn_ops
                .iter()
                .map(|&(item, write)| {
                    if write {
                        Step::write(ItemId(item), 1)
                    } else {
                        Step::read(ItemId(item), 1)
                    }
                })
                .collect();
            let period = (steps.len() as u64 + 1) * 10;
            b.add(TransactionTemplate::new(format!("t{i}"), period, steps));
        }
        let set = b.build().unwrap();
        for item in set.items() {
            prop_assert!(set.wceil(item) <= set.aceil(item));
        }
    }

    /// Hyperperiod is divisible by every period.
    #[test]
    fn hyperperiod_divisible(periods in prop::collection::vec(1u64..50, 1..6)) {
        let mut b = SetBuilder::new();
        for (i, &p) in periods.iter().enumerate() {
            b.add(TransactionTemplate::new(format!("t{i}"), p, vec![Step::compute(1)]));
        }
        let set = b.build().unwrap();
        let h = set.hyperperiod().raw();
        for t in set.templates() {
            prop_assert_eq!(h % t.period.raw(), 0);
        }
    }
}
