//! Property tests for the foundational types.

use rtdb_types::*;
use rtdb_util::prop::{forall, vec_of, CASES};
use rtdb_util::Rng;

fn arb_ceiling(rng: &mut Rng) -> Ceiling {
    if rng.chance(0.2) {
        Ceiling::Dummy
    } else {
        Ceiling::At(Priority(rng.range_u32(0..100)))
    }
}

/// Ceiling ordering is a total order with Dummy as bottom.
#[test]
fn ceiling_order_laws() {
    forall(CASES, |rng| {
        let a = arb_ceiling(rng);
        let b = arb_ceiling(rng);
        let c = arb_ceiling(rng);
        // Totality + antisymmetry via Ord.
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity.
        if a <= b && b <= c {
            assert!(a <= c);
        }
        // Dummy is bottom.
        assert!(Ceiling::Dummy <= a);
        // max agrees with Ord.
        assert_eq!(a.max(b), std::cmp::max(a, b));
    });
}

/// `cleared_by` is exactly "strictly above the ceiling".
#[test]
fn cleared_by_matches_order() {
    forall(CASES, |rng| {
        let pr = Priority(rng.range_u32(0..100));
        let c = arb_ceiling(rng);
        assert_eq!(c.cleared_by(pr), Ceiling::At(pr) > c);
    });
}

/// Tick/Duration arithmetic is consistent.
#[test]
fn tick_duration_arithmetic() {
    forall(CASES, |rng| {
        let t = Tick(rng.range_u64(0..1_000_000));
        let d1 = Duration(rng.range_u64(0..10_000));
        let d2 = Duration(rng.range_u64(0..10_000));
        let a = t + d1 + d2;
        let b = t + (d1 + d2);
        assert_eq!(a, b);
        assert_eq!(a.since(t), d1 + d2);
        assert_eq!(a - d2, t + d1);
    });
}

/// derive_write is a pure function and injective-ish across inputs
/// (no collisions observed across distinct step indices and items
/// within one instance — a smoke check, not a cryptographic claim).
#[test]
fn derive_write_purity() {
    forall(CASES, |rng| {
        let who = InstanceId::new(TxnId(rng.range_u32(0..64)), rng.range_u32(0..64));
        let step = rng.range_usize(0..16);
        let item = ItemId(rng.range_u32(0..64));
        let digest = Value(rng.next_u64());
        let a = derive_write(who, step, item, digest);
        let b = derive_write(who, step, item, digest);
        assert_eq!(a, b);
        // Different step index changes the value.
        let c = derive_write(who, step + 1, item, digest);
        assert_ne!(a, c);
    });
}

/// Rate-monotonic priority assignment: shorter period never gets a
/// lower priority, and priorities are a permutation of 0..n.
#[test]
fn rate_monotonic_is_monotone() {
    forall(CASES, |rng| {
        let periods = vec_of(rng, 1..10, |rng| rng.range_u64(2..500));
        let mut b = SetBuilder::new();
        for (i, &p) in periods.iter().enumerate() {
            b.add(TransactionTemplate::new(
                format!("t{i}"),
                p,
                vec![Step::compute(1)],
            ));
        }
        let set = b.build_rate_monotonic().unwrap();
        let n = set.len();
        let mut seen = vec![false; n];
        for t in set.templates() {
            let lvl = set.priority_of(t.id).level() as usize;
            assert!(lvl < n);
            assert!(!seen[lvl], "duplicate priority");
            seen[lvl] = true;
        }
        for a in set.templates() {
            for b in set.templates() {
                assert!(
                    a.period >= b.period || set.priority_of(a.id) > set.priority_of(b.id),
                    "shorter period must get higher priority"
                );
            }
        }
    });
}

/// Ceiling definitions: Wceil(x) <= Aceil(x) for every item.
#[test]
fn wceil_bounded_by_aceil() {
    forall(CASES, |rng| {
        let ops = vec_of(rng, 2..6, |rng| {
            vec_of(rng, 1..4, |rng| (ItemId(rng.range_u32(0..6)), rng.bool()))
        });
        let mut b = SetBuilder::new();
        for (i, txn_ops) in ops.iter().enumerate() {
            let steps: Vec<Step> = txn_ops
                .iter()
                .map(|&(item, write)| {
                    if write {
                        Step::write(item, 1)
                    } else {
                        Step::read(item, 1)
                    }
                })
                .collect();
            let period = (steps.len() as u64 + 1) * 10;
            b.add(TransactionTemplate::new(format!("t{i}"), period, steps));
        }
        let set = b.build().unwrap();
        for item in set.items() {
            assert!(set.wceil(item) <= set.aceil(item));
        }
    });
}

/// Hyperperiod is divisible by every period.
#[test]
fn hyperperiod_divisible() {
    forall(CASES, |rng| {
        let periods = vec_of(rng, 1..6, |rng| rng.range_u64(1..50));
        let mut b = SetBuilder::new();
        for (i, &p) in periods.iter().enumerate() {
            b.add(TransactionTemplate::new(
                format!("t{i}"),
                p,
                vec![Step::compute(1)],
            ));
        }
        let set = b.build().unwrap();
        let h = set.hyperperiod().raw();
        for t in set.templates() {
            assert_eq!(h % t.period.raw(), 0);
        }
    });
}
