//! A minimal JSON value type with parser and printers.
//!
//! Object key order is preserved (insertion order), so emitted reports are
//! stable across runs — important for committed artifacts like
//! `BENCH_protocols.json` whose diffs should be meaningful.

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/overwrite a key (builder style).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(pairs) = &mut self {
            let value = value.into();
            if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
                pair.1 = value;
            } else {
                pairs.push((key.to_string(), value));
            }
            self
        } else {
            panic!("Json::set on a non-object");
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (also accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(n) => Some(n),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(f as i64),
            _ => None,
        }
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(n) => Some(n as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Json::Arr(_))
    }

    /// Compact one-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    if f.fract() == 0.0 && f.abs() < 1.0e15 {
                        // Keep a ".0" so the value round-trips as a float.
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a descriptive error on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<i32> for Json {
    fn from(n: i32) -> Json {
        Json::Int(n as i64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        if n <= i64::MAX as u64 {
            Json::Int(n as i64)
        } else {
            Json::Float(n as f64)
        }
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(items: &[T]) -> Json {
        Json::Arr(items.iter().cloned().map(Into::into).collect())
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        b'n' => expect(bytes, pos, "null").map(|()| Json::Null),
        b't' => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        c => Err(format!(
            "unexpected character `{}` at byte {pos}",
            c as char,
            pos = *pos
        )),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our own output;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    e => return Err(format!("bad escape `\\{}`", e as char)),
                }
            }
            _ => {
                // Re-decode UTF-8: back up and take the full char.
                *pos -= 1;
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = Json::obj()
            .set("name", "PCP-DA")
            .set("ticks", 12345u64)
            .set("ratio", 0.5)
            .set("ok", true)
            .set("tags", vec!["a", "b"])
            .set("nothing", Json::Null);
        for text in [doc.to_string_compact(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\n\"b\"Aü"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\n\"b\"Aü");
        let out = v.to_string_compact();
        assert_eq!(Json::parse(&out).unwrap(), v);
    }

    #[test]
    fn numbers_keep_integerness() {
        let v = Json::parse("[1, -2, 3.5, 1e3]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0], Json::Int(1));
        assert_eq!(items[1], Json::Int(-2));
        assert_eq!(items[2], Json::Float(3.5));
        assert_eq!(items[3], Json::Float(1000.0));
        assert_eq!(items[3].as_i64(), Some(1000));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn set_overwrites_in_place() {
        let v = Json::obj().set("a", 1).set("b", 2).set("a", 3);
        assert_eq!(v.get("a").unwrap().as_i64(), Some(3));
        // Insertion order preserved: "a" still first.
        assert!(v.to_string_compact().starts_with("{\"a\""));
    }
}
