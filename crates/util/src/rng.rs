//! A small, fast, seeded PRNG: xoshiro256++ with SplitMix64 seeding.
//!
//! Not cryptographic. Every stream is fully determined by its seed, which
//! is what reproducible experiments and property tests need.

/// A seeded pseudo-random number generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// A generator fully determined by `seed`.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// An independent generator split off this one (for child streams).
    pub fn split(&mut self) -> Rng {
        Rng::seed(self.next_u64())
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded(0)");
        // Debiased multiply-shift (Lemire).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `u64` in the half-open range `lo..hi` (`lo < hi`).
    #[inline]
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.bounded(range.end - range.start)
    }

    /// Uniform `u32` in `lo..hi`.
    #[inline]
    pub fn range_u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.range_u64(range.start as u64..range.end as u64) as u32
    }

    /// Uniform `usize` in `lo..hi`.
    #[inline]
    pub fn range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u64` in the closed range `lo..=hi`.
    #[inline]
    pub fn range_inclusive_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.bounded(hi - lo + 1)
    }

    /// Uniform `usize` in `lo..=hi`.
    #[inline]
    pub fn range_inclusive_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_inclusive_u64(lo as u64, hi as u64) as usize
    }

    /// A fair coin.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.range_usize(0..slice.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0..i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed(7);
        let mut b = Rng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed(8);
        assert_ne!(Rng::seed(7).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut r = Rng::seed(1);
        for _ in 0..10_000 {
            assert!(r.bounded(7) < 7);
            let x = r.range_u64(10..20);
            assert!((10..20).contains(&x));
            let y = r.range_inclusive_u64(3, 5);
            assert!((3..=5).contains(&y));
        }
        assert_eq!(r.range_u64(4..5), 4);
        assert_eq!(r.range_inclusive_u64(9, 9), 9);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Rng::seed(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
