//! Ordered parallel map over scoped threads.
//!
//! `par_map(&items, f)` applies `f` to every item on a pool of worker
//! threads and returns the results **in input order** — callers that emit
//! reports or CSV rows stay deterministic regardless of scheduling. Work
//! is distributed by an atomic cursor, so long and short items mix freely
//! without static partitioning imbalance.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for `len` items.
fn worker_count(len: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(len).max(1)
}

/// Apply `f` to every element of `items` in parallel; results come back in
/// input order. Falls back to a sequential loop for zero or one item.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = worker_count(items.len());
    if workers == 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        let items: Vec<u32> = (0..64).collect();
        let ids = Mutex::new(HashSet::new());
        par_map(&items, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // Give other workers a chance to pick up items.
            std::thread::yield_now();
        });
        let distinct = ids.lock().unwrap().len();
        assert!(distinct >= 1);
    }
}
