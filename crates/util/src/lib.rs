//! Zero-dependency support utilities for the PCP-DA workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace is pure-std; this crate supplies the small slices of the
//! usual ecosystem crates the repository needs:
//!
//! * [`rng`] — a seeded, splittable PRNG (xoshiro256++) for reproducible
//!   workload generation and randomized tests (in place of `rand`);
//! * [`json`] — a JSON value type with a parser and pretty printer (in
//!   place of `serde`/`serde_json`);
//! * [`par`] — an ordered parallel map over a thread pool built on
//!   `std::thread::scope` (in place of `rayon`);
//! * [`prop`] — a tiny property-testing harness with deterministic
//!   per-iteration seeds (in place of `proptest`).

#![forbid(unsafe_code)]

pub mod json;
pub mod par;
pub mod prop;
pub mod rng;

pub use json::Json;
pub use par::par_map;
pub use rng::Rng;
