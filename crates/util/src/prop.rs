//! A tiny deterministic property-testing harness.
//!
//! `forall(CASES, |rng| { ... })` runs the closure `CASES` times, each with
//! an [`Rng`] seeded from a fixed base plus the iteration index. Failures
//! therefore reproduce exactly; the harness prints the failing seed before
//! propagating the panic, so a single case can be replayed with
//! `replay(seed, |rng| ...)`.
//!
//! There is no shrinking — cases are kept small instead (the closure draws
//! sizes from narrow ranges), which in practice keeps counterexamples
//! readable.

use crate::rng::Rng;

/// Default number of cases for a property.
pub const CASES: usize = 256;

/// Base seed for [`forall`]; iteration `i` uses `BASE_SEED + i`.
pub const BASE_SEED: u64 = 0x9C9D_A001;

/// Run `property` for `cases` deterministic seeds, reporting the seed of
/// the first failing case.
pub fn forall(cases: usize, property: impl Fn(&mut Rng) + std::panic::RefUnwindSafe) {
    for i in 0..cases {
        let seed = BASE_SEED.wrapping_add(i as u64);
        let result = std::panic::catch_unwind(|| {
            let mut rng = Rng::seed(seed);
            property(&mut rng);
        });
        if let Err(panic) = result {
            eprintln!("property failed at case {i} (replay with seed {seed:#x})");
            std::panic::resume_unwind(panic);
        }
    }
}

/// Re-run one case of a property by seed (for debugging a `forall` report).
pub fn replay(seed: u64, property: impl FnOnce(&mut Rng)) {
    let mut rng = Rng::seed(seed);
    property(&mut rng);
}

/// Draw a vector whose length is uniform in `len` and whose elements come
/// from `gen`.
pub fn vec_of<T>(
    rng: &mut Rng,
    len: std::ops::Range<usize>,
    mut gen: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = rng.range_usize(len);
    (0..n).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_every_case() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        COUNT.store(0, Ordering::SeqCst);
        forall(17, |_| {
            COUNT.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(COUNT.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn failing_property_panics() {
        let r = std::panic::catch_unwind(|| {
            forall(8, |rng| {
                // Fails on some case: next_u64 is "never" 3 but assert a
                // property violated for every draw below the mean.
                assert!(rng.next_u64() > u64::MAX / 2, "low draw");
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn vec_of_respects_bounds() {
        forall(32, |rng| {
            let v = vec_of(rng, 2..5, |r| r.range_u32(0..10));
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        });
    }
}
