//! Property tests for the concurrency-control framework.

use proptest::prelude::*;
use rtdb_cc::*;
use rtdb_types::*;

fn inst(t: u32) -> InstanceId {
    InstanceId::first(TxnId(t))
}

proptest! {
    /// Lock table: grants and releases are exact inverses; `release_all`
    /// returns exactly what was granted (deduplicated by (item, mode)).
    #[test]
    fn lock_table_roundtrip(grants in prop::collection::vec((0u32..4, 0u32..6, any::<bool>()), 0..20)) {
        let mut lt = LockTable::new();
        let mut expect: std::collections::BTreeSet<(u32, u32, bool)> = Default::default();
        for &(who, item, write) in &grants {
            let mode = if write { LockMode::Write } else { LockMode::Read };
            lt.grant(inst(who), ItemId(item), mode);
            expect.insert((who, item, write));
        }
        for who in 0..4u32 {
            let mine: std::collections::BTreeSet<(u32, u32, bool)> = expect
                .iter()
                .filter(|&&(w, _, _)| w == who)
                .copied()
                .collect();
            let held: std::collections::BTreeSet<(u32, u32, bool)> = lt
                .held_by(inst(who))
                .map(|l| (who, l.item.0, l.mode == LockMode::Write))
                .collect();
            prop_assert_eq!(&mine, &held);
            let released = lt.release_all(inst(who));
            prop_assert_eq!(released.len(), mine.len());
        }
        prop_assert_eq!(lt.locked_items(), 0);
    }

    /// Priority inheritance: running priority is always >= base, equals
    /// base with no edges, and equals the max over base + blocked
    /// requesters' running priorities (fixpoint property).
    #[test]
    fn inheritance_fixpoint(
        bases in prop::collection::vec(0u32..20, 2..8),
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..8),
    ) {
        let n = bases.len();
        let mut pm = PriorityManager::new();
        for (i, &b) in bases.iter().enumerate() {
            pm.register(inst(i as u32), Priority(b + (i as u32) * 100)); // distinct
        }
        // Apply edges (skip self-edges and out-of-range, one blocker per
        // blocked instance — last wins, like the engine).
        let mut applied: std::collections::BTreeMap<usize, usize> = Default::default();
        for &(blocked, blocker) in &edges {
            if blocked < n && blocker < n && blocked != blocker {
                // Avoid trivial cycles for this test: only allow edges
                // from a higher-index node to a lower one.
                if blocked > blocker {
                    pm.set_blocked(inst(blocked as u32), vec![inst(blocker as u32)]);
                    applied.insert(blocked, blocker);
                }
            }
        }
        // running >= base everywhere.
        for i in 0..n {
            prop_assert!(pm.running(inst(i as u32)) >= pm.base(inst(i as u32)));
        }
        // Fixpoint equation.
        for i in 0..n {
            let me = inst(i as u32);
            let inherited = applied
                .iter()
                .filter(|&(_, &blocker)| blocker == i)
                .map(|(&blocked, _)| pm.running(inst(blocked as u32)))
                .max();
            let expected = match inherited {
                Some(p) => std::cmp::max(pm.base(me), p),
                None => pm.base(me),
            };
            prop_assert_eq!(pm.running(me), expected);
        }
        // Clearing all edges restores bases.
        for &blocked in applied.keys() {
            pm.clear_blocked(inst(blocked as u32));
        }
        for i in 0..n {
            prop_assert_eq!(pm.running(inst(i as u32)), pm.base(inst(i as u32)));
        }
    }

    /// Wait-for graphs: a graph whose edges all point from higher indices
    /// to strictly lower ones is acyclic; adding a back edge on any path
    /// creates a detectable cycle.
    #[test]
    fn waitfor_cycle_detection(
        edges in prop::collection::vec((1usize..10, 0usize..10), 1..15),
    ) {
        let mut g = WaitForGraph::default();
        let mut down_edges = vec![];
        for &(a, b) in &edges {
            if b < a {
                g.add_edge(inst(a as u32), inst(b as u32));
                down_edges.push((a, b));
            }
        }
        prop_assert!(g.is_deadlock_free());

        if let Some(&(a, b)) = down_edges.first() {
            // Close the loop: b -> a.
            g.add_edge(inst(b as u32), inst(a as u32));
            let cycle = g.find_cycle();
            prop_assert!(cycle.is_some());
            let cycle = cycle.unwrap();
            prop_assert!(cycle.len() >= 2);
        }
    }

    /// Ceiling computations agree with brute force on random lock states.
    #[test]
    fn sysceil_matches_bruteforce(
        ops in prop::collection::vec(
            prop::collection::vec((0u32..5, any::<bool>()), 1..4),
            2..6,
        ),
        locks_taken in prop::collection::vec((0usize..6, 0u32..5, any::<bool>()), 0..8),
    ) {
        // Build a set whose templates perform the given ops.
        let mut b = SetBuilder::new();
        for (i, txn_ops) in ops.iter().enumerate() {
            let steps: Vec<Step> = txn_ops
                .iter()
                .map(|&(item, w)| if w { Step::write(ItemId(item), 1) } else { Step::read(ItemId(item), 1) })
                .collect();
            b.add(TransactionTemplate::new(format!("t{i}"), (steps.len() as u64 + 1) * 10, steps));
        }
        let set = b.build().unwrap();
        let ceilings = CeilingTable::new(&set);
        let n = set.len();

        let mut lt = LockTable::new();
        for &(who, item, write) in &locks_taken {
            if who < n {
                let mode = if write { LockMode::Write } else { LockMode::Read };
                lt.grant(inst(who as u32), ItemId(item), mode);
            }
        }

        for me in 0..n {
            let me = inst(me as u32);
            // Brute-force PCP-DA Sysceil: max Wceil over items read-locked
            // by others.
            let mut expected = Ceiling::Dummy;
            for item in (0..5).map(ItemId) {
                if lt.readers(item).any(|r| r != me) {
                    expected = expected.max(set.wceil(item));
                }
            }
            prop_assert_eq!(ceilings.pcpda_sysceil(&lt, me).ceiling, expected);

            // Brute-force RW-PCP Sysceil.
            let mut expected = Ceiling::Dummy;
            for item in (0..5).map(ItemId) {
                if lt.writers(item).any(|w| w != me) {
                    expected = expected.max(set.aceil(item));
                }
                if lt.readers(item).any(|r| r != me) {
                    expected = expected.max(set.wceil(item));
                }
            }
            prop_assert_eq!(ceilings.rwpcp_sysceil(&lt, me).ceiling, expected);
        }
    }
}
