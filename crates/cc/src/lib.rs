//! Concurrency-control framework shared by PCP-DA and every baseline.
//!
//! The crate factors out the machinery every priority-ceiling-style
//! protocol needs, so that each protocol implementation is only its
//! *locking conditions*:
//!
//! * [`LockTable`] — who holds which item in which mode, plus the wait
//!   queues' raw material. PCP-DA permits several concurrent write locks
//!   on one item (blind writes are non-conflicting under deferred updates,
//!   paper §4.1 Case 3), so the table tracks reader *and* writer sets per
//!   item and supports upgrades;
//! * [`CeilingTable`] — the static ceilings `Wceil(x)`/`HPW(x)` and
//!   `Aceil(x)` derived from a [`rtdb_types::TransactionSet`], and the
//!   dynamic `Sysceil` computations of PCP-DA (read locks only), RW-PCP
//!   (`RWceil`) and the original PCP (`Aceil` for any lock);
//! * [`Protocol`] — the trait a concurrency-control protocol implements;
//!   the simulation engine calls [`Protocol::request`] and applies the
//!   returned [`Decision`];
//! * [`PriorityManager`] — base priorities plus transitive priority
//!   inheritance over the current blocking edges;
//! * [`waitfor`] — the wait-for graph and deadlock detection.

pub mod ceiling_index;
pub mod ceilings;
pub mod inherit;
pub mod locks;
pub mod protocol;
pub mod waitfor;

pub use ceiling_index::CeilingIndex;
pub use ceilings::{CeilingTable, SysCeil};
pub use inherit::PriorityManager;
pub use locks::{HeldLock, LockTable};
pub use protocol::{sorted_disjoint, Decision, EngineView, LockRequest, Protocol, UpdateModel};
pub use waitfor::WaitForGraph;
