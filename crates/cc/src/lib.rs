//! **PCP-DA** — the Priority Ceiling Protocol with Dynamic Adjustment of
//! serialization order (Lam, Son, Hung; ICDE 1997).
//!
//! # The idea
//!
//! Classical real-time priority-ceiling protocols (PCP, RW-PCP, CCP) fix
//! the serialization order between two transactions at the moment of their
//! first conflicting access, because they assume updates take effect in
//! place. That forces a higher-priority transaction `T_H` to *block* behind
//! a lower-priority writer `T_L` even when nothing about data consistency
//! requires it.
//!
//! PCP-DA assumes the **update-in-workspace** model instead: writes are
//! buffered privately and installed at commit. The serialization order
//! between conflicting transactions is then decided only at commit time,
//! which lets the protocol *dynamically adjust* it:
//!
//! * **Write/Read** (`T_L` write-locked `x`, `T_H` wants to read): `T_H`
//!   may preempt, reading the committed pre-image and serializing
//!   `T_H → T_L` — provided `T_H` is guaranteed to commit first, i.e.
//!   `DataRead(T_L) ∩ WriteSet(T_H) = ∅` (otherwise `T_H` would later
//!   block behind `T_L` and `T_L`'s commit would invalidate `T_H`'s read).
//! * **Read/Write** (`T_L` read-locked `x`, `T_H` wants to write): `T_H`
//!   must block — its write would otherwise invalidate `T_L`'s read and
//!   force a restart, which PCP-DA forbids.
//! * **Write/Write**: blind writes never conflict under deferred updates;
//!   the commit order serializes them. Both proceed.
//!
//! Consequently **write locks never raise a ceiling**; only read locks do.
//! Each item needs a single static ceiling, the *write priority ceiling*
//! `Wceil(x)` — the priority of the highest-priority transaction that may
//! write `x` — and the system ceiling `Sysceil_i` is the highest `Wceil`
//! among items read-locked by transactions other than `T_i`.
//!
//! # Locking conditions (paper §5)
//!
//! A request by `T_i` on item `x` is granted iff one of:
//!
//! | | condition |
//! |----|-----------|
//! | LC1 | write-lock request and no other transaction read-holds `x` |
//! | LC2 | read-lock request and `P_i > Sysceil_i` |
//! | LC3 | read-lock request and `P_i > HPW(x)` and `x ∉ WriteSet(T*)` |
//! | LC4 | read-lock request and `P_i = HPW(x)` and `No_Rlock(x)` and `x ∉ WriteSet(T*)` and `DataRead(T*) ∩ WriteSet(T_i) = ∅` |
//!
//! where `T*` holds the read-locked item whose `Wceil` equals `Sysceil_i`,
//! and `HPW(x) = Wceil(x)`. Denied requests block; blockers inherit the
//! requester's priority.
//!
//! PCP-DA keeps RW-PCP's two guarantees — **single blocking** (Theorem 1)
//! and **deadlock freedom** (Theorem 2) — produces only serializable
//! histories with the commit order as a serialization order (Theorem 3),
//! and never aborts or restarts a transaction.
//!
//! # Priority convention
//!
//! The locking conditions compare the requester's **original** (base)
//! priority against ceilings, as in the classical PCP literature; the
//! *running* (possibly inherited) priority governs CPU scheduling only.
//! Ceilings are computed from base priorities, so comparing an inherited
//! priority against them would let a temporarily-boosted transaction take
//! locks its own priority does not justify, breaking Lemma 4 ("`T_i` will
//! not write-lock `x`" is an inference from `P_i > HPW(x)` about `T_i`'s
//! *identity*, valid only for its original priority).
//!
//! # Example
//!
//! ```
//! use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate, LockMode, InstanceId, TxnId};
//! use rtdb_core::{Decision, LockRequest, Protocol};
//! use rtdb_cc::PcpDa;
//!
//! // Paper Example 3: T1 reads x,y; T2 writes x,y.
//! let set = SetBuilder::new()
//!     .with(TransactionTemplate::new("T1", 5, vec![
//!         Step::read(ItemId(0), 1), Step::read(ItemId(1), 1)]))
//!     .with(TransactionTemplate::new("T2", 10, vec![
//!         Step::write(ItemId(0), 1), Step::compute(2),
//!         Step::write(ItemId(1), 1), Step::compute(1)]))
//!     .build().unwrap();
//!
//! let t1 = InstanceId::first(TxnId(0));
//! let t2 = InstanceId::first(TxnId(1));
//! let mut view = rtdb_core::testkit::StaticView::new(&set);
//! let mut proto = PcpDa::new();
//!
//! // T2 write-locks x (LC1: nobody read-holds x).
//! let d = proto.request(&view, LockRequest { who: t2, item: ItemId(0), mode: LockMode::Write });
//! assert_eq!(d, Decision::Grant);
//! view.grant(t2, ItemId(0), LockMode::Write);
//!
//! // T1 read-locks x although T2 write-holds it (LC2: Sysceil is dummy).
//! let d = proto.request(&view, LockRequest { who: t1, item: ItemId(0), mode: LockMode::Read });
//! assert_eq!(d, Decision::Grant);
//! ```

#![forbid(unsafe_code)]

pub mod compat;
pub mod protocol;

pub use compat::{compatible, CompatInput};
pub use protocol::{GrantRule, PcpDa};
