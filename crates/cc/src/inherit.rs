//! Priority inheritance.
//!
//! "If a transaction blocks a higher priority transaction, its running
//! priority will inherit that of the higher priority transaction" (paper
//! §5). Inheritance is transitive: if `T_3` blocks `T_2` which blocks
//! `T_1`, `T_3` runs at `P_1`. A transaction returns to its original
//! priority when the blocking edge disappears (here: when the engine clears
//! the edge after a release re-evaluation).
//!
//! The tracker recomputes running priorities by fixpoint iteration over the
//! current blocking edges. The edge set is tiny (bounded by the number of
//! live instances), so the simple algorithm is both obviously correct and
//! fast enough.

use rtdb_types::{InstanceId, Priority};
use std::collections::BTreeMap;

/// Base priorities plus the current blocking edges, yielding running
/// priorities.
#[derive(Clone, Debug, Default)]
pub struct PriorityManager {
    base: BTreeMap<InstanceId, Priority>,
    /// blocked instance -> the instances blocking it.
    edges: BTreeMap<InstanceId, Vec<InstanceId>>,
    running: BTreeMap<InstanceId, Priority>,
}

impl PriorityManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a live instance with its original priority.
    pub fn register(&mut self, who: InstanceId, base: Priority) {
        self.base.insert(who, base);
        self.running.insert(who, base);
        self.recompute();
    }

    /// Remove a completed/aborted instance and any edges touching it.
    pub fn remove(&mut self, who: InstanceId) {
        self.base.remove(&who);
        self.running.remove(&who);
        self.edges.remove(&who);
        for blockers in self.edges.values_mut() {
            blockers.retain(|&b| b != who);
        }
        self.edges.retain(|_, blockers| !blockers.is_empty());
        self.recompute();
    }

    /// Record that `blocked` is currently blocked by `blockers`
    /// (replacing any previous edge for `blocked`).
    pub fn set_blocked(&mut self, blocked: InstanceId, blockers: Vec<InstanceId>) {
        debug_assert!(!blockers.contains(&blocked));
        self.edges.insert(blocked, blockers);
        self.recompute();
    }

    /// Clear `blocked`'s edge (its request was granted or re-evaluated).
    pub fn clear_blocked(&mut self, blocked: InstanceId) {
        if self.edges.remove(&blocked).is_some() {
            self.recompute();
        }
    }

    /// Original priority.
    ///
    /// # Panics
    /// Panics if `who` was never registered.
    pub fn base(&self, who: InstanceId) -> Priority {
        self.base[&who]
    }

    /// Current running priority (base joined with every priority inherited
    /// through the blocking edges, transitively).
    ///
    /// # Panics
    /// Panics if `who` was never registered.
    pub fn running(&self, who: InstanceId) -> Priority {
        self.running[&who]
    }

    /// The instances currently blocking `who`, if any.
    pub fn blockers_of(&self, who: InstanceId) -> Option<&[InstanceId]> {
        self.edges.get(&who).map(|v| v.as_slice())
    }

    /// True if `who` is currently marked blocked.
    pub fn is_blocked(&self, who: InstanceId) -> bool {
        self.edges.contains_key(&who)
    }

    /// All current blocking edges (blocked -> blockers), for the wait-for
    /// graph.
    pub fn edges(&self) -> &BTreeMap<InstanceId, Vec<InstanceId>> {
        &self.edges
    }

    /// Is anyone registered?
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    fn recompute(&mut self) {
        // Start from base priorities.
        for (who, base) in &self.base {
            self.running.insert(*who, *base);
        }
        // Propagate to fixpoint: each pass pushes the blocked instance's
        // running priority into its blockers. At most n passes are needed
        // (each pass extends the longest settled chain by one).
        let n = self.base.len();
        for _ in 0..n {
            let mut changed = false;
            for (blocked, blockers) in &self.edges {
                let Some(&p) = self.running.get(blocked) else {
                    continue;
                };
                for b in blockers {
                    if let Some(rb) = self.running.get_mut(b) {
                        if *rb < p {
                            *rb = p;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn mgr3() -> PriorityManager {
        let mut m = PriorityManager::new();
        m.register(i(0), Priority(3)); // T1, highest
        m.register(i(1), Priority(2));
        m.register(i(2), Priority(1));
        m
    }

    #[test]
    fn no_edges_means_base_priorities() {
        let m = mgr3();
        assert_eq!(m.running(i(0)), Priority(3));
        assert_eq!(m.running(i(2)), Priority(1));
        assert!(!m.is_blocked(i(2)));
    }

    #[test]
    fn direct_inheritance() {
        let mut m = mgr3();
        m.set_blocked(i(0), vec![i(2)]); // T3 blocks T1
        assert_eq!(m.running(i(2)), Priority(3));
        assert_eq!(m.base(i(2)), Priority(1));
        m.clear_blocked(i(0));
        assert_eq!(m.running(i(2)), Priority(1));
    }

    #[test]
    fn transitive_inheritance() {
        let mut m = mgr3();
        m.set_blocked(i(0), vec![i(1)]); // T2 blocks T1
        m.set_blocked(i(1), vec![i(2)]); // T3 blocks T2
        assert_eq!(m.running(i(1)), Priority(3));
        assert_eq!(m.running(i(2)), Priority(3)); // inherited through T2
    }

    #[test]
    fn inheritance_is_max_not_sum() {
        let mut m = mgr3();
        m.set_blocked(i(0), vec![i(2)]);
        m.set_blocked(i(1), vec![i(2)]); // T3 blocks both T1 and T2
        assert_eq!(m.running(i(2)), Priority(3));
    }

    #[test]
    fn higher_priority_blocker_is_unaffected() {
        let mut m = mgr3();
        m.set_blocked(i(2), vec![i(0)]); // T1 "blocks" T3 (conflict hold)
        assert_eq!(m.running(i(0)), Priority(3)); // no change
    }

    #[test]
    fn removal_clears_edges_and_restores() {
        let mut m = mgr3();
        m.set_blocked(i(0), vec![i(2)]);
        assert_eq!(m.running(i(2)), Priority(3));
        m.remove(i(0)); // the blocked transaction disappears
        assert_eq!(m.running(i(2)), Priority(1));
        assert!(m.edges().is_empty());
    }

    #[test]
    fn paper_example1_inheritance_chain() {
        // Example 1: T3 write-locks x; T2 blocked (ceiling) -> T3 inherits
        // P2; then T1 blocked (conflict) -> T3 inherits P1.
        let mut m = mgr3();
        m.set_blocked(i(1), vec![i(2)]);
        assert_eq!(m.running(i(2)), Priority(2));
        m.set_blocked(i(0), vec![i(2)]);
        assert_eq!(m.running(i(2)), Priority(3));
    }
}
