//! The protocol trait and the engine-side view it consults.

use crate::ceilings::CeilingTable;
use crate::locks::LockTable;
use rtdb_types::{InstanceId, ItemId, LockMode, Priority, TransactionSet};

/// How writes reach the committed store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateModel {
    /// Deferred updates: writes stay in the private workspace and are
    /// installed at commit (paper §4, the model PCP-DA assumes). Under
    /// strict locking this also faithfully emulates update-in-place for
    /// the 2PL/PCP/RW-PCP baselines.
    Workspace,
    /// Writes are installed the moment a write lock is *released early*
    /// (before commit). Only CCP needs this: it may unlock a written item
    /// before the transaction ends, and later readers must see the value.
    InstallOnEarlyRelease,
}

/// A sentinel instance that holds no locks — used as the "observer" when
/// computing the global system ceiling (every `Sysceil` computation
/// excludes the observer's own locks, and this observer has none).
pub fn ceiling_observer() -> InstanceId {
    InstanceId::new(rtdb_types::TxnId(u32::MAX), u32::MAX)
}

/// A lock request presented to a protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockRequest {
    /// Requesting instance.
    pub who: InstanceId,
    /// Item requested.
    pub item: ItemId,
    /// Mode requested.
    pub mode: LockMode,
}

/// A protocol's answer to a lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Grant the lock now.
    Grant,
    /// Deny; the requester blocks and `blockers` inherit its priority.
    /// `blockers` must be non-empty and must not contain the requester.
    Block {
        /// The instances responsible for the denial (the paper's blocking
        /// lower-priority transaction; possibly higher-priority conflict
        /// holders, for which inheritance is a no-op).
        blockers: Vec<InstanceId>,
    },
    /// Abort the listed holders, then grant (2PL-HP: the requester has
    /// higher priority than every victim). Victims restart from scratch.
    AbortHolders {
        /// Instances to abort; must not contain the requester.
        victims: Vec<InstanceId>,
    },
}

/// What a protocol may observe about the running system.
///
/// Implemented by the simulation engine; keeps protocols free of any
/// dependency on the engine's internals.
pub trait EngineView {
    /// The static transaction set.
    fn set(&self) -> &TransactionSet;
    /// The current lock table.
    fn locks(&self) -> &LockTable;
    /// Precomputed static ceilings and write sets.
    fn ceilings(&self) -> &CeilingTable;
    /// Original (base) priority of an instance.
    fn base_priority(&self, who: InstanceId) -> Priority;
    /// Current running priority (base joined with inherited).
    fn running_priority(&self, who: InstanceId) -> Priority;
    /// `DataRead(T)`: items the instance has read so far, sorted ascending.
    fn data_read(&self, who: InstanceId) -> &[ItemId];

    /// The lock request `who` is currently blocked on, if any. Lets a
    /// protocol reason about *why* a holder is stalled (PCP-DA's
    /// commit-order guard needs to know whether a higher-priority write
    /// holder is hard-blocked on the requester).
    fn pending_request(&self, who: InstanceId) -> Option<LockRequest>;

    /// All currently live (released, uncommitted) instances, sorted
    /// ascending by id.
    fn active_instances(&self) -> &[InstanceId];

    /// The items `who` has staged writes for (its actual, dynamic write
    /// set — used by optimistic validation), sorted ascending. Called only
    /// on the validation path, so an owned `Vec` is acceptable.
    fn staged_write_items(&self, who: InstanceId) -> Vec<ItemId>;
}

/// True if two ascending-sorted slices share no element — the slice
/// counterpart of `BTreeSet::is_disjoint`, used by protocols on the
/// [`EngineView::data_read`] / write-set slices.
pub fn sorted_disjoint<T: Ord>(a: &[T], b: &[T]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// A concurrency-control protocol.
///
/// A protocol is consulted on every lock request and notified of grants,
/// commits and aborts so it can maintain internal state (most protocols in
/// this workspace are stateless — everything they need lives in the
/// [`EngineView`]).
pub trait Protocol {
    /// Short stable name used in reports ("PCP-DA", "RW-PCP", ...).
    fn name(&self) -> &'static str;

    /// Decide a lock request. Must not mutate the lock table — the engine
    /// applies the decision.
    fn request(&mut self, view: &dyn EngineView, req: LockRequest) -> Decision;

    /// Notification: the request was granted and recorded.
    fn on_grant(&mut self, _view: &dyn EngineView, _req: LockRequest) {}

    /// Notification: `who` committed; its locks have been released.
    fn on_commit(&mut self, _view: &dyn EngineView, _who: InstanceId) {}

    /// Notification: `who` aborted; its locks have been released.
    fn on_abort(&mut self, _view: &dyn EngineView, _who: InstanceId) {}

    /// Called after `who` finished executing its `completed_step`-th step.
    /// Returns locks to release before commit (CCP's early unlock); the
    /// engine installs staged writes for early-released write locks when
    /// the update model is [`UpdateModel::InstallOnEarlyRelease`].
    fn early_releases(
        &mut self,
        _view: &dyn EngineView,
        _who: InstanceId,
        _completed_step: usize,
    ) -> Vec<(ItemId, LockMode)> {
        Vec::new()
    }

    /// The update model this protocol requires.
    fn update_model(&self) -> UpdateModel {
        UpdateModel::Workspace
    }

    /// The *global* system ceiling currently in effect (the paper's
    /// `Max_Sysceil`, the dotted line of Figures 4 and 5): the ceiling an
    /// arriving transaction that holds nothing would face. Protocols
    /// without a ceiling notion (2PL) report [`rtdb_types::Ceiling::Dummy`].
    fn system_ceiling(&self, _view: &dyn EngineView) -> rtdb_types::Ceiling {
        rtdb_types::Ceiling::Dummy
    }

    /// True if the protocol may abort transactions (2PL-HP, OCC).
    /// Protocols with this property invalidate the paper's schedulability
    /// analysis — the flag lets tests assert PCP-DA never aborts.
    fn may_abort(&self) -> bool {
        false
    }

    /// Called just before `who` commits: return the active instances this
    /// commit *invalidates* — they are aborted and restarted before the
    /// writes install (optimistic concurrency control with forward
    /// validation). Lock-based protocols never need this.
    fn commit_victims(&mut self, _view: &dyn EngineView, _who: InstanceId) -> Vec<InstanceId> {
        Vec::new()
    }
}

impl Decision {
    /// Convenience constructor that deduplicates and drops the requester
    /// from the blocker list, returning `Grant` if nothing remains —
    /// protocols use it to express "blocked by whoever holds these locks".
    pub fn block_on<I: IntoIterator<Item = InstanceId>>(who: InstanceId, blockers: I) -> Decision {
        let mut list: Vec<InstanceId> = blockers.into_iter().filter(|&b| b != who).collect();
        list.sort_unstable();
        list.dedup();
        assert!(
            !list.is_empty(),
            "a Block decision needs at least one blocker (requester {who})"
        );
        Decision::Block { blockers: list }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    #[test]
    fn block_on_dedupes_and_drops_requester() {
        let d = Decision::block_on(i(0), vec![i(1), i(0), i(1), i(2)]);
        assert_eq!(
            d,
            Decision::Block {
                blockers: vec![i(1), i(2)]
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least one blocker")]
    fn block_on_rejects_empty() {
        let _ = Decision::block_on(i(0), vec![i(0)]);
    }
}
