//! The PCP-DA locking conditions.

use rtdb_core::{Decision, EngineView, LockRequest, ProtocolFor, SysCeil};
use rtdb_types::{Ceiling, InstanceId, ItemId, LockMode};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Per-version `Sysceil` memo (see [`PcpDa::cached_sysceil`]).
#[derive(Debug, Default)]
struct SysceilMemo {
    /// Lock-table version the cached entries were computed at.
    version: u64,
    by_holder: BTreeMap<InstanceId, Arc<SysCeil>>,
}

/// True if a sorted item slice (an [`EngineView::data_read`] view) shares
/// no element with a write set.
#[inline]
fn disjoint(items: &[ItemId], set: &BTreeSet<ItemId>) -> bool {
    !items.iter().any(|i| set.contains(i))
}

/// Which locking condition granted a request — exposed for tracing and for
/// the paper's worked examples, whose narratives name the conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrantRule {
    /// Write lock, no foreign read lock on the item.
    Lc1,
    /// Read lock, `P_i > Sysceil_i`.
    Lc2,
    /// Read lock, `P_i > HPW(x)` and `x ∉ WriteSet(T*)`.
    Lc3,
    /// Read lock, `P_i = HPW(x)`, `No_Rlock(x)`, `x ∉ WriteSet(T*)`,
    /// `DataRead(T*) ∩ WriteSet(T_i) = ∅`.
    Lc4,
}

/// The PCP-DA protocol. Stateless — every input it needs is in the
/// [`EngineView`] — except for a trace of which rule granted the most
/// recent requests (useful to assert the paper's example narratives).
///
/// # Errata repaired by the default constructor
///
/// Randomized testing against this repository's serializability and
/// wait-for oracles showed that the locking conditions **as literally
/// printed** violate Theorems 1–3 on reachable schedules (concrete
/// counterexamples live in `tests/theorem2_counterexample.rs` and are
/// discussed in EXPERIMENTS.md). [`PcpDa::new`] adds four minimal
/// clauses; [`PcpDa::paper_literal`] keeps the printed rules so the
/// counterexamples can be demonstrated. Every worked example of the
/// paper behaves identically under both.
///
/// * **(A) LC3 side condition** — LC3 additionally requires
///   `DataRead(T*) ∩ WriteSet(T_i) = ∅` (the clause the paper already
///   uses in LC4) whenever the requested lock could actually
///   ceiling-block `T*` (`Wceil(x) ≥ P_{T*}`). The paper argues the
///   clause is implied; the implication is sound for LC2 (an item of
///   `WriteSet(T_i)` carries `Wceil ≥ P_i`, so its read lock would defeat
///   `P_i > Sysceil`) but not for LC3, and without it `T_i` can
///   conflict-block behind `T*` while its new read lock ceiling-blocks
///   `T*` — a deadlock. (The `Wceil(x) ≥ P_{T*}` qualifier matters in the
///   other direction: denying a *harmless* low-ceiling read would leave
///   `T_i` unable to reach the hard-block state guard (D) recognises,
///   creating the very cycle the clause exists to prevent.)
/// * **(B) future-read safety** — LC3/LC4 additionally require every
///   yet-unread item of `T_i`'s static read set to carry `Wceil ≤ P_i`.
///   Otherwise a later read by `T_i` cannot clear LC3/LC4's priority
///   test while `T*`'s standing read locks pin `Sysceil ≥ P_i`, so `T_i`
///   blocks on `T*` — with the same circular-wait consequence, in a
///   read-read flavour the paper's Lemma 8 does not consider.
/// * **(C) write-lock guard** — when `T_i`'s future reads are *not*
///   clause-(B) safe (it may later ceiling-block on a holder), LC1 must
///   not hand it a write lock on an item that a standing ceiling holder
///   still needs to read: the holder's future read would wait on the
///   write lock (see (D)) while `T_i` waits on the holder's ceilings.
///   This qualifies the paper's Lemma 1 ("write locks block nobody"),
///   which holds for higher-priority requesters only.
/// * **(D) commit-order guard** — a read of an item write-locked by a
///   *higher-base-priority* transaction is blocked unless that holder is
///   hard-blocked on the requester (its pending request provably stays
///   denied until the requester commits: a pending write against the
///   requester's read lock; or a pending read whose LC2 is pinned by the
///   requester's ceiling locks while LC3/LC4 are pinned either statically
///   (`P_holder < HPW(v)`) or by clause (A) through the requester
///   itself). Table 1's `W/R = OK*` cell silently assumes the requester
///   outranks the holder; a lower-priority reader cannot otherwise be
///   guaranteed to commit first, and the holder's earlier commit would
///   invalidate the read — breaking Lemma 9 and Theorem 3's commit-order
///   serialization.
#[derive(Debug, Default)]
pub struct PcpDa {
    /// `(request, rule)` log of grants, in order.
    grant_log: Vec<(LockRequest, GrantRule)>,
    /// Skip the LC3 side condition (the paper's literal text).
    literal_lc3: bool,
    /// `Sysceil` values memoized against the lock-table version: one
    /// scheduler round decides many requests (and probes
    /// `hard_blocked_on` once per offending writer) against an unchanged
    /// table, so repeated queries for the same instance hit the cache.
    /// Assumes one protocol instance per run, i.e. a fixed lock table —
    /// which is how the engine (and every test) uses protocols.
    sysceil_memo: RefCell<SysceilMemo>,
}

impl PcpDa {
    /// PCP-DA with the erratum clauses (A)–(D) — deadlock-free and
    /// serializable on every workload this repository's property tests
    /// have thrown at it.
    pub fn new() -> Self {
        Self::default()
    }

    /// PCP-DA with the locking conditions exactly as the paper prints
    /// them — subject to the Theorem 1–3 counterexamples. Only for
    /// demonstrating the errata.
    pub fn paper_literal() -> Self {
        PcpDa {
            literal_lc3: true,
            ..Self::default()
        }
    }

    /// The grant log `(request, rule)` accumulated so far.
    pub fn grant_log(&self) -> &[(LockRequest, GrantRule)] {
        &self.grant_log
    }

    /// `Sysceil_who`, memoized against [`rtdb_core::LockTable::version`].
    /// The version bumps on every grant/release transition, so a stale
    /// entry can never be served; within one scheduler round (version
    /// unchanged) each instance's `Sysceil` is computed at most once no
    /// matter how many `hard_blocked_on` probes ask for it.
    fn cached_sysceil<V: EngineView + ?Sized>(&self, view: &V, who: InstanceId) -> Arc<SysCeil> {
        let version = view.locks().version();
        let mut memo = self.sysceil_memo.borrow_mut();
        if memo.version != version {
            memo.version = version;
            memo.by_holder.clear();
        }
        if let Some(hit) = memo.by_holder.get(&who) {
            return Arc::clone(hit);
        }
        let sys = Arc::new(view.ceilings().pcpda_sysceil(view.locks(), who));
        memo.by_holder.insert(who, Arc::clone(&sys));
        sys
    }

    /// True if `holder`'s pending lock request is guaranteed to stay
    /// denied until `me` commits — so `holder`, despite its higher
    /// priority, commits after `me`. Two shapes qualify (locks are held to
    /// commit, so a denial caused by a lock `me` holds cannot clear
    /// earlier):
    ///
    /// * a pending **write** of an item `me` read-holds (LC1 denies it
    ///   outright while any foreign read lock exists);
    /// * a pending **read** of an item `v` with `P_holder < HPW(v)` — LC3
    ///   and LC4 are then *statically* impossible for the holder — while
    ///   `me` read-holds some item `m` with `Wceil(m) ≥ P_holder`, pinning
    ///   the holder's LC2 false (`Sysceil_holder ≥ Wceil(m)` until `me`
    ///   commits).
    fn hard_blocked_on<V: EngineView + ?Sized>(
        &self,
        view: &V,
        holder: InstanceId,
        me: InstanceId,
    ) -> bool {
        let Some(pending) = view.pending_request(holder) else {
            return false;
        };
        match pending.mode {
            LockMode::Write => view.locks().holds(me, pending.item, LockMode::Read),
            LockMode::Read => {
                let p_holder = view.base_priority(holder);
                // LC2 must be pinned false by a read lock `me` holds.
                let lc2_pinned = view.locks().held_by(me).any(|l| {
                    l.mode == LockMode::Read && !view.ceilings().wceil(l.item).cleared_by(p_holder)
                });
                if !lc2_pinned {
                    return false;
                }
                // LC3/LC4 must be pinned false too. Two recognised pins:
                // (i) statically impossible: `P_holder < HPW(v)`;
                // (ii) clause (A) pins it through `me`: `me` attains the
                //     holder's Sysceil, has read something the holder may
                //     write, and the pending item's ceiling reaches `me`'s
                //     priority (so the refined clause (A) actually bites) —
                //     all facts that persist until `me` commits.
                let lc34_impossible = match view.ceilings().wceil(pending.item) {
                    Ceiling::At(h) => p_holder < h,
                    Ceiling::Dummy => false,
                };
                if lc34_impossible {
                    return true;
                }
                let sys = self.cached_sysceil(view, holder);
                let me_is_tstar = sys.holders.contains(&me);
                let a_pins = me_is_tstar
                    && !view
                        .ceilings()
                        .wceil(pending.item)
                        .cleared_by(view.base_priority(me))
                    && !disjoint(view.data_read(me), view.ceilings().write_set(holder.txn));
                a_pins
            }
        }
    }

    /// Decide a request and also report which rule granted it.
    pub fn decide<V: EngineView + ?Sized>(
        &self,
        view: &V,
        req: LockRequest,
    ) -> Result<GrantRule, Decision> {
        let locks = view.locks();
        let ceilings = view.ceilings();
        let p_i = view.base_priority(req.who);

        // Erratum clause (B) (see the type-level docs): T_i's reads that
        // are still to come can always clear LC3/LC4 — i.e. every
        // yet-unlocked item `w` in the static read set (i) carries
        // `Wceil(w) ≤ P_i` (the priority part of LC3/LC4 passes) and
        // (ii) is not in the write set of any transaction currently
        // holding a read lock whose ceiling reaches P_i (those holders
        // are the `T*` candidates T_i would face, and `w ∈ WriteSet(T*)`
        // pins LC3/LC4 false for as long as they hold). A transaction
        // with this property can never ceiling-block on a standing
        // holder once its current request is granted, which both LC3/LC4
        // (for reads) and the clause-(C) write guard rely on.
        let ceiling_holders: BTreeSet<InstanceId> = locks
            .read_locked_by_others(req.who)
            .filter(|(item, _)| !ceilings.wceil(*item).cleared_by(p_i))
            .flat_map(|(_, holders)| holders)
            .collect();
        let future_reads_safe = view
            .set()
            .template(req.who.txn)
            .read_set()
            .iter()
            .filter(|&&w| !locks.holds(req.who, w, LockMode::Read))
            .filter(|&&w| !(req.mode == LockMode::Read && w == req.item))
            .all(|&w| {
                Ceiling::At(p_i) >= ceilings.wceil(w)
                    && ceiling_holders
                        .iter()
                        .all(|h| !ceilings.may_write(h.txn, w))
            });

        match req.mode {
            LockMode::Write => {
                // LC1: x must not be read-locked by any other transaction.
                // Existing write locks do not matter: blind writes are
                // non-conflicting under deferred updates (§4.1, Case 3).
                if !locks.no_rlock_by_others(req.item, req.who) {
                    return Err(Decision::block_on(
                        req.who,
                        locks.readers_other_than(req.item, req.who),
                    ));
                }
                // Erratum clause (C): while some lower-layer transaction
                // holds read locks whose ceiling reaches P_i (so T_i may
                // later ceiling-block on it), T_i must not write-lock an
                // item that holder may still READ: the holder's future
                // read would wait on this write lock while T_i waits on
                // the holder's ceilings — a circular wait the paper's
                // Lemma 1 ("write locks block nobody") overlooks, since a
                // write lock does block *lower-priority* readers (they
                // cannot be guaranteed to commit first; see the
                // commit-order guard).
                // The guard is needed only when T_i itself may later
                // ceiling-block on the holder (its future reads are not
                // clause-(B) safe); a transaction that can never block on
                // lower-priority holders closes no cycle, and denying it
                // here would itself create one (observed on a self-upgrade
                // of a read lock to a write lock).
                if !self.literal_lc3 && !future_reads_safe {
                    let mut risky: BTreeSet<InstanceId> = BTreeSet::new();
                    for (item, holders) in locks.read_locked_by_others(req.who) {
                        if !ceilings.wceil(item).cleared_by(p_i) {
                            risky.extend(holders.filter(|h| {
                                view.set().template(h.txn).read_set().contains(&req.item)
                            }));
                        }
                    }
                    if !risky.is_empty() {
                        return Err(Decision::block_on(req.who, risky));
                    }
                }
                Ok(GrantRule::Lc1)
            }
            LockMode::Read => {
                let sys = self.cached_sysceil(view, req.who);

                // Commit-order guard (second erratum, see the type-level
                // docs): a read of `x` serializes the reader *before*
                // every current write-holder of `x`, so each such holder
                // must be guaranteed to commit after the reader. A
                // lower-priority holder is preempted by scheduling; a
                // HIGHER-priority holder provides that guarantee only if
                // it is hard-blocked on the requester (its pending write
                // request conflicts with a read lock the requester holds —
                // a block that cannot clear before the requester commits).
                // Only LC2 can encounter a higher-priority write-holder:
                // LC3/LC4 bound `P_i` against `HPW(x)`, which dominates
                // every writer of `x`.
                let offending_higher_writers: Vec<InstanceId> = if self.literal_lc3 {
                    Vec::new()
                } else {
                    locks
                        .writers_other_than(req.item, req.who)
                        .filter(|&w| view.base_priority(w) > p_i)
                        .filter(|&w| !self.hard_blocked_on(view, w, req.who))
                        .collect()
                };

                // LC2: P_i > Sysceil_i.
                if sys.ceiling.cleared_by(p_i) {
                    if offending_higher_writers.is_empty() {
                        self.assert_wr_preemption_safe(view, req);
                        return Ok(GrantRule::Lc2);
                    }
                    return Err(Decision::block_on(req.who, offending_higher_writers));
                }

                // T*: holder(s) of the read-locked item(s) at Sysceil.
                // Lemma 6 proves the *lower-priority* holder is unique;
                // we treat the whole set conservatively.
                let tstar = &sys.holders;
                let tstar_may_write_x = tstar.iter().any(|t| ceilings.may_write(t.txn, req.item));

                let hpw = ceilings.wceil(req.item);
                let my_writes = ceilings.write_set(req.who.txn);
                // Erratum clause (A) (see the type-level docs): T* must
                // not have read anything T_i may later write, otherwise
                // T_i will conflict-block behind T* (Case 2) while its
                // read locks ceiling-block T* — a deadlock. The clause
                // only bites when the requested lock could actually
                // ceiling-block T* (`Wceil(x) ≥ P_{T*}`): a lock whose
                // ceiling lies below T*'s priority can block nobody in
                // T*, and T_i's eventual Case-2 wait behind T* is then an
                // ordinary hard block the commit-order guard recognises.
                let tstar_clean = tstar.iter().all(|t| {
                    ceilings.wceil(req.item).cleared_by(view.base_priority(*t))
                        || disjoint(view.data_read(*t), my_writes)
                });
                // LC3: P_i > HPW(x) and x ∉ WriteSet(T*)
                // (+ the erratum clauses unless running literal).
                if hpw.cleared_by(p_i)
                    && !tstar_may_write_x
                    && (self.literal_lc3 || (tstar_clean && future_reads_safe))
                {
                    self.assert_wr_preemption_safe(view, req);
                    return Ok(GrantRule::Lc3);
                }

                // LC4: P_i = HPW(x) and No_Rlock(x) and x ∉ WriteSet(T*)
                // and DataRead(T*) ∩ WriteSet(T_i) = ∅. The last clause is
                // Table 1's side condition — T_i is itself the top-priority
                // writer of x, so nothing structural guarantees it, and it
                // must be checked explicitly (paper §5). We check it
                // against T* and against every current write-holder of x
                // (the transactions whose commit could invalidate reads).
                if hpw == Ceiling::At(p_i)
                    && locks.no_rlock_by_others(req.item, req.who)
                    && !tstar_may_write_x
                    && (self.literal_lc3 || future_reads_safe)
                {
                    let holders_clean = locks
                        .writers_other_than(req.item, req.who)
                        .all(|w| disjoint(view.data_read(w), my_writes));
                    if tstar_clean && holders_clean {
                        return Ok(GrantRule::Lc4);
                    }
                }

                // Denied. Per Lemma 4 the transactions able to block T_i
                // are exactly those holding a read lock on an item y with
                // Wceil(y) >= P_i; add any write-holder of x whose
                // DataRead intersects WriteSet(T_i) (the LC4 side
                // condition) so inheritance reaches it too.
                let mut blockers: BTreeSet<InstanceId> = BTreeSet::new();
                for (item, holders) in locks.read_locked_by_others(req.who) {
                    if !ceilings.wceil(item).cleared_by(p_i) {
                        // Wceil(item) >= P_i
                        blockers.extend(holders);
                    }
                }
                let my_writes = ceilings.write_set(req.who.txn);
                for w in locks.writers_other_than(req.item, req.who) {
                    if !disjoint(view.data_read(w), my_writes) {
                        blockers.insert(w);
                    }
                }
                blockers.extend(offending_higher_writers);
                debug_assert!(
                    !blockers.is_empty(),
                    "PCP-DA denied {:?} with no identifiable blocker",
                    req
                );
                Err(Decision::block_on(req.who, blockers))
            }
        }
    }

    /// Lemma-derived safety check (debug builds only): when a read of a
    /// write-held item is granted through LC2/LC3, every write-holder of
    /// the item must satisfy `DataRead(holder) ∩ WriteSet(T_i) = ∅`. The
    /// paper proves this holds structurally (the intersection items would
    /// carry `Wceil ≥ P_i`, contradicting LC2/LC3 via Lemma 5); a failure
    /// here would mean the implementation diverged from the theory.
    fn assert_wr_preemption_safe<V: EngineView + ?Sized>(&self, view: &V, req: LockRequest) {
        if cfg!(debug_assertions) {
            let my_writes = view.ceilings().write_set(req.who.txn);
            for w in view.locks().writers_other_than(req.item, req.who) {
                debug_assert!(
                    disjoint(view.data_read(w), my_writes),
                    "Lemma 5/9 violation: {} read-set intersects {} write-set on grant of {:?}",
                    w,
                    req.who,
                    req
                );
            }
        }
    }
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for PcpDa {
    fn name(&self) -> &'static str {
        if self.literal_lc3 {
            "PCP-DA-literal"
        } else {
            "PCP-DA"
        }
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        match self.decide(view, req) {
            Ok(rule) => {
                self.grant_log.push((req, rule));
                Decision::Grant
            }
            Err(block) => block,
        }
    }

    fn system_ceiling(&self, view: &V) -> rtdb_types::Ceiling {
        view.ceilings()
            .pcpda_sysceil(view.locks(), rtdb_core::protocol::ceiling_observer())
            .ceiling
    }

    fn may_deadlock(&self) -> bool {
        // The printed rules are subject to the Theorem 2 counterexample;
        // the repaired clauses (A)-(D) restore deadlock freedom.
        self.literal_lc3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_core::testkit::StaticView;
    use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate, TxnId};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn req(who: InstanceId, item: u32, mode: LockMode) -> LockRequest {
        LockRequest {
            who,
            item: ItemId(item),
            mode,
        }
    }

    /// Example 3 set: T1: R(x),R(y); T2: W(x),W(y).
    fn example3() -> rtdb_types::TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                5,
                vec![Step::read(ItemId(0), 1), Step::read(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![
                    Step::write(ItemId(0), 1),
                    Step::compute(2),
                    Step::write(ItemId(1), 1),
                    Step::compute(1),
                ],
            ))
            .build()
            .unwrap()
    }

    /// Example 4 set: T1: R(x); T2: W(y); T3: R(z),W(z); T4: R(y),W(x).
    fn example4() -> rtdb_types::TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                30,
                vec![Step::read(ItemId(0), 2)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                30,
                vec![Step::write(ItemId(1), 2)],
            ))
            .with(TransactionTemplate::new(
                "T3",
                30,
                vec![Step::read(ItemId(2), 1), Step::write(ItemId(2), 1)],
            ))
            .with(TransactionTemplate::new(
                "T4",
                30,
                vec![
                    Step::read(ItemId(1), 1),
                    Step::write(ItemId(0), 1),
                    Step::compute(3),
                ],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn lc1_grants_write_on_unread_item() {
        let set = example3();
        let view = StaticView::new(&set);
        let p = PcpDa::new();
        assert_eq!(
            p.decide(&view, req(i(1), 0, LockMode::Write)),
            Ok(GrantRule::Lc1)
        );
    }

    #[test]
    fn lc1_allows_concurrent_blind_writes() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                10,
                vec![Step::write(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                10,
                vec![Step::write(ItemId(0), 1)],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        view.grant(i(0), ItemId(0), LockMode::Write);
        let p = PcpDa::new();
        // Second blind write on the same item is granted (Case 3).
        assert_eq!(
            p.decide(&view, req(i(1), 0, LockMode::Write)),
            Ok(GrantRule::Lc1)
        );
    }

    #[test]
    fn lc1_blocks_write_on_foreign_read_lock() {
        let set = example3();
        let mut view = StaticView::new(&set);
        view.grant(i(0), ItemId(0), LockMode::Read);
        view.record_read(i(0), ItemId(0));
        let p = PcpDa::new();
        let d = p.decide(&view, req(i(1), 0, LockMode::Write)).unwrap_err();
        assert_eq!(
            d,
            Decision::Block {
                blockers: vec![i(0)]
            }
        );
    }

    #[test]
    fn lc1_ignores_own_read_lock_for_upgrade() {
        let set = example4();
        let mut view = StaticView::new(&set);
        // T3 read-locks z, then upgrades to write (Example 4, time 2).
        view.grant(i(2), ItemId(2), LockMode::Read);
        view.record_read(i(2), ItemId(2));
        let p = PcpDa::new();
        assert_eq!(
            p.decide(&view, req(i(2), 2, LockMode::Write)),
            Ok(GrantRule::Lc1)
        );
    }

    #[test]
    fn lc2_grants_read_over_write_lock() {
        // Example 3, time 1: T2 write-holds x; Sysceil is dummy (write
        // locks raise no ceiling); T1 reads x via LC2.
        let set = example3();
        let mut view = StaticView::new(&set);
        view.grant(i(1), ItemId(0), LockMode::Write);
        let p = PcpDa::new();
        assert_eq!(
            p.decide(&view, req(i(0), 0, LockMode::Read)),
            Ok(GrantRule::Lc2)
        );
    }

    #[test]
    fn lc4_grants_top_writer_read_as_in_example4() {
        // Example 4, time 1: T4 read-holds y (Wceil(y)=P2 >= P3), T3
        // requests read z. LC2 false; LC4: P3 = HPW(z), z unread, z not in
        // WriteSet(T4), DataRead(T4)={y} disjoint from WriteSet(T3)={z}.
        let set = example4();
        let mut view = StaticView::new(&set);
        view.grant(i(3), ItemId(1), LockMode::Read);
        view.record_read(i(3), ItemId(1));
        let p = PcpDa::new();
        assert_eq!(
            p.decide(&view, req(i(2), 2, LockMode::Read)),
            Ok(GrantRule::Lc4)
        );
    }

    #[test]
    fn lc3_grants_read_above_all_writers() {
        // Example 4, time 4 analog: T4 read-holds y; T1 requests read x.
        // Actually LC2 already grants (P1 > Wceil(y)=P2); force the LC3
        // path with T2's perspective on z is impossible (T2 doesn't read).
        // Use a bespoke set: A: R(a); B: R(b); C: W(a),R(b)... simpler:
        // requester priority above HPW(x) but not above Sysceil.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                10,
                vec![Step::write(ItemId(9), 1)],
            )) // highest, writes w
            .with(TransactionTemplate::new(
                "M",
                10,
                vec![Step::read(ItemId(0), 1)], // reads x
            ))
            .with(TransactionTemplate::new(
                "L",
                10,
                vec![Step::read(ItemId(9), 1), Step::write(ItemId(0), 1)], // reads w (Wceil=P_H), writes x
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        // L read-locks w: Sysceil = Wceil(w) = P_H >= P_M -> LC2 false for M.
        view.grant(i(2), ItemId(9), LockMode::Read);
        view.record_read(i(2), ItemId(9));
        let p = PcpDa::new();
        // M requests read x: HPW(x) = P_L < P_M, and x IS in WriteSet(L)=T*.
        // -> LC3 fails on the T* clause; M must block on L.
        let d = p.decide(&view, req(i(1), 0, LockMode::Read)).unwrap_err();
        assert_eq!(
            d,
            Decision::Block {
                blockers: vec![i(2)]
            }
        );

        // Variant: T* does not write x -> LC3 grants.
        let set2 = SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                10,
                vec![Step::write(ItemId(9), 1)],
            ))
            .with(TransactionTemplate::new(
                "M",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "L",
                10,
                vec![Step::read(ItemId(9), 1), Step::write(ItemId(5), 1)],
            ))
            .with(TransactionTemplate::new(
                "L2",
                10,
                vec![Step::write(ItemId(0), 1)], // some lower writer of x so HPW(x) defined
            ))
            .build()
            .unwrap();
        let mut view2 = StaticView::new(&set2);
        view2.grant(i(2), ItemId(9), LockMode::Read);
        view2.record_read(i(2), ItemId(9));
        let p2 = PcpDa::new();
        assert_eq!(
            p2.decide(&view2, req(i(1), 0, LockMode::Read)),
            Ok(GrantRule::Lc3)
        );
    }

    #[test]
    fn lc4_rejected_when_tstar_read_intersects_writeset() {
        // Example 5's protection: T_H: R(y),W(x); T_L: R(x),W(y).
        // T_L read-locks x first. T_H requests read y:
        //   LC2: Sysceil = Wceil(x) = P_H (T_H writes x) -> not cleared.
        //   LC3: HPW(y) = P_L < P_H but DataRead(T*)={x} ∩ WriteSet(T_H)={x} ≠ ∅...
        //        LC3's own clause: y ∉ WriteSet(T_L)? y IS in WriteSet(T_L) -> LC3 false.
        //   LC4: P_H ≠ HPW(y) = P_L -> false.
        // => blocked; blocker is T_L.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "TH",
                10,
                vec![Step::read(ItemId(1), 1), Step::write(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "TL",
                10,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        view.grant(i(1), ItemId(0), LockMode::Read);
        view.record_read(i(1), ItemId(0));
        let p = PcpDa::new();
        let d = p.decide(&view, req(i(0), 1, LockMode::Read)).unwrap_err();
        assert_eq!(
            d,
            Decision::Block {
                blockers: vec![i(1)]
            }
        );
    }

    #[test]
    fn read_blocked_by_ceiling_names_tstar_as_blocker() {
        // Lower-priority transaction requests a read while a ceiling at or
        // above its priority is held by another low transaction.
        let set = example4();
        let mut view = StaticView::new(&set);
        // T4 read-locks y (Wceil(y) = P2).
        view.grant(i(3), ItemId(1), LockMode::Read);
        view.record_read(i(3), ItemId(1));
        let p = PcpDa::new();
        // T3 requests read of y itself: LC2 false (P3 < P2), LC3 false
        // (HPW(y)=P2 > P3), LC4 false (P3 != P2). Blocked by T4.
        let d = p.decide(&view, req(i(2), 1, LockMode::Read)).unwrap_err();
        assert_eq!(
            d,
            Decision::Block {
                blockers: vec![i(3)]
            }
        );
    }

    #[test]
    fn clause_b_denies_lc3_when_future_read_has_high_ceiling() {
        // M requests read of m (HPW(m) < P_M, so literal LC3 grants), but
        // M will later read `big` whose Wceil exceeds P_M: while T* holds
        // its ceiling, M's future read could only wait on T* — clause (B)
        // blocks M up front instead.
        // H writes `big` (Wceil(big) = P_H); M reads m then big; W is the
        // only writer of m (HPW(m) = P_W < P_M); L read-holds big, making
        // it the standing ceiling holder.
        let set2 = SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                10,
                vec![Step::write(ItemId(3), 1)],
            ))
            .with(TransactionTemplate::new(
                "M",
                10,
                vec![Step::read(ItemId(2), 1), Step::read(ItemId(3), 1)],
            ))
            .with(TransactionTemplate::new(
                "W",
                10,
                vec![Step::write(ItemId(2), 1)],
            ))
            .with(TransactionTemplate::new(
                "L",
                10,
                vec![Step::read(ItemId(3), 1)],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set2);
        let l = i(3);
        view.grant(l, ItemId(3), LockMode::Read); // L read-holds big: Sysceil = P_H
        view.record_read(l, ItemId(3));
        let p = PcpDa::new();
        // LC2 fails (Sysceil = P_H > P_M); literal LC3 would grant R(m)
        // (P_M > HPW(m), m not in WriteSet(L)); clause (B) denies because
        // M's future read `big` has Wceil = P_H > P_M.
        let d = p.decide(&view, req(i(1), 2, LockMode::Read)).unwrap_err();
        assert_eq!(d, Decision::Block { blockers: vec![l] });
        // The literal protocol indeed grants here.
        let literal = PcpDa::paper_literal();
        assert_eq!(
            literal.decide(&view, req(i(1), 2, LockMode::Read)),
            Ok(GrantRule::Lc3)
        );
    }

    #[test]
    fn clause_c_write_guard_fires_only_with_unsafe_future_reads() {
        // T* (= L) read-holds `hot` (Wceil >= P_M) and will later read y.
        // M wants to write y.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                10,
                vec![Step::write(ItemId(0), 1)],
            )) // Wceil(hot)=P_H
            .with(TransactionTemplate::new(
                "M-unsafe",
                10,
                vec![Step::write(ItemId(1), 1), Step::read(ItemId(0), 1)], // W(y), R(hot): future read unsafe
            ))
            .with(TransactionTemplate::new(
                "M-safe",
                10,
                vec![Step::write(ItemId(1), 1), Step::compute(1)], // W(y) only
            ))
            .with(TransactionTemplate::new(
                "L",
                10,
                vec![Step::read(ItemId(0), 1), Step::read(ItemId(1), 1)], // R(hot), R(y)
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        let l = i(3);
        view.grant(l, ItemId(0), LockMode::Read);
        view.record_read(l, ItemId(0));
        let p = PcpDa::new();
        // M-unsafe's future read of `hot` cannot clear LC3 while L holds
        // it -> clause (C) blocks the write of y (y in L's read set).
        let d = p.decide(&view, req(i(1), 1, LockMode::Write)).unwrap_err();
        assert_eq!(d, Decision::Block { blockers: vec![l] });
        // M-safe has no future reads -> LC1 grants the same write.
        assert_eq!(
            p.decide(&view, req(i(2), 1, LockMode::Write)),
            Ok(GrantRule::Lc1)
        );
    }

    #[test]
    fn clause_d_read_over_higher_writer_needs_hard_block() {
        // W (higher) write-holds x; L (lower) wants to read x.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "W",
                10,
                vec![Step::write(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "L",
                10,
                vec![
                    Step::read(ItemId(1), 1),
                    Step::read(ItemId(0), 1),
                    Step::compute(1),
                ],
            ))
            .build()
            .unwrap();
        let mut view = StaticView::new(&set);
        let (w, l) = (i(0), i(1));
        view.grant(w, ItemId(0), LockMode::Write);
        let p = PcpDa::new();
        // W is running (not blocked): L's read of x is denied — W would
        // commit first and invalidate it.
        let d = p.decide(&view, req(l, 0, LockMode::Read)).unwrap_err();
        assert_eq!(d, Decision::Block { blockers: vec![w] });

        // Now W is hard-blocked on L: W's pending write of y conflicts
        // with L's read lock on y. L's read of x becomes safe.
        view.grant(l, ItemId(1), LockMode::Read);
        view.record_read(l, ItemId(1));
        view.set_pending(
            w,
            LockRequest {
                who: w,
                item: ItemId(1),
                mode: LockMode::Write,
            },
        );
        assert_eq!(
            p.decide(&view, req(l, 0, LockMode::Read)),
            Ok(GrantRule::Lc2)
        );
    }

    #[test]
    fn grant_log_records_rules() {
        let set = example3();
        let mut view = StaticView::new(&set);
        let mut p = PcpDa::new();
        let r = req(i(1), 0, LockMode::Write);
        assert_eq!(p.request(&view, r), Decision::Grant);
        view.grant(i(1), ItemId(0), LockMode::Write);
        let r2 = req(i(0), 0, LockMode::Read);
        assert_eq!(p.request(&view, r2), Decision::Grant);
        assert_eq!(p.grant_log(), &[(r, GrantRule::Lc1), (r2, GrantRule::Lc2)]);
        let p_dyn: &dyn rtdb_core::Protocol = &p;
        assert_eq!(p_dyn.name(), "PCP-DA");
        assert!(!p_dyn.may_abort());
        assert!(!p_dyn.may_deadlock());
    }

    #[test]
    fn literal_variant_names_itself_and_admits_deadlock() {
        let p = PcpDa::paper_literal();
        let p_dyn: &dyn rtdb_core::Protocol = &p;
        assert_eq!(p_dyn.name(), "PCP-DA-literal");
        assert!(p_dyn.may_deadlock());
    }
}
