//! The lock table.
//!
//! Tracks, per item, the set of read holders and the set of write holders.
//! Unusually for a lock manager, *several* concurrent write holders are
//! representable: under PCP-DA's deferred-update model two blind writes do
//! not conflict (paper §4.1, Case 3), so LC1 admits a write lock regardless
//! of existing write locks. Protocols that forbid this (2PL, RW-PCP, PCP)
//! simply never grant the second write lock.
//!
//! The table is pure bookkeeping: *who may lock what* is decided by a
//! [`crate::Protocol`]; the engine records grants and releases here.

use rtdb_types::{InstanceId, ItemId, LockMode};
use std::collections::{BTreeMap, BTreeSet};

/// One lock held by an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct HeldLock {
    /// Locked item.
    pub item: ItemId,
    /// Mode held.
    pub mode: LockMode,
}

#[derive(Clone, Debug, Default)]
struct ItemLocks {
    readers: BTreeSet<InstanceId>,
    writers: BTreeSet<InstanceId>,
}

impl ItemLocks {
    fn is_empty(&self) -> bool {
        self.readers.is_empty() && self.writers.is_empty()
    }
}

/// The lock table of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    items: BTreeMap<ItemId, ItemLocks>,
    // Reverse index: instance -> its held locks.
    held: BTreeMap<InstanceId, BTreeSet<HeldLock>>,
}

impl LockTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a granted lock. Granting a mode already held is a no-op
    /// (idempotent), so upgrades just add the second mode.
    pub fn grant(&mut self, who: InstanceId, item: ItemId, mode: LockMode) {
        let locks = self.items.entry(item).or_default();
        match mode {
            LockMode::Read => locks.readers.insert(who),
            LockMode::Write => locks.writers.insert(who),
        };
        self.held
            .entry(who)
            .or_default()
            .insert(HeldLock { item, mode });
    }

    /// Release one lock (CCP's early unlock). No-op if not held.
    pub fn release(&mut self, who: InstanceId, item: ItemId, mode: LockMode) {
        if let Some(locks) = self.items.get_mut(&item) {
            match mode {
                LockMode::Read => locks.readers.remove(&who),
                LockMode::Write => locks.writers.remove(&who),
            };
            if locks.is_empty() {
                self.items.remove(&item);
            }
        }
        if let Some(held) = self.held.get_mut(&who) {
            held.remove(&HeldLock { item, mode });
            if held.is_empty() {
                self.held.remove(&who);
            }
        }
    }

    /// Release every lock held by `who` (commit or abort); returns them.
    pub fn release_all(&mut self, who: InstanceId) -> Vec<HeldLock> {
        let held: Vec<HeldLock> = self
            .held
            .remove(&who)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for lock in &held {
            if let Some(locks) = self.items.get_mut(&lock.item) {
                match lock.mode {
                    LockMode::Read => locks.readers.remove(&who),
                    LockMode::Write => locks.writers.remove(&who),
                };
                if locks.is_empty() {
                    self.items.remove(&lock.item);
                }
            }
        }
        held
    }

    /// True if `who` holds `item` in `mode`.
    pub fn holds(&self, who: InstanceId, item: ItemId, mode: LockMode) -> bool {
        self.held
            .get(&who)
            .is_some_and(|s| s.contains(&HeldLock { item, mode }))
    }

    /// All locks held by `who`.
    pub fn held_by(&self, who: InstanceId) -> impl Iterator<Item = HeldLock> + '_ {
        self.held.get(&who).into_iter().flatten().copied()
    }

    /// Read holders of `item`.
    pub fn readers(&self, item: ItemId) -> impl Iterator<Item = InstanceId> + '_ {
        self.items
            .get(&item)
            .into_iter()
            .flat_map(|l| l.readers.iter().copied())
    }

    /// Write holders of `item`.
    pub fn writers(&self, item: ItemId) -> impl Iterator<Item = InstanceId> + '_ {
        self.items
            .get(&item)
            .into_iter()
            .flat_map(|l| l.writers.iter().copied())
    }

    /// `No_Rlock(x)` of the paper: true if `item` is *not* read-locked by
    /// any transaction other than `who`.
    pub fn no_rlock_by_others(&self, item: ItemId, who: InstanceId) -> bool {
        self.readers(item).all(|r| r == who)
    }

    /// Read holders of `item` other than `who`.
    pub fn readers_other_than(
        &self,
        item: ItemId,
        who: InstanceId,
    ) -> impl Iterator<Item = InstanceId> + '_ {
        self.readers(item).filter(move |&r| r != who)
    }

    /// Write holders of `item` other than `who`.
    pub fn writers_other_than(
        &self,
        item: ItemId,
        who: InstanceId,
    ) -> impl Iterator<Item = InstanceId> + '_ {
        self.writers(item).filter(move |&w| w != who)
    }

    /// Items read-locked by transactions other than `who`, with those
    /// holders. Drives PCP-DA's `Sysceil`.
    pub fn read_locked_by_others(
        &self,
        who: InstanceId,
    ) -> impl Iterator<Item = (ItemId, impl Iterator<Item = InstanceId> + '_)> + '_ {
        self.items.iter().filter_map(move |(&item, locks)| {
            let mut holders = locks.readers.iter().copied().filter(move |&r| r != who).peekable();
            holders.peek()?;
            Some((item, holders))
        })
    }

    /// Items locked (in any mode) by transactions other than `who`, with
    /// the per-item reader/writer split. Drives RW-PCP's and PCP's
    /// `Sysceil`.
    pub fn locked_by_others(
        &self,
        who: InstanceId,
    ) -> impl Iterator<Item = (ItemId, bool, bool, Vec<InstanceId>)> + '_ {
        self.items.iter().filter_map(move |(&item, locks)| {
            let holders: Vec<InstanceId> = locks
                .readers
                .iter()
                .chain(locks.writers.iter())
                .copied()
                .filter(|&h| h != who)
                .collect();
            if holders.is_empty() {
                return None;
            }
            let read_by_other = locks.readers.iter().any(|&r| r != who);
            let written_by_other = locks.writers.iter().any(|&w| w != who);
            Some((item, read_by_other, written_by_other, holders))
        })
    }

    /// All instances currently holding at least one lock.
    pub fn holders(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.held.keys().copied()
    }

    /// Number of locked items.
    pub fn locked_items(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    #[test]
    fn grant_and_release_roundtrip() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read);
        lt.grant(i(0), ItemId(1), LockMode::Write);
        assert!(lt.holds(i(0), ItemId(0), LockMode::Read));
        assert!(!lt.holds(i(0), ItemId(0), LockMode::Write));
        assert_eq!(lt.held_by(i(0)).count(), 2);

        let released = lt.release_all(i(0));
        assert_eq!(released.len(), 2);
        assert_eq!(lt.held_by(i(0)).count(), 0);
        assert_eq!(lt.locked_items(), 0);
    }

    #[test]
    fn multiple_writers_are_representable() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Write);
        lt.grant(i(1), ItemId(0), LockMode::Write);
        assert_eq!(lt.writers(ItemId(0)).count(), 2);
    }

    #[test]
    fn upgrade_holds_both_modes() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read);
        lt.grant(i(0), ItemId(0), LockMode::Write);
        assert!(lt.holds(i(0), ItemId(0), LockMode::Read));
        assert!(lt.holds(i(0), ItemId(0), LockMode::Write));
        lt.release(i(0), ItemId(0), LockMode::Write);
        assert!(lt.holds(i(0), ItemId(0), LockMode::Read));
        assert_eq!(lt.locked_items(), 1);
    }

    #[test]
    fn no_rlock_ignores_own_read_lock() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read);
        assert!(lt.no_rlock_by_others(ItemId(0), i(0)));
        lt.grant(i(1), ItemId(0), LockMode::Read);
        assert!(!lt.no_rlock_by_others(ItemId(0), i(0)));
        assert_eq!(lt.readers_other_than(ItemId(0), i(0)).count(), 1);
    }

    #[test]
    fn read_locked_by_others_excludes_self_and_write_locks() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read); // own read
        lt.grant(i(1), ItemId(1), LockMode::Write); // other's write
        lt.grant(i(1), ItemId(2), LockMode::Read); // other's read
        let items: Vec<ItemId> = lt.read_locked_by_others(i(0)).map(|(x, _)| x).collect();
        assert_eq!(items, vec![ItemId(2)]);
    }

    #[test]
    fn locked_by_others_reports_modes() {
        let mut lt = LockTable::new();
        lt.grant(i(1), ItemId(0), LockMode::Read);
        lt.grant(i(2), ItemId(0), LockMode::Write);
        let rows: Vec<_> = lt.locked_by_others(i(0)).collect();
        assert_eq!(rows.len(), 1);
        let (item, read, written, holders) = &rows[0];
        assert_eq!(*item, ItemId(0));
        assert!(*read && *written);
        assert_eq!(holders.len(), 2);

        // From i(1)'s perspective the item is only write-locked by others.
        let rows: Vec<_> = lt.locked_by_others(i(1)).collect();
        let (_, read, written, _) = &rows[0];
        assert!(!*read && *written);
    }

    #[test]
    fn release_is_idempotent() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read);
        lt.release(i(0), ItemId(0), LockMode::Read);
        lt.release(i(0), ItemId(0), LockMode::Read);
        assert_eq!(lt.locked_items(), 0);
        assert!(lt.release_all(i(0)).is_empty());
    }
}
