//! Table 1 of the paper: the PCP-DA lock compatibility table.
//!
//! |  held by `T_L` \ requested by `T_H` | read-lock | write-lock |
//! |---|---|---|
//! | **read-lock**  | OK  | NOK |
//! | **write-lock** | OK* | OK  |
//!
//! `*` under the side condition `DataRead(T_L) ∩ WriteSet(T_H) = ∅`: the
//! requester may preempt a write-holder only if it is guaranteed to commit
//! first, which fails exactly when the holder has already read an item the
//! requester may later write (the requester would then block behind the
//! holder, and the holder's commit would invalidate the requester's read —
//! forcing the restart PCP-DA forbids).
//!
//! This module states the table as a pure function so it can be tested and
//! regenerated verbatim (experiment E6); the live protocol logic in
//! [`crate::protocol`] additionally layers the ceiling conditions on top,
//! which turn this *necessary* condition into a *sufficient* one
//! preserving single blocking and deadlock freedom.

use rtdb_types::LockMode;

/// Inputs to the compatibility decision between one holder and one
/// requester.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompatInput {
    /// Mode held by the (lower-priority) transaction `T_L`.
    pub held: LockMode,
    /// Mode requested by the (higher-priority) transaction `T_H`.
    pub requested: LockMode,
    /// Whether `DataRead(T_L) ∩ WriteSet(T_H) = ∅`.
    pub holder_reads_disjoint_from_requester_writes: bool,
}

/// Table 1: may the requested lock coexist with the held one?
pub fn compatible(input: CompatInput) -> bool {
    match (input.held, input.requested) {
        // Read/Read: shared locks always compatible.
        (LockMode::Read, LockMode::Read) => true,
        // Read held, write requested: never — the write would invalidate
        // the holder's read and force a restart (§4.1, Case 2).
        (LockMode::Read, LockMode::Write) => false,
        // Write held, read requested: preemptable under the side condition
        // (§4.1, Case 1).
        (LockMode::Write, LockMode::Read) => input.holder_reads_disjoint_from_requester_writes,
        // Write/Write: blind writes are non-conflicting (§4.1, Case 3).
        (LockMode::Write, LockMode::Write) => true,
    }
}

/// Render the table as the paper prints it (used by the `figures` binary).
pub fn render_table1() -> String {
    let cell = |held, requested| {
        let ok_clean = compatible(CompatInput {
            held,
            requested,
            holder_reads_disjoint_from_requester_writes: true,
        });
        let ok_dirty = compatible(CompatInput {
            held,
            requested,
            holder_reads_disjoint_from_requester_writes: false,
        });
        match (ok_clean, ok_dirty) {
            (true, true) => "OK ",
            (true, false) => "OK*",
            (false, false) => "NOK",
            (false, true) => unreachable!("side condition can only restrict"),
        }
    };
    let mut s = String::new();
    s.push_str("Table 1: PCP-DA lock compatibility (held \\ requested)\n");
    s.push_str("            | Read-lock | Write-lock\n");
    s.push_str(&format!(
        "  Read-lock |    {}    |    {}\n",
        cell(LockMode::Read, LockMode::Read),
        cell(LockMode::Read, LockMode::Write)
    ));
    s.push_str(&format!(
        " Write-lock |    {}    |    {}\n",
        cell(LockMode::Write, LockMode::Read),
        cell(LockMode::Write, LockMode::Write)
    ));
    s.push_str("  * under the condition DataRead(T_L) ∩ WriteSet(T_H) = ∅\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(held: LockMode, requested: LockMode, disjoint: bool) -> CompatInput {
        CompatInput {
            held,
            requested,
            holder_reads_disjoint_from_requester_writes: disjoint,
        }
    }

    #[test]
    fn read_read_always_compatible() {
        assert!(compatible(input(LockMode::Read, LockMode::Read, true)));
        assert!(compatible(input(LockMode::Read, LockMode::Read, false)));
    }

    #[test]
    fn read_write_never_compatible() {
        assert!(!compatible(input(LockMode::Read, LockMode::Write, true)));
        assert!(!compatible(input(LockMode::Read, LockMode::Write, false)));
    }

    #[test]
    fn write_read_compatible_only_under_side_condition() {
        assert!(compatible(input(LockMode::Write, LockMode::Read, true)));
        assert!(!compatible(input(LockMode::Write, LockMode::Read, false)));
    }

    #[test]
    fn write_write_always_compatible() {
        assert!(compatible(input(LockMode::Write, LockMode::Write, true)));
        assert!(compatible(input(LockMode::Write, LockMode::Write, false)));
    }

    #[test]
    fn rendered_table_matches_paper() {
        let t = render_table1();
        assert!(t.contains("OK*"));
        assert!(t.contains("NOK"));
        assert!(t.contains("DataRead"));
    }
}
