//! Static and dynamic priority ceilings.
//!
//! Static ceilings are fixed a priori by the transaction set:
//!
//! * `Wceil(x)` / `HPW(x)` — the priority of the highest-priority
//!   transaction that may **write** `x` (the only static ceiling PCP-DA
//!   needs, paper §4.2);
//! * `Aceil(x)` — the priority of the highest-priority transaction that may
//!   read **or** write `x` (RW-PCP and the original PCP).
//!
//! Dynamic system ceilings are computed from the current lock table:
//!
//! * PCP-DA: `Sysceil_i` = max `Wceil(x)` over items **read-locked** by
//!   transactions other than `T_i` (write locks raise no ceiling);
//! * RW-PCP: `Sysceil_i` = max `RWceil(x)` over items locked by others,
//!   where `RWceil(x) = Aceil(x)` while `x` is write-locked and
//!   `RWceil(x) = Wceil(x)` while `x` is (only) read-locked;
//! * PCP: `Sysceil_i` = max `Aceil(x)` over items locked by others.

use crate::locks::LockTable;
use rtdb_types::{Ceiling, InstanceId, ItemId, TransactionSet, TxnId};
use std::collections::{BTreeMap, BTreeSet};

/// Precomputed static ceilings and per-template write sets.
#[derive(Clone, Debug)]
pub struct CeilingTable {
    wceil: BTreeMap<ItemId, Ceiling>,
    aceil: BTreeMap<ItemId, Ceiling>,
    write_sets: Vec<BTreeSet<ItemId>>,
}

/// A dynamic system ceiling together with the instances that hold locks at
/// that level — the candidates for priority inheritance (`T*` in the
/// paper, unique under PCP-DA's invariants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SysCeil {
    /// The ceiling value.
    pub ceiling: Ceiling,
    /// Holders of the item(s) whose ceiling equals the system ceiling.
    /// Empty iff `ceiling` is dummy.
    pub holders: BTreeSet<InstanceId>,
}

impl SysCeil {
    fn dummy() -> Self {
        SysCeil {
            ceiling: Ceiling::Dummy,
            holders: BTreeSet::new(),
        }
    }
}

impl CeilingTable {
    /// Precompute ceilings for a transaction set.
    pub fn new(set: &TransactionSet) -> Self {
        let mut wceil = BTreeMap::new();
        let mut aceil = BTreeMap::new();
        for item in set.items() {
            wceil.insert(item, set.wceil(item));
            aceil.insert(item, set.aceil(item));
        }
        let write_sets = set.templates().iter().map(|t| t.write_set()).collect();
        CeilingTable {
            wceil,
            aceil,
            write_sets,
        }
    }

    /// `Wceil(x)` / `HPW(x)`.
    pub fn wceil(&self, item: ItemId) -> Ceiling {
        self.wceil.get(&item).copied().unwrap_or(Ceiling::Dummy)
    }

    /// `Aceil(x)`.
    pub fn aceil(&self, item: ItemId) -> Ceiling {
        self.aceil.get(&item).copied().unwrap_or(Ceiling::Dummy)
    }

    /// Static `WriteSet(T)` of a template.
    pub fn write_set(&self, txn: TxnId) -> &BTreeSet<ItemId> {
        &self.write_sets[txn.index()]
    }

    /// True if template `txn` may write `item`.
    pub fn may_write(&self, txn: TxnId, item: ItemId) -> bool {
        self.write_sets[txn.index()].contains(&item)
    }

    /// PCP-DA `Sysceil` with respect to `who`: the highest `Wceil(x)` over
    /// all items read-locked by other transactions, with the holders of
    /// the ceiling item(s) (`T*`).
    pub fn pcpda_sysceil(&self, locks: &LockTable, who: InstanceId) -> SysCeil {
        let mut best = SysCeil::dummy();
        for (item, holders) in locks.read_locked_by_others(who) {
            let c = self.wceil(item);
            if c.is_dummy() {
                continue;
            }
            match c.cmp(&best.ceiling) {
                std::cmp::Ordering::Greater => {
                    best.ceiling = c;
                    best.holders = holders.collect();
                }
                std::cmp::Ordering::Equal => best.holders.extend(holders),
                std::cmp::Ordering::Less => {}
            }
        }
        best
    }

    /// RW-PCP `Sysceil` with respect to `who`: the highest `RWceil(x)` over
    /// all items locked by other transactions.
    ///
    /// `RWceil` is determined at run time by the lock modes present: a
    /// write lock sets it to `Aceil(x)`; a read lock sets it to `Wceil(x)`.
    /// If both modes are present (an upgrade in progress elsewhere) the
    /// write-mode ceiling dominates.
    pub fn rwpcp_sysceil(&self, locks: &LockTable, who: InstanceId) -> SysCeil {
        let mut best = SysCeil::dummy();
        for (item, read_by_other, written_by_other, holders) in locks.locked_by_others(who) {
            let mut c = Ceiling::Dummy;
            if written_by_other {
                c = c.max(self.aceil(item));
            }
            if read_by_other {
                c = c.max(self.wceil(item));
            }
            if c.is_dummy() {
                continue;
            }
            match c.cmp(&best.ceiling) {
                std::cmp::Ordering::Greater => {
                    best.ceiling = c;
                    best.holders = holders.into_iter().collect();
                }
                std::cmp::Ordering::Equal => best.holders.extend(holders),
                std::cmp::Ordering::Less => {}
            }
        }
        best
    }

    /// Original-PCP `Sysceil` with respect to `who`: the highest `Aceil(x)`
    /// over all items locked (in any mode) by other transactions.
    pub fn pcp_sysceil(&self, locks: &LockTable, who: InstanceId) -> SysCeil {
        let mut best = SysCeil::dummy();
        for (item, _, _, holders) in locks.locked_by_others(who) {
            let c = self.aceil(item);
            if c.is_dummy() {
                continue;
            }
            match c.cmp(&best.ceiling) {
                std::cmp::Ordering::Greater => {
                    best.ceiling = c;
                    best.holders = holders.into_iter().collect();
                }
                std::cmp::Ordering::Equal => best.holders.extend(holders),
                std::cmp::Ordering::Less => {}
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{LockMode, SetBuilder, Step, TransactionTemplate};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    /// Paper Example 4 set: T1: R(x); T2: W(y); T3: R(z),W(z); T4: R(y),W(x).
    fn set() -> TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new("T1", 30, vec![Step::read(ItemId(0), 2)]))
            .with(TransactionTemplate::new("T2", 30, vec![Step::write(ItemId(1), 2)]))
            .with(TransactionTemplate::new(
                "T3",
                30,
                vec![Step::read(ItemId(2), 1), Step::write(ItemId(2), 1)],
            ))
            .with(TransactionTemplate::new(
                "T4",
                30,
                vec![Step::read(ItemId(1), 1), Step::write(ItemId(0), 1), Step::compute(3)],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn static_ceilings_match_example4() {
        let s = set();
        let c = CeilingTable::new(&s);
        assert_eq!(c.wceil(ItemId(1)), s.priority_of(TxnId(1)).as_ceiling()); // Wceil(y)=P2
        assert_eq!(c.wceil(ItemId(2)), s.priority_of(TxnId(2)).as_ceiling()); // Wceil(z)=P3
        assert_eq!(c.wceil(ItemId(0)), s.priority_of(TxnId(3)).as_ceiling()); // Wceil(x)=P4
        assert_eq!(c.aceil(ItemId(0)), s.priority_of(TxnId(0)).as_ceiling()); // Aceil(x)=P1
        assert!(c.may_write(TxnId(3), ItemId(0)));
        assert!(!c.may_write(TxnId(0), ItemId(0)));
    }

    #[test]
    fn pcpda_sysceil_counts_only_read_locks() {
        let s = set();
        let c = CeilingTable::new(&s);
        let mut lt = LockTable::new();

        // T4 write-locks x: raises nothing under PCP-DA.
        lt.grant(i(3), ItemId(0), LockMode::Write);
        assert_eq!(c.pcpda_sysceil(&lt, i(0)).ceiling, Ceiling::Dummy);

        // T4 read-locks y: Sysceil = Wceil(y) = P2 for everyone else.
        lt.grant(i(3), ItemId(1), LockMode::Read);
        let sc = c.pcpda_sysceil(&lt, i(2));
        assert_eq!(sc.ceiling, s.priority_of(TxnId(1)).as_ceiling());
        assert_eq!(sc.holders, [i(3)].into_iter().collect());

        // From T4's own perspective the ceiling is still dummy.
        assert_eq!(c.pcpda_sysceil(&lt, i(3)).ceiling, Ceiling::Dummy);
    }

    #[test]
    fn rwpcp_sysceil_uses_rwceil() {
        let s = set();
        let c = CeilingTable::new(&s);
        let mut lt = LockTable::new();

        // T4 read-locks y: RWceil(y) = Wceil(y) = P2.
        lt.grant(i(3), ItemId(1), LockMode::Read);
        assert_eq!(
            c.rwpcp_sysceil(&lt, i(2)).ceiling,
            s.priority_of(TxnId(1)).as_ceiling()
        );

        // T4 additionally write-locks x: RWceil(x) = Aceil(x) = P1 dominates.
        lt.grant(i(3), ItemId(0), LockMode::Write);
        let sc = c.rwpcp_sysceil(&lt, i(0));
        assert_eq!(sc.ceiling, s.priority_of(TxnId(0)).as_ceiling());
        assert_eq!(sc.holders, [i(3)].into_iter().collect());
    }

    #[test]
    fn pcp_sysceil_uses_aceil_for_reads_too() {
        let s = set();
        let c = CeilingTable::new(&s);
        let mut lt = LockTable::new();
        lt.grant(i(3), ItemId(1), LockMode::Read); // y: Aceil(y)=P2
        assert_eq!(
            c.pcp_sysceil(&lt, i(0)).ceiling,
            s.priority_of(TxnId(1)).as_ceiling()
        );
    }

    #[test]
    fn ties_collect_all_holders() {
        let s = set();
        let c = CeilingTable::new(&s);
        let mut lt = LockTable::new();
        // Two different transactions read-lock items with equal Wceil:
        // construct via z (Wceil=P3) read-locked by T1 and T2.
        lt.grant(i(0), ItemId(2), LockMode::Read);
        lt.grant(i(1), ItemId(2), LockMode::Read);
        let sc = c.pcpda_sysceil(&lt, i(3));
        assert_eq!(sc.ceiling, s.priority_of(TxnId(2)).as_ceiling());
        assert_eq!(sc.holders.len(), 2);
    }

    #[test]
    fn unknown_items_have_dummy_ceilings() {
        let c = CeilingTable::new(&set());
        assert!(c.wceil(ItemId(99)).is_dummy());
        assert!(c.aceil(ItemId(99)).is_dummy());
    }
}
