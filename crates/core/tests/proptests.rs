//! Property tests for the concurrency-control framework.

use rtdb_core::*;
use rtdb_types::*;
use rtdb_util::prop::{forall, vec_of, CASES};
use rtdb_util::Rng;

fn inst(t: u32) -> InstanceId {
    InstanceId::first(TxnId(t))
}

/// Lock table: grants and releases are exact inverses; `release_all`
/// returns exactly what was granted (deduplicated by (item, mode)).
#[test]
fn lock_table_roundtrip() {
    forall(CASES, |rng| {
        let grants = vec_of(rng, 0..20, |rng| {
            (rng.range_u32(0..4), rng.range_u32(0..6), rng.bool())
        });
        let mut lt = LockTable::new();
        let mut expect: std::collections::BTreeSet<(u32, u32, bool)> = Default::default();
        for &(who, item, write) in &grants {
            let mode = if write {
                LockMode::Write
            } else {
                LockMode::Read
            };
            lt.grant(inst(who), ItemId(item), mode);
            expect.insert((who, item, write));
        }
        for who in 0..4u32 {
            let mine: std::collections::BTreeSet<(u32, u32, bool)> = expect
                .iter()
                .filter(|&&(w, _, _)| w == who)
                .copied()
                .collect();
            let held: std::collections::BTreeSet<(u32, u32, bool)> = lt
                .held_by(inst(who))
                .map(|l| (who, l.item.0, l.mode == LockMode::Write))
                .collect();
            assert_eq!(&mine, &held);
            let released = lt.release_all(inst(who)).to_vec();
            assert_eq!(released.len(), mine.len());
        }
        assert_eq!(lt.locked_items(), 0);
    });
}

/// Priority inheritance: running priority is always >= base, equals
/// base with no edges, and equals the max over base + blocked
/// requesters' running priorities (fixpoint property).
#[test]
fn inheritance_fixpoint() {
    forall(CASES, |rng| {
        let bases = vec_of(rng, 2..8, |rng| rng.range_u32(0..20));
        let edges = vec_of(rng, 0..8, |rng| {
            (rng.range_usize(0..8), rng.range_usize(0..8))
        });
        let n = bases.len();
        let mut pm = PriorityManager::new();
        for (i, &b) in bases.iter().enumerate() {
            pm.register(inst(i as u32), Priority(b + (i as u32) * 100)); // distinct
        }
        // Apply edges (skip self-edges and out-of-range, one blocker per
        // blocked instance — last wins, like the engine).
        let mut applied: std::collections::BTreeMap<usize, usize> = Default::default();
        for &(blocked, blocker) in &edges {
            if blocked < n && blocker < n && blocked != blocker {
                // Avoid trivial cycles for this test: only allow edges
                // from a higher-index node to a lower one.
                if blocked > blocker {
                    pm.set_blocked(inst(blocked as u32), &[inst(blocker as u32)]);
                    applied.insert(blocked, blocker);
                }
            }
        }
        // running >= base everywhere.
        for i in 0..n {
            assert!(pm.running(inst(i as u32)) >= pm.base(inst(i as u32)));
        }
        // Fixpoint equation.
        for i in 0..n {
            let me = inst(i as u32);
            let inherited = applied
                .iter()
                .filter(|&(_, &blocker)| blocker == i)
                .map(|(&blocked, _)| pm.running(inst(blocked as u32)))
                .max();
            let expected = match inherited {
                Some(p) => std::cmp::max(pm.base(me), p),
                None => pm.base(me),
            };
            assert_eq!(pm.running(me), expected);
        }
        // Clearing all edges restores bases.
        for &blocked in applied.keys() {
            pm.clear_blocked(inst(blocked as u32));
        }
        for i in 0..n {
            assert_eq!(pm.running(inst(i as u32)), pm.base(inst(i as u32)));
        }
    });
}

/// Wait-for graphs: a graph whose edges all point from higher indices
/// to strictly lower ones is acyclic; adding a back edge on any path
/// creates a detectable cycle.
#[test]
fn waitfor_cycle_detection() {
    forall(CASES, |rng| {
        let edges = vec_of(rng, 1..15, |rng| {
            (rng.range_usize(1..10), rng.range_usize(0..10))
        });
        let mut g = WaitForGraph::default();
        let mut down_edges = vec![];
        for &(a, b) in &edges {
            if b < a {
                g.add_edge(inst(a as u32), inst(b as u32));
                down_edges.push((a, b));
            }
        }
        assert!(g.is_deadlock_free());

        if let Some(&(a, b)) = down_edges.first() {
            // Close the loop: b -> a.
            g.add_edge(inst(b as u32), inst(a as u32));
            let cycle = g.find_cycle();
            assert!(cycle.is_some());
            let cycle = cycle.unwrap();
            assert!(cycle.len() >= 2);
        }
    });
}

/// Generate a random transaction set over a 5-item space.
fn random_set(rng: &mut Rng) -> TransactionSet {
    let ops = vec_of(rng, 2..6, |rng| {
        vec_of(rng, 1..4, |rng| (ItemId(rng.range_u32(0..5)), rng.bool()))
    });
    let mut b = SetBuilder::new();
    for (i, txn_ops) in ops.iter().enumerate() {
        let steps: Vec<Step> = txn_ops
            .iter()
            .map(|&(item, w)| {
                if w {
                    Step::write(item, 1)
                } else {
                    Step::read(item, 1)
                }
            })
            .collect();
        b.add(TransactionTemplate::new(
            format!("t{i}"),
            (steps.len() as u64 + 1) * 10,
            steps,
        ));
    }
    b.build().unwrap()
}

/// Generate a random transaction set plus a legal-ish random lock state
/// over its instances (the ceiling computations don't require lock
/// compatibility, only membership).
fn random_set_and_locks(rng: &mut Rng) -> (TransactionSet, LockTable) {
    let set = random_set(rng);
    let n = set.len();
    let mut lt = LockTable::new();
    for _ in 0..rng.range_usize(0..8) {
        let who = rng.range_usize(0..6);
        if who < n {
            let mode = if rng.bool() {
                LockMode::Write
            } else {
                LockMode::Read
            };
            lt.grant(inst(who as u32), ItemId(rng.range_u32(0..5)), mode);
        }
    }
    (set, lt)
}

/// Ceiling computations agree with brute force on random lock states.
#[test]
fn sysceil_matches_bruteforce() {
    forall(CASES, |rng| {
        let (set, lt) = random_set_and_locks(rng);
        let ceilings = CeilingTable::new(&set);
        let n = set.len();

        for me in 0..n {
            let me = inst(me as u32);
            // Brute-force PCP-DA Sysceil: max Wceil over items read-locked
            // by others.
            let mut expected = Ceiling::Dummy;
            for item in (0..5).map(ItemId) {
                if lt.readers(item).any(|r| r != me) {
                    expected = expected.max(set.wceil(item));
                }
            }
            assert_eq!(ceilings.pcpda_sysceil(&lt, me).ceiling, expected);

            // Brute-force RW-PCP Sysceil.
            let mut expected = Ceiling::Dummy;
            for item in (0..5).map(ItemId) {
                if lt.writers(item).any(|w| w != me) {
                    expected = expected.max(set.aceil(item));
                }
                if lt.readers(item).any(|r| r != me) {
                    expected = expected.max(set.wceil(item));
                }
            }
            assert_eq!(ceilings.rwpcp_sysceil(&lt, me).ceiling, expected);
        }
    });
}

/// Differential oracle for the incremental [`CeilingIndex`]: random
/// grant / release / upgrade / release-all sequences, applied in
/// lock-step to an indexed table and a plain one, must yield identical
/// `SysCeil` values — ceiling **and** holder set — from the index's O(1)
/// queries and the retained from-scratch scans, for all three protocol
/// flavors, after every single transition.
#[test]
fn ceiling_index_matches_scans_differentially() {
    forall(CASES, |rng| {
        let set = random_set(rng);
        let ceilings = CeilingTable::new(&set);
        let mut indexed = LockTable::with_index(&ceilings);
        let mut plain = LockTable::new();
        let n = set.len() as u32;

        let check = |indexed: &LockTable, plain: &LockTable| {
            let ix = indexed.index().expect("indexed table");
            // Every instance, plus one id past the set (a pure outsider
            // whose query excludes nothing).
            for who in (0..=n).map(inst) {
                assert_eq!(
                    ix.pcpda_sysceil(who),
                    ceilings.pcpda_sysceil_scan(plain, who)
                );
                assert_eq!(
                    ix.rwpcp_sysceil(who),
                    ceilings.rwpcp_sysceil_scan(plain, who)
                );
                assert_eq!(ix.pcp_sysceil(who), ceilings.pcp_sysceil_scan(plain, who));
            }
        };

        check(&indexed, &plain);
        for _ in 0..rng.range_usize(4..24) {
            let who = inst(rng.range_u32(0..n));
            let item = ItemId(rng.range_u32(0..5));
            let mode = if rng.bool() {
                LockMode::Write
            } else {
                LockMode::Read
            };
            match rng.range_u32(0..10) {
                // Grants dominate so upgrades (read then write on the
                // same item, or vice versa) actually occur.
                0..=5 => {
                    indexed.grant(who, item, mode);
                    plain.grant(who, item, mode);
                }
                6..=8 => {
                    indexed.release(who, item, mode);
                    plain.release(who, item, mode);
                }
                _ => {
                    let a: Vec<HeldLock> = indexed.release_all(who).to_vec();
                    let b: Vec<HeldLock> = plain.release_all(who).to_vec();
                    assert_eq!(a, b);
                }
            }
            check(&indexed, &plain);
        }

        // Drain everything: the index must unwind back to empty.
        for t in (0..n).map(inst) {
            indexed.release_all(t);
            plain.release_all(t);
            check(&indexed, &plain);
        }
        assert_eq!(indexed.locked_items(), 0);
    });
}
