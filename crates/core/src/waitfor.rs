//! Wait-for graph and deadlock detection.
//!
//! A deadlock is a cycle in the wait-for graph ("in a circular-wait
//! situation, each transaction in the cycle has locked some data items
//! while waiting to lock a data item which is being locked by another
//! transaction", paper §7). Theorem 2 proves PCP-DA never produces one;
//! the deliberately weakened Naive-DA baseline reproduces the Example 5
//! deadlock, which this detector reports.

use rtdb_types::InstanceId;
use std::collections::BTreeMap;

/// A snapshot wait-for graph: blocked instance → instances it waits for.
#[derive(Clone, Debug, Default)]
pub struct WaitForGraph {
    edges: BTreeMap<InstanceId, Vec<InstanceId>>,
}

impl WaitForGraph {
    /// Build from the current blocking edges (e.g.
    /// `PriorityManager::edges`).
    pub fn from_edges<'a, I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (InstanceId, &'a [InstanceId])>,
    {
        WaitForGraph {
            edges: edges
                .into_iter()
                .map(|(blocked, blockers)| (blocked, blockers.to_vec()))
                .collect(),
        }
    }

    /// Add one edge (used by tests).
    pub fn add_edge(&mut self, blocked: InstanceId, waits_for: InstanceId) {
        self.edges.entry(blocked).or_default().push(waits_for);
    }

    /// Find a deadlock cycle, if any, as the ordered list of instances on
    /// it (`a` waits for `b` waits for ... waits for `a`).
    pub fn find_cycle(&self) -> Option<Vec<InstanceId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: BTreeMap<InstanceId, Color> = BTreeMap::new();
        for (&from, tos) in &self.edges {
            color.entry(from).or_insert(Color::White);
            for &to in tos {
                color.entry(to).or_insert(Color::White);
            }
        }
        let nodes: Vec<InstanceId> = color.keys().copied().collect();
        for start in nodes {
            if color[&start] != Color::White {
                continue;
            }
            let mut stack: Vec<(InstanceId, usize)> = vec![(start, 0)];
            let mut path: Vec<InstanceId> = vec![start];
            color.insert(start, Color::Grey);
            while let Some((node, idx)) = stack.last_mut() {
                let node = *node;
                let succs = self.edges.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
                if *idx < succs.len() {
                    let next = succs[*idx];
                    *idx += 1;
                    match color[&next] {
                        Color::White => {
                            color.insert(next, Color::Grey);
                            stack.push((next, 0));
                            path.push(next);
                        }
                        Color::Grey => {
                            let pos = path.iter().position(|&n| n == next).unwrap();
                            return Some(path[pos..].to_vec());
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    /// True if the graph has no cycle.
    pub fn is_deadlock_free(&self) -> bool {
        self.find_cycle().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    #[test]
    fn empty_graph_is_deadlock_free() {
        assert!(WaitForGraph::default().is_deadlock_free());
    }

    #[test]
    fn chain_is_not_a_deadlock() {
        let mut g = WaitForGraph::default();
        g.add_edge(i(0), i(1));
        g.add_edge(i(1), i(2));
        assert!(g.is_deadlock_free());
    }

    #[test]
    fn two_cycle_is_detected() {
        // Example 5's shape: T_H waits for T_L; T_L waits for T_H.
        let mut g = WaitForGraph::default();
        g.add_edge(i(0), i(1));
        g.add_edge(i(1), i(0));
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&i(0)) && cycle.contains(&i(1)));
    }

    #[test]
    fn longer_cycle_is_detected() {
        let mut g = WaitForGraph::default();
        g.add_edge(i(0), i(1));
        g.add_edge(i(1), i(2));
        g.add_edge(i(2), i(0));
        g.add_edge(i(3), i(0)); // extra non-cycle edge
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn diamond_without_cycle_is_free() {
        let mut g = WaitForGraph::default();
        g.add_edge(i(0), i(1));
        g.add_edge(i(0), i(2));
        g.add_edge(i(1), i(3));
        g.add_edge(i(2), i(3));
        assert!(g.is_deadlock_free());
    }
}
