//! Dependency tracking for early lock release.
//!
//! Protocols that release write locks *before* commit (Bamboo,
//! Brook-2PL — the contention-tolerant family) need machinery the plain
//! [`crate::LockTable`] does not provide: a released-but-uncommitted
//! write must stay visible so later lockers of the item can (a) read the
//! dirty value, (b) be ordered *after* the releasing transaction, and
//! (c) be aborted if the releasing transaction aborts. [`DepTracker`]
//! is that machinery, protocol-agnostic and shared by both engines (the
//! simulator's `ViewState` and the runtime's `RtView` each own one):
//!
//! * **Retired-lock lists** — per item, the ordered chain of write locks
//!   released early, each entry carrying the owner and its staged value.
//!   The chain order *is* the required install order: each live entry
//!   will bump the item's committed version by exactly one, so the
//!   predicted version of the latest dirty value is
//!   `committed_version + chain_len` and stays correct as earlier chain
//!   members commit.
//! * **Commit-dependency graph** — when the engine grants a lock on an
//!   item with a non-empty retired chain it registers a dependency of
//!   the requester on the *latest* retired owner (transitively ordering
//!   it after the whole chain). A transaction with outstanding
//!   dependencies is held at the **commit gate** until they drain —
//!   which is what makes dirty reads recoverable: nobody commits a
//!   value they read from a transaction that can still abort.
//! * **Cascading aborts** — when a transaction with dependents aborts,
//!   [`DepTracker::on_abort`] hands the transitive closure of its
//!   dependents back to the engine, which aborts each through the
//!   ordinary abort path; every surfaced instance is detached from the
//!   graph as it is collected, so each cascades exactly once even when
//!   it is reachable through several dependency paths.
//!
//! The tracker is pure bookkeeping: it never decides anything (the
//! protocol does) and never touches locks (the engine does).

use rtdb_types::{InstanceId, ItemId, Value};
use std::collections::BTreeMap;

/// Why a transaction instance was aborted — the observable breakdown of
/// the restart paths ([`AbortBreakdown`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The instance aborted *itself* because proceeding would violate the
    /// protocol's ordering rule (Brook-2PL's wait-die, the sharded
    /// manager's no-wait cross-shard path).
    CeilingBlock,
    /// Chosen as the victim of wait-for deadlock resolution.
    DeadlockVictim,
    /// Wounded by a conflicting request or invalidated by a commit
    /// (2PL-HP / Bamboo abort-holders, OCC-BC broadcast commit).
    Wound,
    /// Cascading abort: a transaction whose dirty data this instance
    /// depended on aborted.
    Cascade,
}

/// Per-reason abort counters, summed over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbortBreakdown {
    /// Self-aborts (ordering rule / no-wait path).
    pub ceiling_block: u64,
    /// Deadlock-resolution victims.
    pub deadlock_victim: u64,
    /// Wounds by conflicting requests or commit validation.
    pub wound: u64,
    /// Cascading aborts through the dependency graph.
    pub cascade: u64,
}

impl AbortBreakdown {
    /// Count one abort for `reason`.
    pub fn record(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::CeilingBlock => self.ceiling_block += 1,
            AbortReason::DeadlockVictim => self.deadlock_victim += 1,
            AbortReason::Wound => self.wound += 1,
            AbortReason::Cascade => self.cascade += 1,
        }
    }

    /// Sum of all reasons.
    pub fn total(&self) -> u64 {
        self.ceiling_block + self.deadlock_victim + self.wound + self.cascade
    }

    /// Add `other`'s counters into `self`.
    pub fn merge(&mut self, other: &AbortBreakdown) {
        self.ceiling_block += other.ceiling_block;
        self.deadlock_victim += other.deadlock_victim;
        self.wound += other.wound;
        self.cascade += other.cascade;
    }
}

/// One early-released (retired) write lock: the owner and the value it
/// staged for the item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetiredWrite {
    /// The transaction that released the write lock before commit.
    pub owner: InstanceId,
    /// Its staged (dirty, uncommitted) value for the item.
    pub value: Value,
}

/// Retired-lock lists plus the commit-dependency graph (module docs).
#[derive(Clone, Debug, Default)]
pub struct DepTracker {
    /// item → retired writes in retire (= required install) order.
    retired: BTreeMap<ItemId, Vec<RetiredWrite>>,
    /// owner → items it currently has retired entries on (reverse index).
    retired_by: BTreeMap<InstanceId, Vec<ItemId>>,
    /// dependent → the instances it must wait for at the commit gate.
    waits_on: BTreeMap<InstanceId, Vec<InstanceId>>,
    /// instance → dependents gated on (or ordered after) it.
    dependents: BTreeMap<InstanceId, Vec<InstanceId>>,
}

fn insert_sorted<T: Ord + Copy>(v: &mut Vec<T>, x: T) -> bool {
    match v.binary_search(&x) {
        Ok(_) => false,
        Err(i) => {
            v.insert(i, x);
            true
        }
    }
}

fn remove_sorted<T: Ord>(v: &mut Vec<T>, x: &T) {
    if let Ok(i) = v.binary_search(x) {
        v.remove(i);
    }
}

impl DepTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if nothing is retired and nobody is gated (the steady state
    /// for protocols that never retire).
    pub fn is_empty(&self) -> bool {
        self.retired.is_empty() && self.waits_on.is_empty()
    }

    /// Record an early release of `owner`'s write lock on `item` with its
    /// staged `value`. The entry joins the end of the item's chain.
    pub fn retire(&mut self, owner: InstanceId, item: ItemId, value: Value) {
        let chain = self.retired.entry(item).or_default();
        debug_assert!(
            chain.iter().all(|e| e.owner != owner),
            "{owner} retired {item:?} twice"
        );
        chain.push(RetiredWrite { owner, value });
        insert_sorted(self.retired_by.entry(owner).or_default(), item);
    }

    /// The latest live retired write on `item`, with the chain length
    /// (the latest entry's 1-based position): the dirty value a new
    /// locker observes, predicted to commit at
    /// `committed_version + chain_len`.
    pub fn latest_retired(&self, item: ItemId) -> Option<(RetiredWrite, usize)> {
        let chain = self.retired.get(&item)?;
        chain.last().map(|&e| (e, chain.len()))
    }

    /// The full retired chain on `item`, oldest first.
    pub fn retired_chain(&self, item: ItemId) -> &[RetiredWrite] {
        self.retired.get(&item).map_or(&[], Vec::as_slice)
    }

    /// True if `owner` has any retired entry outstanding.
    pub fn has_retired(&self, owner: InstanceId) -> bool {
        self.retired_by.contains_key(&owner)
    }

    /// Register that `dependent` must commit after `on` (deduplicated;
    /// self-dependencies ignored).
    pub fn add_dep(&mut self, dependent: InstanceId, on: InstanceId) {
        if dependent == on {
            return;
        }
        if insert_sorted(self.waits_on.entry(dependent).or_default(), on) {
            insert_sorted(self.dependents.entry(on).or_default(), dependent);
        }
    }

    /// The instances `who` is still gated on (empty ⇒ free to commit).
    pub fn deps_of(&self, who: InstanceId) -> &[InstanceId] {
        self.waits_on.get(&who).map_or(&[], Vec::as_slice)
    }

    /// True if `who` has outstanding commit dependencies.
    pub fn has_deps(&self, who: InstanceId) -> bool {
        !self.deps_of(who).is_empty()
    }

    /// The instances currently depending on `who`.
    pub fn dependents_of(&self, who: InstanceId) -> &[InstanceId] {
        self.dependents.get(&who).map_or(&[], Vec::as_slice)
    }

    /// `who` committed: drop its retired entries (the values are now the
    /// committed ones), release its dependents' edges, and return the
    /// dependents whose last dependency just drained — the engine lets
    /// those through the commit gate.
    pub fn on_commit(&mut self, who: InstanceId) -> Vec<InstanceId> {
        self.drop_retired(who);
        debug_assert!(
            !self.waits_on.contains_key(&who),
            "{who} committed with outstanding dependencies"
        );
        let mut drained = Vec::new();
        if let Some(deps) = self.dependents.remove(&who) {
            for d in deps {
                if let Some(waits) = self.waits_on.get_mut(&d) {
                    remove_sorted(waits, &who);
                    if waits.is_empty() {
                        self.waits_on.remove(&d);
                        drained.push(d);
                    }
                }
            }
        }
        drained
    }

    /// `who` aborted: remove it from the graph entirely (retired entries,
    /// its own waits, its edge in others' dependent lists) and return the
    /// **transitive closure** of its dependents, in BFS order — the
    /// engine must abort each of them (cascading). Every returned
    /// instance is detached from the graph as it is collected, so a
    /// dependent reachable through two paths (C depending on both A and
    /// B, B depending on A) is surfaced exactly once, and the engine's
    /// abort path re-entering here for a cascade victim finds nothing
    /// left to do.
    pub fn on_abort(&mut self, who: InstanceId) -> Vec<InstanceId> {
        self.drop_retired(who);
        self.unhook_waits(who);
        let mut cascade: Vec<InstanceId> = Vec::new();
        let mut frontier = self.dependents.remove(&who).unwrap_or_default();
        let mut i = 0;
        while i < frontier.len() {
            let d = frontier[i];
            i += 1;
            if cascade.contains(&d) {
                continue;
            }
            self.drop_retired(d);
            self.unhook_waits(d);
            if let Some(next) = self.dependents.remove(&d) {
                frontier.extend(next);
            }
            cascade.push(d);
        }
        cascade
    }

    /// Remove `who`'s outstanding waits and its entry in the dependent
    /// lists of the instances it waited on.
    fn unhook_waits(&mut self, who: InstanceId) {
        if let Some(waits) = self.waits_on.remove(&who) {
            for w in waits {
                if let Some(deps) = self.dependents.get_mut(&w) {
                    remove_sorted(deps, &who);
                    if deps.is_empty() {
                        self.dependents.remove(&w);
                    }
                }
            }
        }
    }

    fn drop_retired(&mut self, who: InstanceId) {
        if let Some(items) = self.retired_by.remove(&who) {
            for item in items {
                if let Some(chain) = self.retired.get_mut(&item) {
                    chain.retain(|e| e.owner != who);
                    if chain.is_empty() {
                        self.retired.remove(&item);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    #[test]
    fn retired_chain_orders_and_predicts_versions() {
        let mut d = DepTracker::new();
        assert!(d.latest_retired(ItemId(0)).is_none());
        d.retire(i(0), ItemId(0), Value(10));
        d.retire(i(1), ItemId(0), Value(11));
        let (latest, len) = d.latest_retired(ItemId(0)).unwrap();
        assert_eq!(latest.owner, i(1));
        assert_eq!(latest.value, Value(11));
        assert_eq!(len, 2);
        // The earliest chain member commits: the latest entry's position
        // shrinks by one — matching the +1 its install added to the
        // committed version, so `version + len` is invariant.
        d.on_commit(i(0));
        let (latest, len) = d.latest_retired(ItemId(0)).unwrap();
        assert_eq!(latest.owner, i(1));
        assert_eq!(len, 1);
        d.on_commit(i(1));
        assert!(d.latest_retired(ItemId(0)).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn commit_drains_dependents_exactly_when_last_dep_clears() {
        let mut d = DepTracker::new();
        d.add_dep(i(2), i(0));
        d.add_dep(i(2), i(1));
        d.add_dep(i(2), i(0)); // dedup
        assert!(d.has_deps(i(2)));
        assert_eq!(d.on_commit(i(0)), Vec::<InstanceId>::new());
        assert!(d.has_deps(i(2)));
        assert_eq!(d.on_commit(i(1)), vec![i(2)]);
        assert!(!d.has_deps(i(2)));
    }

    #[test]
    fn abort_cascade_surfaces_each_dependent_exactly_once() {
        let mut d = DepTracker::new();
        d.retire(i(0), ItemId(3), Value(7));
        d.add_dep(i(1), i(0));
        d.add_dep(i(2), i(0));
        d.add_dep(i(2), i(1)); // diamond: 2 reachable via 0 and via 1
        let cascade = d.on_abort(i(0));
        assert_eq!(cascade, vec![i(1), i(2)]);
        assert!(d.latest_retired(ItemId(3)).is_none());
        // The engine's abort path re-enters for each cascade victim; the
        // graph has already been cleared, so nothing surfaces twice.
        assert!(d.on_abort(i(1)).is_empty());
        assert!(d.on_abort(i(2)).is_empty());
        assert!(d.is_empty());
    }

    #[test]
    fn abort_of_dependent_unhooks_it_from_its_sources() {
        let mut d = DepTracker::new();
        d.add_dep(i(1), i(0));
        assert_eq!(d.dependents_of(i(0)), &[i(1)]);
        let cascade = d.on_abort(i(1));
        assert!(cascade.is_empty());
        assert!(d.dependents_of(i(0)).is_empty());
        // i(0)'s later commit drains nobody.
        assert!(d.on_commit(i(0)).is_empty());
        assert!(d.is_empty());
    }

    #[test]
    fn self_dependency_is_ignored() {
        let mut d = DepTracker::new();
        d.add_dep(i(0), i(0));
        assert!(!d.has_deps(i(0)));
    }

    #[test]
    fn breakdown_records_and_merges() {
        let mut a = AbortBreakdown::default();
        a.record(AbortReason::Wound);
        a.record(AbortReason::Cascade);
        a.record(AbortReason::Cascade);
        let mut b = AbortBreakdown::default();
        b.record(AbortReason::CeilingBlock);
        b.record(AbortReason::DeadlockVictim);
        a.merge(&b);
        assert_eq!(a.wound, 1);
        assert_eq!(a.cascade, 2);
        assert_eq!(a.ceiling_block, 1);
        assert_eq!(a.deadlock_victim, 1);
        assert_eq!(a.total(), 5);
    }
}
