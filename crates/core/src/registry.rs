//! The protocol registry: one enum naming every concurrency-control
//! protocol the workspace implements, with parsing, display and static
//! metadata.
//!
//! Before this registry existed the workspace carried three hand-written
//! protocol line-ups (the sweep module, the bench crate and the `rtdbsim`
//! CLI) that drifted independently. [`ProtocolKind`] is now the single
//! source of truth: [`ProtocolKind::STANDARD`] is the evaluation line-up
//! (the seven protocols of the paper's comparison), [`ProtocolKind::ALL`]
//! additionally names the two deliberately defective demonstration
//! variants (`PCP-DA-literal`, `Naive-DA`), and every list of protocols
//! elsewhere in the workspace derives from one of the two.
//!
//! The enum itself carries no constructor — this crate sits *below* the
//! implementation crates (`rtdb-cc`, `rtdb-baselines`) in the dependency
//! graph, so instantiation lives where the implementations are visible
//! (`rtdb_sim::registry::instantiate`), keyed on this enum so the
//! compiler enforces exhaustiveness.

use crate::protocol::UpdateModel;
use std::fmt;
use std::str::FromStr;

/// Broad family of a concurrency-control protocol, as the paper's §2
/// taxonomy groups them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolFamily {
    /// Priority-ceiling locking (PCP, RW-PCP, CCP, PCP-DA and variants).
    PriorityCeiling,
    /// Two-phase locking (priority inheritance or high-priority abort).
    TwoPhaseLocking,
    /// Optimistic concurrency control (validate at commit, restart losers).
    Optimistic,
}

impl fmt::Display for ProtocolFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProtocolFamily::PriorityCeiling => "priority ceiling",
            ProtocolFamily::TwoPhaseLocking => "two-phase locking",
            ProtocolFamily::Optimistic => "optimistic",
        })
    }
}

/// Every concurrency-control protocol the workspace implements.
///
/// `Display` prints the canonical report name (`"PCP-DA"`, ...);
/// `FromStr` parses it back case-insensitively, also accepting the
/// [`aliases`](ProtocolKind::aliases), and its error message lists every
/// valid name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtocolKind {
    /// The paper's contribution (locking conditions LC1–LC4 with the
    /// erratum clauses (A)–(D) of DESIGN.md §5b).
    PcpDa,
    /// PCP-DA with LC3 exactly as printed in the paper — no clause (A) —
    /// kept to reproduce the Theorem 2 counterexample. Can deadlock.
    PcpDaLiteral,
    /// Read/write priority ceiling protocol (Sha, Rajkumar, Son, Chang).
    RwPcp,
    /// The original priority ceiling protocol, applied to data items.
    Pcp,
    /// Convex ceiling protocol (Nakazato, Lin): PCP plus early unlock.
    Ccp,
    /// Strict 2PL with priority inheritance. Can deadlock.
    TwoPlPi,
    /// 2PL High Priority: conflicts favour the higher-priority side.
    TwoPlHp,
    /// Optimistic concurrency control with broadcast commit.
    OccBc,
    /// Bamboo-style early lock release (Guo et al.): 2PL-HP base, write
    /// locks retire after their last access into the dependency tracker's
    /// retired list, dirty readers are gated behind the retirer and
    /// cascade-abort if it aborts; a retired chain is always acquirable
    /// via a commit dependency on the latest retiree.
    Bamboo,
    /// Brook-2PL-style deadlock-free early release (Habibi et al.,
    /// adapted): wait-die polarity over a static seniority order — all
    /// lock waits *and* commit-gate dependencies point senior→junior, so
    /// no cycle can form; juniors facing senior conflicts self-abort.
    Brook2Pl,
    /// The paper's Example 5 protocol: condition (2) without the `T*`
    /// safeguards. Deadlocks by design.
    NaiveDa,
}

impl ProtocolKind {
    /// Every protocol the workspace implements, in presentation order.
    pub const ALL: [ProtocolKind; 11] = [
        ProtocolKind::PcpDa,
        ProtocolKind::PcpDaLiteral,
        ProtocolKind::RwPcp,
        ProtocolKind::Pcp,
        ProtocolKind::Ccp,
        ProtocolKind::TwoPlPi,
        ProtocolKind::TwoPlHp,
        ProtocolKind::OccBc,
        ProtocolKind::Bamboo,
        ProtocolKind::Brook2Pl,
        ProtocolKind::NaiveDa,
    ];

    /// The standard evaluation line-up: PCP-DA plus every baseline of the
    /// paper's comparison and the contention-tolerant early-release kinds,
    /// excluding the deliberately defective demonstration variants
    /// (`PCP-DA-literal`, `Naive-DA`).
    pub const STANDARD: [ProtocolKind; 9] = [
        ProtocolKind::PcpDa,
        ProtocolKind::RwPcp,
        ProtocolKind::Pcp,
        ProtocolKind::Ccp,
        ProtocolKind::TwoPlPi,
        ProtocolKind::TwoPlHp,
        ProtocolKind::OccBc,
        ProtocolKind::Bamboo,
        ProtocolKind::Brook2Pl,
    ];

    /// Canonical report name; equals the constructed protocol's
    /// `Protocol::name()`.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::PcpDa => "PCP-DA",
            ProtocolKind::PcpDaLiteral => "PCP-DA-literal",
            ProtocolKind::RwPcp => "RW-PCP",
            ProtocolKind::Pcp => "PCP",
            ProtocolKind::Ccp => "CCP",
            ProtocolKind::TwoPlPi => "2PL-PI",
            ProtocolKind::TwoPlHp => "2PL-HP",
            ProtocolKind::OccBc => "OCC-BC",
            ProtocolKind::Bamboo => "Bamboo",
            ProtocolKind::Brook2Pl => "Brook-2PL",
            ProtocolKind::NaiveDa => "Naive-DA",
        }
    }

    /// Additional accepted spellings for [`FromStr`] (all matching is
    /// case-insensitive, so these only cover punctuation variants).
    pub fn aliases(self) -> &'static [&'static str] {
        match self {
            ProtocolKind::PcpDa => &["pcpda"],
            ProtocolKind::PcpDaLiteral => &["literal", "pcpda-literal"],
            ProtocolKind::RwPcp => &["rwpcp"],
            ProtocolKind::Pcp => &[],
            ProtocolKind::Ccp => &[],
            ProtocolKind::TwoPlPi => &["2plpi"],
            ProtocolKind::TwoPlHp => &["2plhp"],
            ProtocolKind::OccBc => &["occ"],
            ProtocolKind::Bamboo => &[],
            ProtocolKind::Brook2Pl => &["brook", "brook2pl"],
            ProtocolKind::NaiveDa => &["naiveda"],
        }
    }

    /// The protocol's family in the paper's §2 taxonomy.
    pub fn family(self) -> ProtocolFamily {
        match self {
            ProtocolKind::PcpDa
            | ProtocolKind::PcpDaLiteral
            | ProtocolKind::RwPcp
            | ProtocolKind::Pcp
            | ProtocolKind::Ccp
            | ProtocolKind::NaiveDa => ProtocolFamily::PriorityCeiling,
            ProtocolKind::TwoPlPi
            | ProtocolKind::TwoPlHp
            | ProtocolKind::Bamboo
            | ProtocolKind::Brook2Pl => ProtocolFamily::TwoPhaseLocking,
            ProtocolKind::OccBc => ProtocolFamily::Optimistic,
        }
    }

    /// The update model the protocol requires; equals the constructed
    /// protocol's `Protocol::update_model()`.
    pub fn update_model(self) -> UpdateModel {
        match self {
            ProtocolKind::Ccp => UpdateModel::InstallOnEarlyRelease,
            _ => UpdateModel::Workspace,
        }
    }

    /// Whether read-only transactions may take the lock-free multiversion
    /// snapshot path under this protocol; equals the constructed
    /// protocol's default `Protocol::lock_exempt(TxnMode::ReadOnly)`.
    /// Exactly the deferred-update kinds qualify — CCP installs writes at
    /// early release, so its commit stamps are not consistent prefixes.
    pub fn snapshot_exempt(self) -> bool {
        self.update_model() == UpdateModel::Workspace
    }

    /// Whether the protocol's correctness argument survives partitioned
    /// (per-shard) ceilings, i.e. whether a sharded lock manager may run
    /// it with `--shards > 1`.
    ///
    /// A kind qualifies when its decisions depend only on shard-local
    /// state once items are partitioned: per-shard `Sysceil`/`Aceil`
    /// plus canonical-order shard entry preserves the ceiling protocols'
    /// blocking argument (DPCP-p's construction), 2PL variants never
    /// consult a global quantity, and OCC validates against per-shard
    /// holder sets. Excluded: CCP installs writes at early release, so a
    /// cross-shard transaction would expose non-atomic commit prefixes
    /// across shards; the deliberately defective demonstration variants
    /// (`PCP-DA-literal`, `Naive-DA`) have no correctness argument to
    /// preserve.
    pub fn shardable(self) -> bool {
        // Also excluded: the early-release kinds (Bamboo, Brook-2PL) —
        // their retired-lock lists and commit-dependency graph are global
        // structures; per-shard instances would gate and cascade against
        // disjoint graphs, so sharding them is unsound for now (v1).
        matches!(
            self,
            ProtocolKind::PcpDa
                | ProtocolKind::RwPcp
                | ProtocolKind::Pcp
                | ProtocolKind::TwoPlPi
                | ProtocolKind::TwoPlHp
                | ProtocolKind::OccBc
        )
    }

    /// Whether the protocol may abort/restart transactions; equals the
    /// constructed protocol's `Protocol::may_abort()`.
    pub fn may_abort(self) -> bool {
        matches!(
            self,
            ProtocolKind::TwoPlHp
                | ProtocolKind::OccBc
                | ProtocolKind::Bamboo
                | ProtocolKind::Brook2Pl
        )
    }

    /// Whether the protocol can reach a deadlock; equals the constructed
    /// protocol's `Protocol::may_deadlock()`. Drivers enable the engine's
    /// wait-for deadlock resolution exactly for these kinds.
    pub fn may_deadlock(self) -> bool {
        // Bamboo both aborts *and* deadlocks: commit-gate dependencies add
        // wait edges that the high-priority-wins rule does not orient, so
        // gate/lock-wait cycles can form and are resolved by victim abort.
        // Brook-2PL is deadlock-free by construction (every wait edge —
        // lock or gate — points senior→junior in a static total order).
        matches!(
            self,
            ProtocolKind::TwoPlPi
                | ProtocolKind::PcpDaLiteral
                | ProtocolKind::NaiveDa
                | ProtocolKind::Bamboo
        )
    }

    /// True if the kind is part of [`ProtocolKind::STANDARD`].
    pub fn is_standard(self) -> bool {
        Self::STANDARD.contains(&self)
    }

    /// One-line description for documentation tables.
    pub fn description(self) -> &'static str {
        match self {
            ProtocolKind::PcpDa => {
                "the paper's protocol: dynamic serialization order, write locks raise no ceiling"
            }
            ProtocolKind::PcpDaLiteral => {
                "LC3 exactly as printed (no erratum clause (A)); reproduces the Theorem 2 counterexample"
            }
            ProtocolKind::RwPcp => "read/write priority ceiling protocol (Sha et al.)",
            ProtocolKind::Pcp => "original priority ceiling protocol, one absolute ceiling per item",
            ProtocolKind::Ccp => "convex ceiling protocol: PCP plus early unlock (Nakazato, Lin)",
            ProtocolKind::TwoPlPi => "strict two-phase locking with priority inheritance",
            ProtocolKind::TwoPlHp => "2PL High Priority: aborts lower-priority conflicting holders",
            ProtocolKind::OccBc => "optimistic concurrency control with broadcast commit",
            ProtocolKind::Bamboo => {
                "early lock release (Guo et al.): retired write locks, dirty reads gated on commit dependencies, wound-on-conflict"
            }
            ProtocolKind::Brook2Pl => {
                "deadlock-free early release (Habibi et al., adapted): wait-die seniority order over locks and commit gates"
            }
            ProtocolKind::NaiveDa => "Example 5: condition (2) without safeguards; deadlocks by design",
        }
    }

    /// The registry rendered as a GitHub-flavoured markdown table — the
    /// README's protocol table is generated from this (and a repo test
    /// keeps the two in sync).
    pub fn markdown_table() -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str(
            "| protocol | family | update model | aborts | deadlocks | line-up | description |\n",
        );
        s.push_str("|---|---|---|---|---|---|---|\n");
        for k in ProtocolKind::ALL {
            let _ = writeln!(
                s,
                "| `{}` | {} | {} | {} | {} | {} | {} |",
                k.name(),
                k.family(),
                match k.update_model() {
                    UpdateModel::Workspace => "workspace",
                    UpdateModel::InstallOnEarlyRelease => "install on early release",
                },
                if k.may_abort() { "yes" } else { "no" },
                if k.may_deadlock() { "yes" } else { "no" },
                if k.is_standard() { "standard" } else { "demo" },
                k.description(),
            );
        }
        s
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error of [`ProtocolKind::from_str`]: the input named no registered
/// protocol. Its `Display` lists every valid name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownProtocol {
    /// The string that failed to parse.
    pub input: String,
}

impl fmt::Display for UnknownProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown protocol `{}` (valid: ", self.input)?;
        for (i, k) in ProtocolKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(k.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for UnknownProtocol {}

impl FromStr for ProtocolKind {
    type Err = UnknownProtocol;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ProtocolKind::ALL
            .into_iter()
            .find(|k| {
                k.name().eq_ignore_ascii_case(s)
                    || k.aliases().iter().any(|a| a.eq_ignore_ascii_case(s))
            })
            .ok_or_else(|| UnknownProtocol {
                input: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_is_a_subset_of_all() {
        for k in ProtocolKind::STANDARD {
            assert!(ProtocolKind::ALL.contains(&k));
            assert!(k.is_standard());
        }
        assert!(!ProtocolKind::PcpDaLiteral.is_standard());
        assert!(!ProtocolKind::NaiveDa.is_standard());
    }

    #[test]
    fn parse_display_roundtrip() {
        for k in ProtocolKind::ALL {
            assert_eq!(k.to_string().parse::<ProtocolKind>(), Ok(k));
            // Case-insensitive, and every alias resolves too.
            assert_eq!(k.name().to_lowercase().parse::<ProtocolKind>(), Ok(k));
            for a in k.aliases() {
                assert_eq!(a.parse::<ProtocolKind>(), Ok(k), "alias {a}");
                assert_eq!(a.to_uppercase().parse::<ProtocolKind>(), Ok(k));
            }
        }
    }

    #[test]
    fn names_and_aliases_are_unambiguous() {
        let mut seen = std::collections::BTreeSet::new();
        for k in ProtocolKind::ALL {
            assert!(seen.insert(k.name().to_lowercase()), "{k} name collides");
            for a in k.aliases() {
                assert!(seen.insert(a.to_lowercase()), "{k} alias {a} collides");
            }
        }
    }

    #[test]
    fn unknown_name_error_lists_valid_names() {
        let err = "nonsense".parse::<ProtocolKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`nonsense`"));
        for k in ProtocolKind::ALL {
            assert!(msg.contains(k.name()), "error omits {k}");
        }
    }

    #[test]
    fn metadata_is_consistent() {
        // Deadlock-capable kinds that cannot abort are exactly the ones
        // drivers must pair with engine-side deadlock resolution; Bamboo
        // is the one kind that both aborts (wound/cascade) and deadlocks
        // (gate-wait cycles).
        for k in ProtocolKind::ALL {
            if k.may_deadlock() && k != ProtocolKind::Bamboo {
                assert!(!k.may_abort(), "{k}");
            }
        }
        assert!(ProtocolKind::TwoPlPi.may_deadlock());
        assert!(!ProtocolKind::PcpDa.may_deadlock());
        assert!(ProtocolKind::Bamboo.may_deadlock() && ProtocolKind::Bamboo.may_abort());
        assert!(!ProtocolKind::Brook2Pl.may_deadlock() && ProtocolKind::Brook2Pl.may_abort());
        // Shardable kinds are exactly the standard line-up minus CCP
        // (install-on-early-release breaks cross-shard commit atomicity)
        // and minus the early-release kinds (global retired lists and a
        // global dependency graph make per-shard instances unsound, v1).
        let unshardable_standard = [
            ProtocolKind::Ccp,
            ProtocolKind::Bamboo,
            ProtocolKind::Brook2Pl,
        ];
        for k in ProtocolKind::ALL {
            assert_eq!(
                k.shardable(),
                k.is_standard() && !unshardable_standard.contains(&k),
                "{k}"
            );
        }
        let table = ProtocolKind::markdown_table();
        for k in ProtocolKind::ALL {
            assert!(table.contains(k.name()));
        }
    }
}
