//! Incremental system-ceiling index.
//!
//! The scan-based `Sysceil` computations in [`crate::ceilings`] walk the
//! whole lock table on every query — O(items × holders) work that sits on
//! the hottest path of every protocol decision. This module maintains the
//! same quantities *incrementally*: one `FlavorIndex` per protocol
//! flavor (PCP-DA read ceilings, RW-PCP mode-dependent ceilings, PCP
//! any-mode ceilings), each a multiset of active per-lock ceiling
//! contributions, updated in O(log n) on lock acquire / release / upgrade
//! and queried in O(1) for `Sysceil` *with respect to `who`*.
//!
//! # Contribution model
//!
//! Every held lock contributes `(level, holder)` pairs:
//!
//! * **PCP-DA** — a read lock on `x` contributes `Wceil(x)`; write locks
//!   contribute nothing (paper §4.2);
//! * **RW-PCP** — a read lock contributes `Wceil(x)`, a write lock
//!   contributes `Aceil(x)` (the run-time `RWceil`);
//! * **PCP** — each *distinct* holder of `x` contributes `Aceil(x)` once,
//!   regardless of mode (an upgrade does not double-count).
//!
//! Dummy-ceiling levels are never inserted, mirroring the scans.
//!
//! `Sysceil_who` is then the maximum level over contributions whose
//! holder differs from `who`, together with every distinct holder at that
//! level other than `who` (the paper's `T*` candidates).
//!
//! # O(1) exclusion without rescans
//!
//! The subtle case is a query by the very instance that holds the top of
//! the multiset. Each flavor therefore caches **two ceilings with
//! provably different holder sets**: the top level, and — only when the
//! top level has a *single* distinct holder `a` — the highest level that
//! contains some holder other than `a`. A query by `who ≠ a` answers with
//! the top; a query by `a` answers with the second entry, whose holder
//! set contains a non-`a` instance by construction. Excluding `who`'s own
//! contribution therefore never forces a walk down the level map.
//!
//! The cache is refreshed on update; the refresh walks past consecutive
//! top levels held solely by one instance, a prefix bounded by the number
//! of distinct ceiling values among that instance's own locks (in
//! protocol-reachable states: a handful), giving the O(log n) update.
//!
//! # Equivalence oracles
//!
//! The scan-based functions remain in [`crate::ceilings`] as from-scratch
//! oracles; [`crate::CeilingTable::pcpda_sysceil`] and friends
//! `assert_eq!` index against scan on every query in debug builds (and in
//! release builds under the `oracle-checks` feature).

use crate::ceilings::{CeilingTable, SysCeil};
use rtdb_types::{Ceiling, InstanceId, ItemId, LockMode};
use std::collections::BTreeMap;

/// Distinct holders (with contribution counts) at one ceiling level.
#[derive(Clone, Debug, Default)]
struct LevelHolders {
    counts: BTreeMap<InstanceId, u32>,
}

impl LevelHolders {
    /// True iff the only distinct holder is `a`.
    fn solely(&self, a: InstanceId) -> bool {
        self.counts.len() == 1 && self.counts.keys().next() == Some(&a)
    }
}

/// The cached top-2 ceilings with disjoint holder sets (see module docs).
#[derive(Clone, Copy, Debug)]
struct TopCache {
    /// Highest occupied level.
    top: Ceiling,
    /// `Some(a)` iff `a` is the *single* distinct holder at `top`.
    top_sole: Option<InstanceId>,
    /// Highest level holding someone other than `a` (tracked only when
    /// `top_sole` is set; `None` = no such level).
    second: Option<Ceiling>,
}

/// One protocol flavor's multiset of `(level, holder)` contributions.
#[derive(Clone, Debug, Default)]
struct FlavorIndex {
    levels: BTreeMap<Ceiling, LevelHolders>,
    cache: Option<TopCache>,
}

impl FlavorIndex {
    fn add(&mut self, level: Ceiling, holder: InstanceId) {
        if level.is_dummy() {
            return;
        }
        *self
            .levels
            .entry(level)
            .or_default()
            .counts
            .entry(holder)
            .or_insert(0) += 1;
        self.refresh_cache();
    }

    fn remove(&mut self, level: Ceiling, holder: InstanceId) {
        if level.is_dummy() {
            return;
        }
        let lh = self
            .levels
            .get_mut(&level)
            .expect("removing a contribution that was never added");
        let count = lh
            .counts
            .get_mut(&holder)
            .expect("removing a holder that contributed nothing");
        *count -= 1;
        if *count == 0 {
            lh.counts.remove(&holder);
            if lh.counts.is_empty() {
                self.levels.remove(&level);
            }
        }
        self.refresh_cache();
    }

    fn refresh_cache(&mut self) {
        let Some((&top, lh)) = self.levels.last_key_value() else {
            self.cache = None;
            return;
        };
        if lh.counts.len() >= 2 {
            self.cache = Some(TopCache {
                top,
                top_sole: None,
                second: None,
            });
            return;
        }
        let a = *lh.counts.keys().next().expect("non-empty level");
        let second = self
            .levels
            .range(..top)
            .rev()
            .find(|(_, lh)| !lh.solely(a))
            .map(|(&level, _)| level);
        self.cache = Some(TopCache {
            top,
            top_sole: Some(a),
            second,
        });
    }

    fn query(&self, who: InstanceId) -> SysCeil {
        let Some(cache) = self.cache else {
            return SysCeil::dummy();
        };
        let level = match cache.top_sole {
            Some(a) if a == who => match cache.second {
                Some(level) => level,
                None => return SysCeil::dummy(),
            },
            _ => cache.top,
        };
        let holders = self.levels[&level]
            .counts
            .keys()
            .copied()
            .filter(|&h| h != who)
            .collect();
        SysCeil {
            ceiling: level,
            holders,
        }
    }
}

/// The incremental ceiling index: three `FlavorIndex`es plus the dense
/// static ceilings they are levelled by. Owned by [`crate::LockTable`]
/// (see [`crate::LockTable::with_index`]), which notifies it of every
/// lock-state transition so the two can never drift apart.
#[derive(Clone, Debug)]
pub struct CeilingIndex {
    /// `Wceil(x)` by item index (dummy past the end).
    wceil: Vec<Ceiling>,
    /// `Aceil(x)` by item index.
    aceil: Vec<Ceiling>,
    pcpda: FlavorIndex,
    rwpcp: FlavorIndex,
    pcp: FlavorIndex,
}

impl CeilingIndex {
    /// Index over the static ceilings of `ceilings`.
    pub fn new(ceilings: &CeilingTable) -> Self {
        let max = ceilings.items().map(|i| i.index() + 1).max().unwrap_or(0);
        let mut wceil = vec![Ceiling::Dummy; max];
        let mut aceil = vec![Ceiling::Dummy; max];
        for item in ceilings.items() {
            wceil[item.index()] = ceilings.wceil(item);
            aceil[item.index()] = ceilings.aceil(item);
        }
        CeilingIndex {
            wceil,
            aceil,
            pcpda: FlavorIndex::default(),
            rwpcp: FlavorIndex::default(),
            pcp: FlavorIndex::default(),
        }
    }

    fn wceil(&self, item: ItemId) -> Ceiling {
        self.wceil
            .get(item.index())
            .copied()
            .unwrap_or(Ceiling::Dummy)
    }

    fn aceil(&self, item: ItemId) -> Ceiling {
        self.aceil
            .get(item.index())
            .copied()
            .unwrap_or(Ceiling::Dummy)
    }

    /// A lock was *newly* granted (not an idempotent re-grant).
    /// `first_on_item` is true iff `who` held no lock on `item` in the
    /// other mode before this grant.
    pub(crate) fn on_lock_added(
        &mut self,
        who: InstanceId,
        item: ItemId,
        mode: LockMode,
        first_on_item: bool,
    ) {
        match mode {
            LockMode::Read => {
                self.pcpda.add(self.wceil(item), who);
                self.rwpcp.add(self.wceil(item), who);
            }
            LockMode::Write => {
                self.rwpcp.add(self.aceil(item), who);
            }
        }
        if first_on_item {
            self.pcp.add(self.aceil(item), who);
        }
    }

    /// A held lock was released. `last_on_item` is true iff `who` holds no
    /// lock on `item` in the other mode after this release.
    pub(crate) fn on_lock_removed(
        &mut self,
        who: InstanceId,
        item: ItemId,
        mode: LockMode,
        last_on_item: bool,
    ) {
        match mode {
            LockMode::Read => {
                self.pcpda.remove(self.wceil(item), who);
                self.rwpcp.remove(self.wceil(item), who);
            }
            LockMode::Write => {
                self.rwpcp.remove(self.aceil(item), who);
            }
        }
        if last_on_item {
            self.pcp.remove(self.aceil(item), who);
        }
    }

    /// PCP-DA `Sysceil` with respect to `who`, O(1) plus the holder-set
    /// clone.
    pub fn pcpda_sysceil(&self, who: InstanceId) -> SysCeil {
        self.pcpda.query(who)
    }

    /// RW-PCP `Sysceil` with respect to `who`.
    pub fn rwpcp_sysceil(&self, who: InstanceId) -> SysCeil {
        self.rwpcp.query(who)
    }

    /// Original-PCP `Sysceil` with respect to `who`.
    pub fn pcp_sysceil(&self, who: InstanceId) -> SysCeil {
        self.pcp.query(who)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::Priority;

    fn i(t: u32) -> InstanceId {
        InstanceId::first(rtdb_types::TxnId(t))
    }

    fn at(p: u32) -> Ceiling {
        Ceiling::At(Priority(p))
    }

    #[test]
    fn flavor_index_tracks_max_and_holders() {
        let mut f = FlavorIndex::default();
        assert_eq!(f.query(i(0)), SysCeil::dummy());

        f.add(at(5), i(1));
        f.add(at(3), i(2));
        let q = f.query(i(0));
        assert_eq!(q.ceiling, at(5));
        assert_eq!(q.holders, [i(1)].into_iter().collect());

        // The sole top holder sees the second level instead.
        let q = f.query(i(1));
        assert_eq!(q.ceiling, at(3));
        assert_eq!(q.holders, [i(2)].into_iter().collect());

        f.remove(at(5), i(1));
        assert_eq!(f.query(i(0)).ceiling, at(3));
        f.remove(at(3), i(2));
        assert_eq!(f.query(i(0)), SysCeil::dummy());
    }

    #[test]
    fn sole_holder_of_many_top_levels_never_rescans_wrong() {
        let mut f = FlavorIndex::default();
        // i(1) solely holds the top three levels; i(2) sits below.
        f.add(at(9), i(1));
        f.add(at(8), i(1));
        f.add(at(7), i(1));
        f.add(at(2), i(2));
        let q = f.query(i(1));
        assert_eq!(q.ceiling, at(2));
        assert_eq!(q.holders, [i(2)].into_iter().collect());
        // Everyone else still sees the top.
        assert_eq!(f.query(i(2)).ceiling, at(9));
    }

    #[test]
    fn shared_level_excludes_only_self() {
        let mut f = FlavorIndex::default();
        f.add(at(4), i(1));
        f.add(at(4), i(2));
        let q = f.query(i(1));
        assert_eq!(q.ceiling, at(4));
        assert_eq!(q.holders, [i(2)].into_iter().collect());
    }

    #[test]
    fn multiplicity_is_counted() {
        let mut f = FlavorIndex::default();
        f.add(at(4), i(1));
        f.add(at(4), i(1)); // second contribution, same level+holder
        f.remove(at(4), i(1));
        // One contribution remains.
        assert_eq!(f.query(i(0)).ceiling, at(4));
        f.remove(at(4), i(1));
        assert_eq!(f.query(i(0)), SysCeil::dummy());
    }

    #[test]
    fn dummy_levels_are_ignored() {
        let mut f = FlavorIndex::default();
        f.add(Ceiling::Dummy, i(1));
        assert_eq!(f.query(i(0)), SysCeil::dummy());
    }
}
