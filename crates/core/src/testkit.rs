//! A minimal, self-contained [`EngineView`] for protocol unit tests.
//!
//! The real engine lives in `rtdb-sim`; this view lets the locking
//! conditions be exercised in isolation: tests grant locks and record reads
//! by hand and ask the protocol to decide requests. Base and running
//! priorities coincide here (no scheduling, hence no inheritance).

use crate::{CeilingTable, DepTracker, EngineView, LockTable};
use rtdb_types::{InstanceId, ItemId, LockMode, Priority, TransactionSet};
use std::collections::{BTreeMap, BTreeSet};

/// A static protocol-testing view over a [`TransactionSet`].
pub struct StaticView<'a> {
    set: &'a TransactionSet,
    ceilings: CeilingTable,
    locks: LockTable,
    /// Per-instance `DataRead`, each sorted ascending.
    data_read: BTreeMap<InstanceId, Vec<ItemId>>,
    staged: BTreeMap<InstanceId, Vec<ItemId>>,
    pending: BTreeMap<InstanceId, crate::LockRequest>,
    /// Retired-lock lists and commit dependencies (for early-release
    /// protocol tests; empty unless a test retires something).
    deps: DepTracker,
    /// Sorted list of instances that hold locks or have read something —
    /// recomputed on mutation (this is a test fixture; simplicity wins).
    active: Vec<InstanceId>,
}

impl<'a> StaticView<'a> {
    /// View over `set` with no locks held. The lock table carries the
    /// incremental [`crate::CeilingIndex`], so every protocol unit test
    /// exercises it (and its debug-build equivalence oracle) for free.
    pub fn new(set: &'a TransactionSet) -> Self {
        let ceilings = CeilingTable::new(set);
        let locks = LockTable::with_index(&ceilings);
        StaticView {
            set,
            ceilings,
            locks,
            data_read: BTreeMap::new(),
            staged: BTreeMap::new(),
            pending: BTreeMap::new(),
            deps: DepTracker::new(),
            active: Vec::new(),
        }
    }

    fn refresh_active(&mut self) {
        let mut out: BTreeSet<InstanceId> = self.locks.holders().collect();
        out.extend(self.data_read.keys().copied());
        self.active = out.into_iter().collect();
    }

    /// Record that `who` has staged a write of `item` (for optimistic
    /// validation tests).
    pub fn record_staged_write(&mut self, who: InstanceId, item: ItemId) {
        let staged = self.staged.entry(who).or_default();
        if let Err(i) = staged.binary_search(&item) {
            staged.insert(i, item);
        }
    }

    /// Record that `who` is blocked waiting on `req` (maintains the
    /// pending-request view the commit-order guard consults).
    pub fn set_pending(&mut self, who: InstanceId, req: crate::LockRequest) {
        self.pending.insert(who, req);
    }

    /// Record a granted lock.
    pub fn grant(&mut self, who: InstanceId, item: ItemId, mode: LockMode) {
        self.locks.grant(who, item, mode);
        self.refresh_active();
    }

    /// Release every lock of `who`.
    pub fn release_all(&mut self, who: InstanceId) {
        self.locks.release_all(who);
        self.data_read.remove(&who);
        self.refresh_active();
    }

    /// Record that `who` has read `item` (maintains `DataRead`).
    pub fn record_read(&mut self, who: InstanceId, item: ItemId) {
        let reads = self.data_read.entry(who).or_default();
        if let Err(i) = reads.binary_search(&item) {
            reads.insert(i, item);
        }
        self.refresh_active();
    }

    /// Mutable access to the lock table (for intricate test setups).
    pub fn locks_mut(&mut self) -> &mut LockTable {
        &mut self.locks
    }

    /// Mutable access to the dependency tracker (for early-release tests:
    /// retire writes and register dependencies by hand).
    pub fn deps_mut(&mut self) -> &mut DepTracker {
        &mut self.deps
    }
}

impl EngineView for StaticView<'_> {
    fn set(&self) -> &TransactionSet {
        self.set
    }

    fn locks(&self) -> &LockTable {
        &self.locks
    }

    fn ceilings(&self) -> &CeilingTable {
        &self.ceilings
    }

    fn base_priority(&self, who: InstanceId) -> Priority {
        self.set.priority_of(who.txn)
    }

    fn running_priority(&self, who: InstanceId) -> Priority {
        self.set.priority_of(who.txn)
    }

    fn data_read(&self, who: InstanceId) -> &[ItemId] {
        self.data_read.get(&who).map_or(&[], |v| v.as_slice())
    }

    fn pending_request(&self, who: InstanceId) -> Option<crate::LockRequest> {
        self.pending.get(&who).copied()
    }

    fn active_instances(&self) -> &[InstanceId] {
        &self.active
    }

    fn staged_write_items(&self, who: InstanceId) -> Vec<ItemId> {
        self.staged.get(&who).cloned().unwrap_or_default()
    }

    fn deps(&self) -> Option<&DepTracker> {
        Some(&self.deps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{SetBuilder, Step, TransactionTemplate, TxnId};

    #[test]
    fn static_view_reports_priorities_and_reads() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                10,
                vec![Step::read(ItemId(0), 1)],
            ))
            .build()
            .unwrap();
        let mut v = StaticView::new(&set);
        let a = InstanceId::first(TxnId(0));
        assert!(v.base_priority(a) > v.base_priority(InstanceId::first(TxnId(1))));
        assert!(v.data_read(a).is_empty());
        v.record_read(a, ItemId(0));
        assert!(v.data_read(a).contains(&ItemId(0)));
        assert_eq!(v.active_instances(), &[a]);
        v.grant(a, ItemId(0), LockMode::Read);
        assert!(v.locks().holds(a, ItemId(0), LockMode::Read));
        v.release_all(a);
        assert!(!v.locks().holds(a, ItemId(0), LockMode::Read));
        assert!(v.active_instances().is_empty());
    }
}
