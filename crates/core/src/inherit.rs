//! Priority inheritance.
//!
//! "If a transaction blocks a higher priority transaction, its running
//! priority will inherit that of the higher priority transaction" (paper
//! §5). Inheritance is transitive: if `T_3` blocks `T_2` which blocks
//! `T_1`, `T_3` runs at `P_1`. A transaction returns to its original
//! priority when the blocking edge disappears (here: when the engine clears
//! the edge after a release re-evaluation).
//!
//! The tracker recomputes running priorities by fixpoint iteration over the
//! current blocking edges. The edge set is tiny (bounded by the number of
//! live instances), so the simple algorithm is both obviously correct and
//! fast enough. Entries live in one id-sorted `Vec` — the live-instance
//! population is small and churns constantly, so binary search over a dense
//! vector beats tree maps, and the per-entry blocker `Vec`s are recycled
//! across block/unblock cycles instead of reallocated.

use rtdb_types::{InstanceId, Priority};

#[derive(Clone, Debug)]
struct Entry {
    id: InstanceId,
    base: Priority,
    running: Priority,
    /// True if a blocking edge is currently recorded for `id`.
    blocked: bool,
    /// The instances blocking `id`; meaningful only while `blocked`.
    /// Kept allocated across cycles.
    blockers: Vec<InstanceId>,
}

/// Base priorities plus the current blocking edges, yielding running
/// priorities.
#[derive(Clone, Debug, Default)]
pub struct PriorityManager {
    /// Live instances, sorted by id.
    entries: Vec<Entry>,
}

impl PriorityManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn idx(&self, who: InstanceId) -> Option<usize> {
        self.entries.binary_search_by_key(&who, |e| e.id).ok()
    }

    /// Register a live instance with its original priority.
    pub fn register(&mut self, who: InstanceId, base: Priority) {
        match self.entries.binary_search_by_key(&who, |e| e.id) {
            Ok(i) => {
                let e = &mut self.entries[i];
                e.base = base;
                e.running = base;
                e.blocked = false;
                e.blockers.clear();
                self.recompute();
            }
            Err(i) => {
                // A fresh instance has no edges, so no running priority
                // (its own included) can change: skip the recompute.
                self.entries.insert(
                    i,
                    Entry {
                        id: who,
                        base,
                        running: base,
                        blocked: false,
                        blockers: Vec::new(),
                    },
                );
            }
        }
    }

    /// Remove a completed/aborted instance and any edges touching it.
    pub fn remove(&mut self, who: InstanceId) {
        if let Some(i) = self.idx(who) {
            self.entries.remove(i);
        }
        for e in &mut self.entries {
            if e.blocked {
                e.blockers.retain(|&b| b != who);
                if e.blockers.is_empty() {
                    e.blocked = false;
                }
            }
        }
        self.recompute();
    }

    /// Record that `blocked` is currently blocked by `blockers`
    /// (replacing any previous edge for `blocked`).
    pub fn set_blocked(&mut self, blocked: InstanceId, blockers: &[InstanceId]) {
        debug_assert!(!blockers.contains(&blocked));
        let i = self.idx(blocked).expect("set_blocked on unregistered id");
        let e = &mut self.entries[i];
        e.blocked = true;
        e.blockers.clear();
        e.blockers.extend_from_slice(blockers);
        self.recompute();
    }

    /// Clear `blocked`'s edge (its request was granted or re-evaluated).
    pub fn clear_blocked(&mut self, blocked: InstanceId) {
        if let Some(i) = self.idx(blocked) {
            if self.entries[i].blocked {
                self.entries[i].blocked = false;
                self.entries[i].blockers.clear();
                self.recompute();
            }
        }
    }

    /// Original priority.
    ///
    /// # Panics
    /// Panics if `who` was never registered.
    pub fn base(&self, who: InstanceId) -> Priority {
        self.entries[self.idx(who).expect("unregistered instance")].base
    }

    /// Current running priority (base joined with every priority inherited
    /// through the blocking edges, transitively).
    ///
    /// # Panics
    /// Panics if `who` was never registered.
    pub fn running(&self, who: InstanceId) -> Priority {
        self.entries[self.idx(who).expect("unregistered instance")].running
    }

    /// The instances currently blocking `who`, if any.
    pub fn blockers_of(&self, who: InstanceId) -> Option<&[InstanceId]> {
        self.idx(who).and_then(|i| {
            let e = &self.entries[i];
            e.blocked.then_some(e.blockers.as_slice())
        })
    }

    /// True if `who` is currently marked blocked.
    pub fn is_blocked(&self, who: InstanceId) -> bool {
        self.idx(who).is_some_and(|i| self.entries[i].blocked)
    }

    /// All current blocking edges (blocked -> blockers), ascending by
    /// blocked id, for the wait-for graph.
    pub fn edges(&self) -> impl Iterator<Item = (InstanceId, &[InstanceId])> {
        self.entries
            .iter()
            .filter(|e| e.blocked)
            .map(|e| (e.id, e.blockers.as_slice()))
    }

    /// True if any blocking edge is currently recorded.
    pub fn has_edges(&self) -> bool {
        self.entries.iter().any(|e| e.blocked)
    }

    /// Is anyone registered?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn recompute(&mut self) {
        // Start from base priorities.
        for e in &mut self.entries {
            e.running = e.base;
        }
        // Propagate to fixpoint: each pass pushes the blocked instance's
        // running priority into its blockers. At most n passes are needed
        // (each pass extends the longest settled chain by one).
        let n = self.entries.len();
        for _ in 0..n {
            let mut changed = false;
            for i in 0..self.entries.len() {
                if !self.entries[i].blocked {
                    continue;
                }
                let p = self.entries[i].running;
                for k in 0..self.entries[i].blockers.len() {
                    let b = self.entries[i].blockers[k];
                    if let Some(j) = self.idx(b) {
                        if self.entries[j].running < p {
                            self.entries[j].running = p;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    fn mgr3() -> PriorityManager {
        let mut m = PriorityManager::new();
        m.register(i(0), Priority(3)); // T1, highest
        m.register(i(1), Priority(2));
        m.register(i(2), Priority(1));
        m
    }

    #[test]
    fn no_edges_means_base_priorities() {
        let m = mgr3();
        assert_eq!(m.running(i(0)), Priority(3));
        assert_eq!(m.running(i(2)), Priority(1));
        assert!(!m.is_blocked(i(2)));
    }

    #[test]
    fn direct_inheritance() {
        let mut m = mgr3();
        m.set_blocked(i(0), &[i(2)]); // T3 blocks T1
        assert_eq!(m.running(i(2)), Priority(3));
        assert_eq!(m.base(i(2)), Priority(1));
        m.clear_blocked(i(0));
        assert_eq!(m.running(i(2)), Priority(1));
    }

    #[test]
    fn transitive_inheritance() {
        let mut m = mgr3();
        m.set_blocked(i(0), &[i(1)]); // T2 blocks T1
        m.set_blocked(i(1), &[i(2)]); // T3 blocks T2
        assert_eq!(m.running(i(1)), Priority(3));
        assert_eq!(m.running(i(2)), Priority(3)); // inherited through T2
    }

    #[test]
    fn inheritance_is_max_not_sum() {
        let mut m = mgr3();
        m.set_blocked(i(0), &[i(2)]);
        m.set_blocked(i(1), &[i(2)]); // T3 blocks both T1 and T2
        assert_eq!(m.running(i(2)), Priority(3));
    }

    #[test]
    fn higher_priority_blocker_is_unaffected() {
        let mut m = mgr3();
        m.set_blocked(i(2), &[i(0)]); // T1 "blocks" T3 (conflict hold)
        assert_eq!(m.running(i(0)), Priority(3)); // no change
    }

    #[test]
    fn removal_clears_edges_and_restores() {
        let mut m = mgr3();
        m.set_blocked(i(0), &[i(2)]);
        assert_eq!(m.running(i(2)), Priority(3));
        m.remove(i(0)); // the blocked transaction disappears
        assert_eq!(m.running(i(2)), Priority(1));
        assert!(!m.has_edges());
    }

    #[test]
    fn paper_example1_inheritance_chain() {
        // Example 1: T3 write-locks x; T2 blocked (ceiling) -> T3 inherits
        // P2; then T1 blocked (conflict) -> T3 inherits P1.
        let mut m = mgr3();
        m.set_blocked(i(1), &[i(2)]);
        assert_eq!(m.running(i(2)), Priority(2));
        m.set_blocked(i(0), &[i(2)]);
        assert_eq!(m.running(i(2)), Priority(3));
    }

    #[test]
    fn edges_iterates_blocked_entries_in_id_order() {
        let mut m = mgr3();
        m.set_blocked(i(2), &[i(0)]);
        m.set_blocked(i(1), &[i(2)]);
        let got: Vec<(InstanceId, Vec<InstanceId>)> =
            m.edges().map(|(b, bs)| (b, bs.to_vec())).collect();
        assert_eq!(got, vec![(i(1), vec![i(2)]), (i(2), vec![i(0)])]);
    }
}
