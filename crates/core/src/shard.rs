//! Sharded-ceiling substrate: item→shard routing and the lock-free
//! global-ceiling coordination layer (DESIGN.md §6e).
//!
//! DPCP-p generalizes the priority-ceiling family to partitioned
//! resources: each partition keeps *local* ceilings and decisions, and a
//! thin global rule coordinates transactions that span partitions. This
//! module is the protocol-agnostic half of that design, shared by the
//! runtime's sharded lock manager and the simulator's multi-shard mode:
//!
//! * [`ShardRouter`] — the static partitioning rule. Items map to shards
//!   by index modulo the shard count, so a template's shard set is a
//!   deterministic function of the transaction set and both layers
//!   (runtime, simulator, workload generator) agree on it by
//!   construction.
//! * [`ShardSet`] — a bitmask over shards in **canonical (ascending)
//!   order**. Cross-shard transactions always enter shards in this
//!   order, which is what keeps shard-level acquisition cycle-free.
//! * [`GlobalCeiling`] — the published-per-shard ceiling max. Every
//!   shard publishes its local system ceiling (one `Release` store) when
//!   a lock-table transition changes it; the cross-shard admission test
//!   reads the max over the shards a transaction will touch without
//!   taking any shard's lock. The test is *advisory*: a stale read can
//!   only delay or admit early, never corrupt shard-local state, so the
//!   publication protocol needs no fences beyond the store itself.

use crate::waitfor::WaitForGraph;
use rtdb_types::{Ceiling, InstanceId, ItemId, Priority, TransactionSet, TxnId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hard cap on shards: a [`ShardSet`] is a `u64` bitmask.
pub const MAX_SHARDS: usize = 64;

/// A set of shard indices, iterated in canonical (ascending) order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSet(u64);

impl ShardSet {
    /// The empty set.
    pub const EMPTY: ShardSet = ShardSet(0);

    /// Insert a shard index.
    pub fn insert(&mut self, shard: usize) {
        debug_assert!(shard < MAX_SHARDS);
        self.0 |= 1 << shard;
    }

    /// True if `shard` is in the set.
    pub fn contains(self, shard: usize) -> bool {
        shard < MAX_SHARDS && self.0 & (1 << shard) != 0
    }

    /// Number of shards in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if the set spans more than one shard.
    pub fn is_cross_shard(self) -> bool {
        self.len() > 1
    }

    /// Lowest shard index in the set — the *home* shard of a transaction
    /// (where its Begin/Commit events are logged).
    pub fn home(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterate the shard indices in canonical (ascending) order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let s = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(s)
            }
        })
    }
}

/// The static item→shard partitioning rule.
///
/// Items hash by index modulo the shard count. The rule is shared
/// verbatim by the runtime's sharded manager, the simulator's multi-shard
/// mode and the partitioned workload generator, so "partition `p` of the
/// workload" and "shard `p` of the manager" coincide whenever the two
/// counts agree.
#[derive(Clone, Copy, Debug)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Router over `shards` partitions (clamped to `1..=MAX_SHARDS`).
    pub fn new(shards: usize) -> Self {
        ShardRouter {
            shards: shards.clamp(1, MAX_SHARDS),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `item`.
    #[inline]
    pub fn shard_of(&self, item: ItemId) -> usize {
        item.0 as usize % self.shards
    }

    /// The set of shards a template's data steps touch. Templates with no
    /// data steps report their would-be home shard (shard 0) so every
    /// transaction has a home to log Begin/Commit in.
    pub fn shards_of(&self, set: &TransactionSet, txn: TxnId) -> ShardSet {
        let mut out = ShardSet::EMPTY;
        for step in &set.template(txn).steps {
            if let Some((item, _)) = step.op.access() {
                out.insert(self.shard_of(item));
            }
        }
        if out.is_empty() {
            out.insert(0);
        }
        out
    }
}

/// Encode a [`Ceiling`] into the `u64` a shard publishes: `Dummy` → 0,
/// `At(p)` → `p.level() + 1`. The encoding is order-preserving, so the
/// published max over shards decodes to the max ceiling.
pub fn encode_ceiling(c: Ceiling) -> u64 {
    match c.priority() {
        None => 0,
        Some(p) => u64::from(p.level()) + 1,
    }
}

/// Inverse of [`encode_ceiling`].
pub fn decode_ceiling(e: u64) -> Ceiling {
    if e == 0 {
        Ceiling::Dummy
    } else {
        Ceiling::At(Priority((e - 1) as u32))
    }
}

/// The lock-free global-ceiling coordination layer: one published slot
/// per shard, written by that shard alone (under its own state lock) and
/// read by anyone without coordination.
///
/// Single-shard transactions never consult this — their shard's local
/// ceiling already governs them. Cross-shard transactions run the
/// *advisory* admission test [`GlobalCeiling::cleared_by`] before
/// touching any shard: wait (bounded) until their priority clears the
/// published max of every shard they will enter. Because the test takes
/// no locks it can race a concurrent transition in either direction;
/// both races are benign — admission control here only shapes
/// contention, the per-shard protocols still decide every lock.
#[derive(Debug)]
pub struct GlobalCeiling {
    published: Vec<AtomicU64>,
    publishes: Vec<AtomicU64>,
}

impl GlobalCeiling {
    /// Layer over `shards` shards, all ceilings initially `Dummy`.
    pub fn new(shards: usize) -> Self {
        GlobalCeiling {
            published: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            publishes: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.published.len()
    }

    /// Publish shard `shard`'s local system ceiling. Called by the shard
    /// itself, under its own state lock, when a lock-table transition
    /// changed the ceiling.
    pub fn publish(&self, shard: usize, ceiling: Ceiling) {
        self.published[shard].store(encode_ceiling(ceiling), Ordering::Release);
        self.publishes[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// The last ceiling shard `shard` published.
    pub fn shard_ceiling(&self, shard: usize) -> Ceiling {
        decode_ceiling(self.published[shard].load(Ordering::Acquire))
    }

    /// Times shard `shard` published (telemetry).
    pub fn publish_count(&self, shard: usize) -> u64 {
        self.publishes[shard].load(Ordering::Relaxed)
    }

    /// Max published ceiling over `shards` (the whole system when every
    /// bit is set).
    pub fn max_over(&self, shards: ShardSet) -> Ceiling {
        let mut max = Ceiling::Dummy;
        for s in shards.iter() {
            if s < self.published.len() {
                max = max.max(self.shard_ceiling(s));
            }
        }
        max
    }

    /// The advisory cross-shard admission test: does `priority` clear the
    /// published ceiling max of every shard in `shards`?
    pub fn cleared_by(&self, priority: Priority, shards: ShardSet) -> bool {
        self.max_over(shards).cleared_by(priority)
    }
}

/// Deadlock-victim rule shared by both runtime lock managers and the
/// simulator: the lowest-base-priority instance on the cycle, ties broken
/// toward the smaller id. Factored here so sharded managers and the
/// engine resolve identically.
pub fn deadlock_victim(
    cycle: &[InstanceId],
    mut base_of: impl FnMut(InstanceId) -> Priority,
) -> InstanceId {
    cycle
        .iter()
        .copied()
        .min_by_key(|&v| (base_of(v), v))
        .expect("cycle is non-empty")
}

/// Detect a wait-for cycle over `edges` and pick its victim, in one step.
pub fn find_deadlock_victim<'e>(
    edges: impl Iterator<Item = (InstanceId, &'e [InstanceId])>,
    base_of: impl FnMut(InstanceId) -> Priority,
) -> Option<(Vec<InstanceId>, InstanceId)> {
    let cycle = WaitForGraph::from_edges(edges).find_cycle()?;
    let victim = deadlock_victim(&cycle, base_of);
    Some((cycle, victim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{SetBuilder, Step, TransactionTemplate};

    #[test]
    fn shard_set_iterates_in_canonical_order() {
        let mut s = ShardSet::EMPTY;
        s.insert(5);
        s.insert(0);
        s.insert(3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 5]);
        assert_eq!(s.home(), Some(0));
        assert_eq!(s.len(), 3);
        assert!(s.is_cross_shard());
        assert!(s.contains(3) && !s.contains(4));
        assert_eq!(ShardSet::EMPTY.home(), None);
        let mut single = ShardSet::EMPTY;
        single.insert(2);
        assert!(!single.is_cross_shard());
    }

    #[test]
    fn router_partitions_by_modulo() {
        let r = ShardRouter::new(4);
        assert_eq!(r.shard_of(ItemId(0)), 0);
        assert_eq!(r.shard_of(ItemId(5)), 1);
        assert_eq!(r.shard_of(ItemId(7)), 3);
        assert_eq!(ShardRouter::new(0).shards(), 1, "clamped to one shard");
        assert_eq!(ShardRouter::new(1 << 20).shards(), MAX_SHARDS);
    }

    #[test]
    fn template_shard_sets_follow_the_items() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                10,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(2), 1)],
            ))
            .with(TransactionTemplate::new("B", 20, vec![Step::compute(1)]))
            .build()
            .unwrap();
        let r = ShardRouter::new(2);
        let a = r.shards_of(&set, TxnId(0));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0]);
        assert!(!a.is_cross_shard(), "items 0 and 2 share shard 0 of 2");
        // A compute-only template still gets a home shard.
        assert_eq!(r.shards_of(&set, TxnId(1)).home(), Some(0));
        let r4 = ShardRouter::new(4);
        assert!(r4.shards_of(&set, TxnId(0)).is_cross_shard());
    }

    #[test]
    fn ceiling_encoding_roundtrips_and_preserves_order() {
        for c in [
            Ceiling::Dummy,
            Ceiling::At(Priority(0)),
            Ceiling::At(Priority(7)),
            Ceiling::At(Priority::MAX),
        ] {
            assert_eq!(decode_ceiling(encode_ceiling(c)), c);
        }
        assert!(encode_ceiling(Ceiling::Dummy) < encode_ceiling(Ceiling::At(Priority(0))));
        assert!(
            encode_ceiling(Ceiling::At(Priority(1))) < encode_ceiling(Ceiling::At(Priority(2)))
        );
    }

    #[test]
    fn global_ceiling_publishes_and_maxes() {
        let g = GlobalCeiling::new(4);
        let mut all = ShardSet::EMPTY;
        (0..4).for_each(|s| all.insert(s));
        assert_eq!(g.max_over(all), Ceiling::Dummy);
        assert!(g.cleared_by(Priority(0), all), "everything clears Dummy");

        g.publish(1, Ceiling::At(Priority(5)));
        g.publish(3, Ceiling::At(Priority(2)));
        assert_eq!(g.shard_ceiling(1), Ceiling::At(Priority(5)));
        assert_eq!(g.max_over(all), Ceiling::At(Priority(5)));
        assert!(!g.cleared_by(Priority(5), all), "equal does not clear");
        assert!(g.cleared_by(Priority(6), all));
        // A set avoiding the hot shard only sees the lower ceiling.
        let mut cold = ShardSet::EMPTY;
        cold.insert(0);
        cold.insert(3);
        assert_eq!(g.max_over(cold), Ceiling::At(Priority(2)));
        assert!(g.cleared_by(Priority(3), cold));
        assert_eq!(g.publish_count(1), 1);
        assert_eq!(g.publish_count(0), 0);
    }

    #[test]
    fn deadlock_victim_prefers_lowest_base_then_id() {
        let a = InstanceId::new(TxnId(0), 0);
        let b = InstanceId::new(TxnId(1), 0);
        let c = InstanceId::new(TxnId(2), 0);
        let base = |who: InstanceId| match who.txn.0 {
            0 => Priority(3),
            1 => Priority(1),
            _ => Priority(1),
        };
        assert_eq!(deadlock_victim(&[a, b, c], base), b, "tie broken by id");
    }
}
