//! Protocol-agnostic concurrency-control kernel.
//!
//! This crate is the interface layer between the simulation engine and
//! the concurrency-control protocols: it defines *what a protocol is*
//! ([`Protocol`]), *what a protocol may observe* ([`EngineView`]), and the
//! shared lock/ceiling substrate every priority-ceiling-style protocol
//! needs, so that each protocol implementation (PCP-DA in `rtdb-cc`, the
//! baselines in `rtdb-baselines`) is only its *locking conditions*:
//!
//! * [`ProtocolFor`] — the trait a concurrency-control protocol
//!   implements, generic over the view type so the engine's steady-state
//!   loop monomorphizes both sides (no vtable on either the protocol or
//!   the view); the simulation engine calls [`ProtocolFor::request`] and
//!   applies the returned [`Decision`]. Its view-erased, object-safe face
//!   is [`Protocol`]: every blanket `ProtocolFor` implementor gets it for
//!   free, so `Box<dyn Protocol>` keeps working, and the [`DynProtocol`]
//!   adapter carries such an object back into the monomorphized loop;
//! * [`ProtocolKind`] — the registry: one enum naming every protocol the
//!   workspace implements, with parsing, display and static metadata
//!   (family, update model, abort/deadlock behaviour). Every protocol
//!   line-up in the workspace derives from [`ProtocolKind::ALL`] or
//!   [`ProtocolKind::STANDARD`];
//! * [`LockTable`] — who holds which item in which mode, plus the wait
//!   queues' raw material. PCP-DA permits several concurrent write locks
//!   on one item (blind writes are non-conflicting under deferred updates,
//!   paper §4.1 Case 3), so the table tracks reader *and* writer sets per
//!   item and supports upgrades;
//! * [`CeilingTable`] — the static ceilings `Wceil(x)`/`HPW(x)` and
//!   `Aceil(x)` derived from a [`rtdb_types::TransactionSet`], and the
//!   dynamic `Sysceil` computations of PCP-DA (read locks only), RW-PCP
//!   (`RWceil`) and the original PCP (`Aceil` for any lock);
//! * [`PriorityManager`] — base priorities plus transitive priority
//!   inheritance over the current blocking edges;
//! * [`waitfor`] — the wait-for graph and deadlock detection;
//! * [`shard`] — the sharded-ceiling substrate: item→shard routing and
//!   the lock-free published-per-shard global ceiling (DPCP-p style),
//!   shared by the runtime's sharded manager and the simulator's
//!   multi-shard mode;
//! * [`testkit`] — a minimal static [`EngineView`] for protocol unit
//!   tests outside the engine.

#![forbid(unsafe_code)]

pub mod ceiling_index;
pub mod ceilings;
pub mod deps;
pub mod inherit;
pub mod locks;
pub mod protocol;
pub mod registry;
pub mod shard;
pub mod testkit;
pub mod waitfor;

pub use ceiling_index::CeilingIndex;
pub use ceilings::{CeilingTable, SysCeil};
pub use deps::{AbortBreakdown, AbortReason, DepTracker, RetiredWrite};
pub use inherit::PriorityManager;
pub use locks::{HeldLock, LockTable};
pub use protocol::{
    sorted_disjoint, Decision, DynProtocol, EngineView, LockRequest, Protocol, ProtocolFor,
    TxnMode, UpdateModel,
};
pub use registry::{ProtocolFamily, ProtocolKind, UnknownProtocol};
pub use shard::{
    deadlock_victim, find_deadlock_victim, GlobalCeiling, ShardRouter, ShardSet, MAX_SHARDS,
};
pub use waitfor::WaitForGraph;
