//! The lock table.
//!
//! Tracks, per item, the set of read holders and the set of write holders.
//! Unusually for a lock manager, *several* concurrent write holders are
//! representable: under PCP-DA's deferred-update model two blind writes do
//! not conflict (paper §4.1, Case 3), so LC1 admits a write lock regardless
//! of existing write locks. Protocols that forbid this (2PL, RW-PCP, PCP)
//! simply never grant the second write lock.
//!
//! The table is pure bookkeeping: *who may lock what* is decided by a
//! [`crate::Protocol`]; the engine records grants and releases here.
//!
//! # Layout
//!
//! Per-item state lives in a dense `Vec` indexed by `ItemId` (items are
//! small consecutive integers), with sorted small-vector holder sets —
//! no tree nodes on the hot path, and every accessor hands back an
//! iterator over the stored slices instead of allocating. The per-call
//! `Vec` that `release_all` used to build is replaced by an internal
//! scratch buffer returned as a slice.
//!
//! A table built with [`LockTable::with_index`] additionally carries a
//! [`CeilingIndex`] that it notifies of every state *transition* (grants
//! and releases are idempotent, so no-ops never reach the index), keeping
//! the incremental `Sysceil` multisets exactly in sync with the holder
//! sets by construction.

use crate::ceiling_index::CeilingIndex;
use crate::ceilings::CeilingTable;
use rtdb_types::{InstanceId, ItemId, LockMode};
use std::collections::BTreeMap;

/// One lock held by an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct HeldLock {
    /// Locked item.
    pub item: ItemId,
    /// Mode held.
    pub mode: LockMode,
}

#[derive(Clone, Debug, Default)]
struct ItemLocks {
    /// Sorted.
    readers: Vec<InstanceId>,
    /// Sorted.
    writers: Vec<InstanceId>,
}

impl ItemLocks {
    fn is_empty(&self) -> bool {
        self.readers.is_empty() && self.writers.is_empty()
    }

    fn set(&mut self, mode: LockMode) -> &mut Vec<InstanceId> {
        match mode {
            LockMode::Read => &mut self.readers,
            LockMode::Write => &mut self.writers,
        }
    }

    /// Insert into the sorted holder vec; false if already present.
    fn insert(&mut self, mode: LockMode, who: InstanceId) -> bool {
        let set = self.set(mode);
        match set.binary_search(&who) {
            Ok(_) => false,
            Err(pos) => {
                set.insert(pos, who);
                true
            }
        }
    }

    /// Remove from the sorted holder vec; false if absent.
    fn remove(&mut self, mode: LockMode, who: InstanceId) -> bool {
        let set = self.set(mode);
        match set.binary_search(&who) {
            Ok(pos) => {
                set.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    fn holds(&self, mode: LockMode, who: InstanceId) -> bool {
        match mode {
            LockMode::Read => self.readers.binary_search(&who).is_ok(),
            LockMode::Write => self.writers.binary_search(&who).is_ok(),
        }
    }
}

/// The lock table of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    /// Dense per-item state, indexed by `ItemId::index()`; grown on demand.
    items: Vec<ItemLocks>,
    /// Number of items with at least one holder.
    locked_count: usize,
    // Reverse index: instance -> its held locks (sorted).
    held: BTreeMap<InstanceId, Vec<HeldLock>>,
    /// Reused by [`LockTable::release_all`].
    scratch: Vec<HeldLock>,
    /// Monotone state-transition counter (idempotent no-ops don't bump).
    version: u64,
    /// Incremental `Sysceil` index, when enabled.
    index: Option<CeilingIndex>,
}

impl LockTable {
    /// Empty table without an incremental ceiling index (`Sysceil` queries
    /// fall back to the from-scratch scans).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty table carrying a [`CeilingIndex`] over `ceilings`: `Sysceil`
    /// queries become O(1) lookups kept in sync with every grant/release.
    pub fn with_index(ceilings: &CeilingTable) -> Self {
        LockTable {
            index: Some(CeilingIndex::new(ceilings)),
            ..Self::default()
        }
    }

    /// The incremental ceiling index, if this table carries one.
    pub fn index(&self) -> Option<&CeilingIndex> {
        self.index.as_ref()
    }

    /// Monotone state-transition counter: two equal versions guarantee an
    /// unchanged lock state, so `Sysceil`-derived values can be memoized
    /// against it (see `rtdb-core`'s per-round `hard_blocked_on` memo).
    pub fn version(&self) -> u64 {
        self.version
    }

    fn item_locks_mut(&mut self, item: ItemId) -> &mut ItemLocks {
        let idx = item.index();
        if idx >= self.items.len() {
            self.items.resize_with(idx + 1, ItemLocks::default);
        }
        &mut self.items[idx]
    }

    fn item_locks(&self, item: ItemId) -> Option<&ItemLocks> {
        self.items.get(item.index())
    }

    /// Record a granted lock. Granting a mode already held is a no-op
    /// (idempotent), so upgrades just add the second mode.
    pub fn grant(&mut self, who: InstanceId, item: ItemId, mode: LockMode) {
        let locks = self.item_locks_mut(item);
        let was_empty = locks.is_empty();
        let other_mode_held = locks.holds(mode.other(), who);
        if !locks.insert(mode, who) {
            return; // idempotent re-grant
        }
        self.version += 1;
        if was_empty {
            self.locked_count += 1;
        }
        let held = self.held.entry(who).or_default();
        let lock = HeldLock { item, mode };
        if let Err(pos) = held.binary_search(&lock) {
            held.insert(pos, lock);
        }
        if let Some(ix) = self.index.as_mut() {
            ix.on_lock_added(who, item, mode, !other_mode_held);
        }
    }

    /// Release one lock (CCP's early unlock). No-op if not held.
    pub fn release(&mut self, who: InstanceId, item: ItemId, mode: LockMode) {
        let Some(locks) = self.items.get_mut(item.index()) else {
            return;
        };
        if !locks.remove(mode, who) {
            return; // not held
        }
        self.version += 1;
        if locks.is_empty() {
            self.locked_count -= 1;
        }
        let other_mode_held = locks.holds(mode.other(), who);
        if let Some(held) = self.held.get_mut(&who) {
            let lock = HeldLock { item, mode };
            if let Ok(pos) = held.binary_search(&lock) {
                held.remove(pos);
            }
            if held.is_empty() {
                self.held.remove(&who);
            }
        }
        if let Some(ix) = self.index.as_mut() {
            ix.on_lock_removed(who, item, mode, !other_mode_held);
        }
    }

    /// Release every lock held by `who` (commit or abort); returns them as
    /// a slice of an internal scratch buffer (valid until the next call).
    pub fn release_all(&mut self, who: InstanceId) -> &[HeldLock] {
        self.scratch.clear();
        let Some(held) = self.held.remove(&who) else {
            return &self.scratch;
        };
        self.scratch.extend_from_slice(&held);
        for &HeldLock { item, mode } in &held {
            let locks = &mut self.items[item.index()];
            locks.remove(mode, who);
            self.version += 1;
            if locks.is_empty() {
                self.locked_count -= 1;
            }
            let other_mode_held = locks.holds(mode.other(), who);
            if let Some(ix) = self.index.as_mut() {
                ix.on_lock_removed(who, item, mode, !other_mode_held);
            }
        }
        &self.scratch
    }

    /// True if `who` holds `item` in `mode`.
    pub fn holds(&self, who: InstanceId, item: ItemId, mode: LockMode) -> bool {
        self.item_locks(item)
            .is_some_and(|locks| locks.holds(mode, who))
    }

    /// True if a lock `who` already holds makes a request for `item` in
    /// `mode` redundant: an exact re-grant is idempotent, and a write lock
    /// covers reads (the reader sees its own staged value). Shared by the
    /// simulator's dispatch and the threaded runtime's lock manager so
    /// both skip the protocol on covered requests identically.
    pub fn covers(&self, who: InstanceId, item: ItemId, mode: LockMode) -> bool {
        match mode {
            LockMode::Read => {
                self.holds(who, item, LockMode::Read) || self.holds(who, item, LockMode::Write)
            }
            LockMode::Write => self.holds(who, item, LockMode::Write),
        }
    }

    /// All locks held by `who`.
    pub fn held_by(&self, who: InstanceId) -> impl Iterator<Item = HeldLock> + '_ {
        self.held.get(&who).into_iter().flatten().copied()
    }

    /// Read holders of `item`.
    pub fn readers(&self, item: ItemId) -> impl Iterator<Item = InstanceId> + '_ {
        self.item_locks(item)
            .into_iter()
            .flat_map(|l| l.readers.iter().copied())
    }

    /// Write holders of `item`.
    pub fn writers(&self, item: ItemId) -> impl Iterator<Item = InstanceId> + '_ {
        self.item_locks(item)
            .into_iter()
            .flat_map(|l| l.writers.iter().copied())
    }

    /// `No_Rlock(x)` of the paper: true if `item` is *not* read-locked by
    /// any transaction other than `who`.
    pub fn no_rlock_by_others(&self, item: ItemId, who: InstanceId) -> bool {
        self.readers(item).all(|r| r == who)
    }

    /// Read holders of `item` other than `who`.
    pub fn readers_other_than(
        &self,
        item: ItemId,
        who: InstanceId,
    ) -> impl Iterator<Item = InstanceId> + '_ {
        self.readers(item).filter(move |&r| r != who)
    }

    /// Write holders of `item` other than `who`.
    pub fn writers_other_than(
        &self,
        item: ItemId,
        who: InstanceId,
    ) -> impl Iterator<Item = InstanceId> + '_ {
        self.writers(item).filter(move |&w| w != who)
    }

    /// Every item currently holding at least one lock (ascending).
    pub fn locked_item_ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(i, _)| ItemId(i as u32))
    }

    /// Items read-locked by transactions other than `who`, with those
    /// holders. Drives PCP-DA's `Sysceil`. Allocation-free: both levels
    /// iterate the stored holder slices directly.
    pub fn read_locked_by_others(
        &self,
        who: InstanceId,
    ) -> impl Iterator<Item = (ItemId, impl Iterator<Item = InstanceId> + '_)> + '_ {
        self.items.iter().enumerate().filter_map(move |(i, locks)| {
            let mut holders = locks
                .readers
                .iter()
                .copied()
                .filter(move |&r| r != who)
                .peekable();
            holders.peek()?;
            Some((ItemId(i as u32), holders))
        })
    }

    /// All instances currently holding at least one lock.
    pub fn holders(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.held.keys().copied()
    }

    /// Number of locked items.
    pub fn locked_items(&self) -> usize {
        self.locked_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    #[test]
    fn grant_and_release_roundtrip() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read);
        lt.grant(i(0), ItemId(1), LockMode::Write);
        assert!(lt.holds(i(0), ItemId(0), LockMode::Read));
        assert!(!lt.holds(i(0), ItemId(0), LockMode::Write));
        assert_eq!(lt.held_by(i(0)).count(), 2);

        let released: Vec<HeldLock> = lt.release_all(i(0)).to_vec();
        assert_eq!(released.len(), 2);
        assert_eq!(lt.held_by(i(0)).count(), 0);
        assert_eq!(lt.locked_items(), 0);
    }

    #[test]
    fn multiple_writers_are_representable() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Write);
        lt.grant(i(1), ItemId(0), LockMode::Write);
        assert_eq!(lt.writers(ItemId(0)).count(), 2);
    }

    #[test]
    fn upgrade_holds_both_modes() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read);
        lt.grant(i(0), ItemId(0), LockMode::Write);
        assert!(lt.holds(i(0), ItemId(0), LockMode::Read));
        assert!(lt.holds(i(0), ItemId(0), LockMode::Write));
        lt.release(i(0), ItemId(0), LockMode::Write);
        assert!(lt.holds(i(0), ItemId(0), LockMode::Read));
        assert_eq!(lt.locked_items(), 1);
    }

    #[test]
    fn no_rlock_ignores_own_read_lock() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read);
        assert!(lt.no_rlock_by_others(ItemId(0), i(0)));
        lt.grant(i(1), ItemId(0), LockMode::Read);
        assert!(!lt.no_rlock_by_others(ItemId(0), i(0)));
        assert_eq!(lt.readers_other_than(ItemId(0), i(0)).count(), 1);
    }

    #[test]
    fn read_locked_by_others_excludes_self_and_write_locks() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read); // own read
        lt.grant(i(1), ItemId(1), LockMode::Write); // other's write
        lt.grant(i(1), ItemId(2), LockMode::Read); // other's read
        let items: Vec<ItemId> = lt.read_locked_by_others(i(0)).map(|(x, _)| x).collect();
        assert_eq!(items, vec![ItemId(2)]);
    }

    #[test]
    fn locked_item_ids_tracks_live_items() {
        let mut lt = LockTable::new();
        lt.grant(i(1), ItemId(3), LockMode::Read);
        lt.grant(i(2), ItemId(0), LockMode::Write);
        let ids: Vec<ItemId> = lt.locked_item_ids().collect();
        assert_eq!(ids, vec![ItemId(0), ItemId(3)]);
        lt.release(i(2), ItemId(0), LockMode::Write);
        let ids: Vec<ItemId> = lt.locked_item_ids().collect();
        assert_eq!(ids, vec![ItemId(3)]);
    }

    #[test]
    fn release_is_idempotent() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read);
        lt.release(i(0), ItemId(0), LockMode::Read);
        lt.release(i(0), ItemId(0), LockMode::Read);
        assert_eq!(lt.locked_items(), 0);
        assert!(lt.release_all(i(0)).is_empty());
    }

    #[test]
    fn grant_is_idempotent() {
        let mut lt = LockTable::new();
        lt.grant(i(0), ItemId(0), LockMode::Read);
        lt.grant(i(0), ItemId(0), LockMode::Read);
        assert_eq!(lt.held_by(i(0)).count(), 1);
        assert_eq!(lt.readers(ItemId(0)).count(), 1);
        lt.release(i(0), ItemId(0), LockMode::Read);
        assert_eq!(lt.locked_items(), 0);
    }

    #[test]
    fn version_counts_transitions_only() {
        let mut lt = LockTable::new();
        assert_eq!(lt.version(), 0);
        lt.grant(i(0), ItemId(0), LockMode::Read);
        let v1 = lt.version();
        assert!(v1 > 0);
        lt.grant(i(0), ItemId(0), LockMode::Read); // idempotent: no bump
        assert_eq!(lt.version(), v1);
        lt.release(i(0), ItemId(0), LockMode::Read);
        assert!(lt.version() > v1);
    }
}
