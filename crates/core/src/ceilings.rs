//! Static and dynamic priority ceilings.
//!
//! Static ceilings are fixed a priori by the transaction set:
//!
//! * `Wceil(x)` / `HPW(x)` — the priority of the highest-priority
//!   transaction that may **write** `x` (the only static ceiling PCP-DA
//!   needs, paper §4.2);
//! * `Aceil(x)` — the priority of the highest-priority transaction that may
//!   read **or** write `x` (RW-PCP and the original PCP).
//!
//! Dynamic system ceilings are computed from the current lock table:
//!
//! * PCP-DA: `Sysceil_i` = max `Wceil(x)` over items **read-locked** by
//!   transactions other than `T_i` (write locks raise no ceiling);
//! * RW-PCP: `Sysceil_i` = max `RWceil(x)` over items locked by others,
//!   where a write lock contributes `Aceil(x)` and a read lock contributes
//!   `Wceil(x)` (the run-time `RWceil`);
//! * PCP: `Sysceil_i` = max `Aceil(x)` over items locked by others.
//!
//! When the lock table carries a [`crate::CeilingIndex`]
//! ([`crate::LockTable::with_index`]), the `*_sysceil` queries are O(1)
//! incremental lookups; the from-scratch scans below remain as their
//! equivalence oracles, `assert_eq!`-checked on every query in debug
//! builds and, under the `oracle-checks` feature, in release builds too.

use crate::locks::LockTable;
use rtdb_types::{Ceiling, InstanceId, ItemId, TransactionSet, TxnId};
use std::collections::{BTreeMap, BTreeSet};

/// Precomputed static ceilings and per-template write sets.
#[derive(Clone, Debug)]
pub struct CeilingTable {
    wceil: BTreeMap<ItemId, Ceiling>,
    aceil: BTreeMap<ItemId, Ceiling>,
    write_sets: Vec<BTreeSet<ItemId>>,
}

/// A dynamic system ceiling together with the instances that hold locks at
/// that level — the candidates for priority inheritance (`T*` in the
/// paper, unique under PCP-DA's invariants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SysCeil {
    /// The ceiling value.
    pub ceiling: Ceiling,
    /// Holders of the item(s) whose ceiling equals the system ceiling.
    /// Empty iff `ceiling` is dummy.
    pub holders: BTreeSet<InstanceId>,
}

impl SysCeil {
    /// The bottom ceiling: nothing relevant is locked.
    pub fn dummy() -> Self {
        SysCeil {
            ceiling: Ceiling::Dummy,
            holders: BTreeSet::new(),
        }
    }
}

/// True when the equivalence oracles should run (debug builds, or any
/// build with the `oracle-checks` feature).
#[inline]
fn oracle_checks_enabled() -> bool {
    cfg!(debug_assertions) || cfg!(feature = "oracle-checks")
}

impl CeilingTable {
    /// Precompute ceilings for a transaction set.
    pub fn new(set: &TransactionSet) -> Self {
        let mut wceil = BTreeMap::new();
        let mut aceil = BTreeMap::new();
        for item in set.items() {
            wceil.insert(item, set.wceil(item));
            aceil.insert(item, set.aceil(item));
        }
        let write_sets = set.templates().iter().map(|t| t.write_set()).collect();
        CeilingTable {
            wceil,
            aceil,
            write_sets,
        }
    }

    /// `Wceil(x)` / `HPW(x)`.
    pub fn wceil(&self, item: ItemId) -> Ceiling {
        self.wceil.get(&item).copied().unwrap_or(Ceiling::Dummy)
    }

    /// `Aceil(x)`.
    pub fn aceil(&self, item: ItemId) -> Ceiling {
        self.aceil.get(&item).copied().unwrap_or(Ceiling::Dummy)
    }

    /// Every item with a precomputed ceiling.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.wceil.keys().copied()
    }

    /// Static `WriteSet(T)` of a template.
    pub fn write_set(&self, txn: TxnId) -> &BTreeSet<ItemId> {
        &self.write_sets[txn.index()]
    }

    /// True if template `txn` may write `item`.
    pub fn may_write(&self, txn: TxnId, item: ItemId) -> bool {
        self.write_sets[txn.index()].contains(&item)
    }

    /// PCP-DA `Sysceil` with respect to `who`: the highest `Wceil(x)` over
    /// all items read-locked by other transactions, with the holders of
    /// the ceiling item(s) (`T*`).
    pub fn pcpda_sysceil(&self, locks: &LockTable, who: InstanceId) -> SysCeil {
        if let Some(ix) = locks.index() {
            let fast = ix.pcpda_sysceil(who);
            if oracle_checks_enabled() {
                let slow = self.pcpda_sysceil_scan(locks, who);
                assert_eq!(
                    fast, slow,
                    "CeilingIndex diverged from the PCP-DA Sysceil scan (who={who})"
                );
            }
            return fast;
        }
        self.pcpda_sysceil_scan(locks, who)
    }

    /// RW-PCP `Sysceil` with respect to `who`: the highest `RWceil(x)` over
    /// all items locked by other transactions.
    ///
    /// `RWceil` is determined at run time by the lock modes present: a
    /// write lock contributes `Aceil(x)`; a read lock contributes
    /// `Wceil(x)`. If both modes are present (an upgrade in progress) the
    /// write-mode ceiling dominates, since `Aceil ≥ Wceil`.
    pub fn rwpcp_sysceil(&self, locks: &LockTable, who: InstanceId) -> SysCeil {
        if let Some(ix) = locks.index() {
            let fast = ix.rwpcp_sysceil(who);
            if oracle_checks_enabled() {
                let slow = self.rwpcp_sysceil_scan(locks, who);
                assert_eq!(
                    fast, slow,
                    "CeilingIndex diverged from the RW-PCP Sysceil scan (who={who})"
                );
            }
            return fast;
        }
        self.rwpcp_sysceil_scan(locks, who)
    }

    /// Original-PCP `Sysceil` with respect to `who`: the highest `Aceil(x)`
    /// over all items locked (in any mode) by other transactions.
    pub fn pcp_sysceil(&self, locks: &LockTable, who: InstanceId) -> SysCeil {
        if let Some(ix) = locks.index() {
            let fast = ix.pcp_sysceil(who);
            if oracle_checks_enabled() {
                let slow = self.pcp_sysceil_scan(locks, who);
                assert_eq!(
                    fast, slow,
                    "CeilingIndex diverged from the PCP Sysceil scan (who={who})"
                );
            }
            return fast;
        }
        self.pcp_sysceil_scan(locks, who)
    }

    /// From-scratch PCP-DA `Sysceil` — the [`Self::pcpda_sysceil`] oracle.
    pub fn pcpda_sysceil_scan(&self, locks: &LockTable, who: InstanceId) -> SysCeil {
        let mut best = SysCeil::dummy();
        for (item, holders) in locks.read_locked_by_others(who) {
            let c = self.wceil(item);
            if c.is_dummy() {
                continue;
            }
            match c.cmp(&best.ceiling) {
                std::cmp::Ordering::Greater => {
                    best.ceiling = c;
                    best.holders = holders.collect();
                }
                std::cmp::Ordering::Equal => best.holders.extend(holders),
                std::cmp::Ordering::Less => {}
            }
        }
        best
    }

    /// From-scratch RW-PCP `Sysceil` — the [`Self::rwpcp_sysceil`] oracle.
    pub fn rwpcp_sysceil_scan(&self, locks: &LockTable, who: InstanceId) -> SysCeil {
        let mut best = SysCeil::dummy();
        for item in locks.locked_item_ids() {
            self.consider(
                &mut best,
                self.wceil(item),
                locks.readers_other_than(item, who),
            );
            self.consider(
                &mut best,
                self.aceil(item),
                locks.writers_other_than(item, who),
            );
        }
        best
    }

    /// From-scratch original-PCP `Sysceil` — the [`Self::pcp_sysceil`]
    /// oracle.
    pub fn pcp_sysceil_scan(&self, locks: &LockTable, who: InstanceId) -> SysCeil {
        let mut best = SysCeil::dummy();
        for item in locks.locked_item_ids() {
            let c = self.aceil(item);
            self.consider(
                &mut best,
                c,
                locks
                    .readers_other_than(item, who)
                    .chain(locks.writers_other_than(item, who)),
            );
        }
        best
    }

    /// Fold one (ceiling, holders) candidate into the running maximum.
    /// Ignores empty holder sets and dummy ceilings.
    fn consider(&self, best: &mut SysCeil, c: Ceiling, holders: impl Iterator<Item = InstanceId>) {
        if c.is_dummy() || c < best.ceiling {
            return;
        }
        let mut holders = holders.peekable();
        if holders.peek().is_none() {
            return;
        }
        if c > best.ceiling {
            best.ceiling = c;
            best.holders.clear();
        }
        best.holders.extend(holders);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{LockMode, SetBuilder, Step, TransactionTemplate};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    /// Paper Example 4 set: T1: R(x); T2: W(y); T3: R(z),W(z); T4: R(y),W(x).
    fn set() -> TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                30,
                vec![Step::read(ItemId(0), 2)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                30,
                vec![Step::write(ItemId(1), 2)],
            ))
            .with(TransactionTemplate::new(
                "T3",
                30,
                vec![Step::read(ItemId(2), 1), Step::write(ItemId(2), 1)],
            ))
            .with(TransactionTemplate::new(
                "T4",
                30,
                vec![
                    Step::read(ItemId(1), 1),
                    Step::write(ItemId(0), 1),
                    Step::compute(3),
                ],
            ))
            .build()
            .unwrap()
    }

    /// Every ceiling test runs twice: on a plain table (scan path) and on
    /// an indexed table (incremental path + oracle assertion).
    fn tables(set: &TransactionSet) -> [(&'static str, CeilingTable, LockTable); 2] {
        let plain = CeilingTable::new(set);
        let indexed = CeilingTable::new(set);
        let lt_indexed = LockTable::with_index(&indexed);
        [
            ("scan", plain, LockTable::new()),
            ("index", indexed, lt_indexed),
        ]
    }

    #[test]
    fn static_ceilings_match_example4() {
        let s = set();
        let c = CeilingTable::new(&s);
        assert_eq!(c.wceil(ItemId(1)), s.priority_of(TxnId(1)).as_ceiling()); // Wceil(y)=P2
        assert_eq!(c.wceil(ItemId(2)), s.priority_of(TxnId(2)).as_ceiling()); // Wceil(z)=P3
        assert_eq!(c.wceil(ItemId(0)), s.priority_of(TxnId(3)).as_ceiling()); // Wceil(x)=P4
        assert_eq!(c.aceil(ItemId(0)), s.priority_of(TxnId(0)).as_ceiling()); // Aceil(x)=P1
        assert!(c.may_write(TxnId(3), ItemId(0)));
        assert!(!c.may_write(TxnId(0), ItemId(0)));
        assert_eq!(c.items().count(), 3);
    }

    #[test]
    fn pcpda_sysceil_counts_only_read_locks() {
        let s = set();
        for (path, c, mut lt) in tables(&s) {
            // T4 write-locks x: raises nothing under PCP-DA.
            lt.grant(i(3), ItemId(0), LockMode::Write);
            assert_eq!(c.pcpda_sysceil(&lt, i(0)).ceiling, Ceiling::Dummy, "{path}");

            // T4 read-locks y: Sysceil = Wceil(y) = P2 for everyone else.
            lt.grant(i(3), ItemId(1), LockMode::Read);
            let sc = c.pcpda_sysceil(&lt, i(2));
            assert_eq!(sc.ceiling, s.priority_of(TxnId(1)).as_ceiling(), "{path}");
            assert_eq!(sc.holders, [i(3)].into_iter().collect(), "{path}");

            // From T4's own perspective the ceiling is still dummy.
            assert_eq!(c.pcpda_sysceil(&lt, i(3)).ceiling, Ceiling::Dummy, "{path}");
        }
    }

    #[test]
    fn rwpcp_sysceil_uses_rwceil() {
        let s = set();
        for (path, c, mut lt) in tables(&s) {
            // T4 read-locks y: RWceil(y) = Wceil(y) = P2.
            lt.grant(i(3), ItemId(1), LockMode::Read);
            assert_eq!(
                c.rwpcp_sysceil(&lt, i(2)).ceiling,
                s.priority_of(TxnId(1)).as_ceiling(),
                "{path}"
            );

            // T4 additionally write-locks x: RWceil(x) = Aceil(x) = P1 dominates.
            lt.grant(i(3), ItemId(0), LockMode::Write);
            let sc = c.rwpcp_sysceil(&lt, i(0));
            assert_eq!(sc.ceiling, s.priority_of(TxnId(0)).as_ceiling(), "{path}");
            assert_eq!(sc.holders, [i(3)].into_iter().collect(), "{path}");
        }
    }

    #[test]
    fn pcp_sysceil_uses_aceil_for_reads_too() {
        let s = set();
        for (path, c, mut lt) in tables(&s) {
            lt.grant(i(3), ItemId(1), LockMode::Read); // y: Aceil(y)=P2
            assert_eq!(
                c.pcp_sysceil(&lt, i(0)).ceiling,
                s.priority_of(TxnId(1)).as_ceiling(),
                "{path}"
            );
        }
    }

    #[test]
    fn ties_collect_all_holders() {
        let s = set();
        for (path, c, mut lt) in tables(&s) {
            // Two different transactions read-lock items with equal Wceil:
            // construct via z (Wceil=P3) read-locked by T1 and T2.
            lt.grant(i(0), ItemId(2), LockMode::Read);
            lt.grant(i(1), ItemId(2), LockMode::Read);
            let sc = c.pcpda_sysceil(&lt, i(3));
            assert_eq!(sc.ceiling, s.priority_of(TxnId(2)).as_ceiling(), "{path}");
            assert_eq!(sc.holders.len(), 2, "{path}");
        }
    }

    #[test]
    fn upgrade_counts_once_under_pcp() {
        let s = set();
        for (path, c, mut lt) in tables(&s) {
            lt.grant(i(2), ItemId(2), LockMode::Read);
            lt.grant(i(2), ItemId(2), LockMode::Write); // upgrade
            let sc = c.pcp_sysceil(&lt, i(0));
            assert_eq!(sc.ceiling, c.aceil(ItemId(2)), "{path}");
            assert_eq!(sc.holders, [i(2)].into_iter().collect(), "{path}");
            // Releasing one mode keeps the holder's contribution alive.
            lt.release(i(2), ItemId(2), LockMode::Write);
            assert_eq!(
                c.pcp_sysceil(&lt, i(0)).ceiling,
                c.aceil(ItemId(2)),
                "{path}"
            );
            lt.release(i(2), ItemId(2), LockMode::Read);
            assert_eq!(c.pcp_sysceil(&lt, i(0)), SysCeil::dummy(), "{path}");
        }
    }

    #[test]
    fn release_all_unwinds_the_index() {
        let s = set();
        for (path, c, mut lt) in tables(&s) {
            lt.grant(i(3), ItemId(1), LockMode::Read);
            lt.grant(i(3), ItemId(0), LockMode::Write);
            lt.grant(i(2), ItemId(2), LockMode::Read);
            assert_ne!(c.rwpcp_sysceil(&lt, i(0)), SysCeil::dummy(), "{path}");
            lt.release_all(i(3));
            // Only T3's read of z remains.
            let sc = c.pcpda_sysceil(&lt, i(0));
            assert_eq!(sc.holders, [i(2)].into_iter().collect(), "{path}");
            lt.release_all(i(2));
            assert_eq!(c.rwpcp_sysceil(&lt, i(0)), SysCeil::dummy(), "{path}");
        }
    }

    #[test]
    fn unknown_items_have_dummy_ceilings() {
        let c = CeilingTable::new(&set());
        assert!(c.wceil(ItemId(99)).is_dummy());
        assert!(c.aceil(ItemId(99)).is_dummy());
    }
}
