//! The protocol trait and the engine-side view it consults.

use crate::ceilings::CeilingTable;
use crate::deps::DepTracker;
use crate::locks::LockTable;
use rtdb_types::{InstanceId, ItemId, LockMode, Priority, TransactionSet};

/// How writes reach the committed store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateModel {
    /// Deferred updates: writes stay in the private workspace and are
    /// installed at commit (paper §4, the model PCP-DA assumes). Under
    /// strict locking this also faithfully emulates update-in-place for
    /// the 2PL/PCP/RW-PCP baselines.
    Workspace,
    /// Writes are installed the moment a write lock is *released early*
    /// (before commit). Only CCP needs this: it may unlock a written item
    /// before the transaction ends, and later readers must see the value.
    InstallOnEarlyRelease,
}

/// Whether a transaction instance may write.
///
/// Templates with an empty write set run as [`TxnMode::ReadOnly`]; engines
/// offer protocols the chance to run such instances on the lock-free
/// multiversion snapshot path via [`ProtocolFor::lock_exempt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnMode {
    /// May read and write; always takes the lock-based path.
    ReadWrite,
    /// Provably never writes (no `Write` step in the template); a
    /// candidate for lock-exempt snapshot reads.
    ReadOnly,
}

impl TxnMode {
    /// The mode of `template`: [`TxnMode::ReadOnly`] iff no step writes.
    pub fn of(template: &rtdb_types::TransactionTemplate) -> TxnMode {
        if template.is_read_only() {
            TxnMode::ReadOnly
        } else {
            TxnMode::ReadWrite
        }
    }
}

/// A sentinel instance that holds no locks — used as the "observer" when
/// computing the global system ceiling (every `Sysceil` computation
/// excludes the observer's own locks, and this observer has none).
pub fn ceiling_observer() -> InstanceId {
    InstanceId::new(rtdb_types::TxnId(u32::MAX), u32::MAX)
}

/// A lock request presented to a protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockRequest {
    /// Requesting instance.
    pub who: InstanceId,
    /// Item requested.
    pub item: ItemId,
    /// Mode requested.
    pub mode: LockMode,
}

/// A protocol's answer to a lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Grant the lock now.
    Grant,
    /// Deny; the requester blocks and `blockers` inherit its priority.
    /// `blockers` must be non-empty and must not contain the requester.
    Block {
        /// The instances responsible for the denial (the paper's blocking
        /// lower-priority transaction; possibly higher-priority conflict
        /// holders, for which inheritance is a no-op).
        blockers: Vec<InstanceId>,
    },
    /// Abort the listed holders, then grant (2PL-HP: the requester has
    /// higher priority than every victim). Victims restart from scratch.
    AbortHolders {
        /// Instances to abort; must not contain the requester.
        victims: Vec<InstanceId>,
    },
    /// The *requester* aborts itself and restarts (wait-die style: the
    /// protocol's ordering rule forbids both waiting for and wounding
    /// the conflict holders). `blockers` names the instances responsible;
    /// engines may delay the restart until one of them commits or aborts
    /// so the retry can make progress.
    AbortSelf {
        /// The conflicting instances; must be non-empty and must not
        /// contain the requester.
        blockers: Vec<InstanceId>,
    },
}

/// What a protocol may observe about the running system.
///
/// Implemented by the simulation engine; keeps protocols free of any
/// dependency on the engine's internals.
pub trait EngineView {
    /// The static transaction set.
    fn set(&self) -> &TransactionSet;
    /// The current lock table.
    fn locks(&self) -> &LockTable;
    /// Precomputed static ceilings and write sets.
    fn ceilings(&self) -> &CeilingTable;
    /// Original (base) priority of an instance.
    fn base_priority(&self, who: InstanceId) -> Priority;
    /// Current running priority (base joined with inherited).
    fn running_priority(&self, who: InstanceId) -> Priority;
    /// `DataRead(T)`: items the instance has read so far, sorted ascending.
    fn data_read(&self, who: InstanceId) -> &[ItemId];

    /// The lock request `who` is currently blocked on, if any. Lets a
    /// protocol reason about *why* a holder is stalled (PCP-DA's
    /// commit-order guard needs to know whether a higher-priority write
    /// holder is hard-blocked on the requester).
    fn pending_request(&self, who: InstanceId) -> Option<LockRequest>;

    /// All currently live (released, uncommitted) instances, sorted
    /// ascending by id.
    fn active_instances(&self) -> &[InstanceId];

    /// The items `who` has staged writes for (its actual, dynamic write
    /// set — used by optimistic validation), sorted ascending. Called only
    /// on the validation path, so an owned `Vec` is acceptable.
    fn staged_write_items(&self, who: InstanceId) -> Vec<ItemId>;

    /// The dependency tracker (retired-lock lists + commit-dependency
    /// graph), when the engine maintains one. Early-release protocols
    /// (Bamboo, Brook-2PL) consult it to decide against retired writers;
    /// `None` (the default, kept by minimal views such as the testkit)
    /// reads as "nothing retired".
    fn deps(&self) -> Option<&DepTracker> {
        None
    }
}

/// True if two ascending-sorted slices share no element — the slice
/// counterpart of `BTreeSet::is_disjoint`, used by protocols on the
/// [`EngineView::data_read`] / write-set slices.
pub fn sorted_disjoint<T: Ord>(a: &[T], b: &[T]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// A concurrency-control protocol, generic over the view it observes.
///
/// This is the trait protocol *implementations* write. It is generic over
/// the view type `V` so both sides of the engine/protocol conversation can
/// be monomorphized: the engine runs its steady-state loop against
/// `ProtocolFor<ConcreteView>` with zero virtual calls in either
/// direction. Implementations should be written as blanket impls over any
/// view —
///
/// ```ignore
/// impl<V: EngineView + ?Sized> ProtocolFor<V> for MyProtocol { ... }
/// ```
///
/// — which makes them usable both statically and as trait objects: any
/// type implementing `ProtocolFor` over every view automatically
/// implements the view-erased, object-safe [`Protocol`] trait, so
/// `Box<dyn Protocol>` call sites keep working, and [`DynProtocol`]
/// adapts such an object back into a `ProtocolFor<V>` for any concrete
/// view.
pub trait ProtocolFor<V: EngineView + ?Sized> {
    /// Short stable name used in reports ("PCP-DA", "RW-PCP", ...).
    fn name(&self) -> &'static str;

    /// Decide a lock request. Must not mutate the lock table — the engine
    /// applies the decision.
    fn request(&mut self, view: &V, req: LockRequest) -> Decision;

    /// Notification: the request was granted and recorded.
    fn on_grant(&mut self, _view: &V, _req: LockRequest) {}

    /// Notification: `who` committed; its locks have been released.
    fn on_commit(&mut self, _view: &V, _who: InstanceId) {}

    /// Notification: `who` aborted; its locks have been released.
    fn on_abort(&mut self, _view: &V, _who: InstanceId) {}

    /// Called after `who` finished executing its `completed_step`-th step.
    /// Returns locks to release before commit (CCP's early unlock); the
    /// engine installs staged writes for early-released write locks when
    /// the update model is [`UpdateModel::InstallOnEarlyRelease`].
    fn early_releases(
        &mut self,
        _view: &V,
        _who: InstanceId,
        _completed_step: usize,
    ) -> Vec<(ItemId, LockMode)> {
        Vec::new()
    }

    /// Called after `who` finished its `completed_step`-th step: the
    /// *write* locks to **retire** — release before commit into the
    /// dependency tracker's retired list, staged value and all, so later
    /// lockers can read the dirty value and be gated behind `who`
    /// (DESIGN.md §6h). Unlike [`ProtocolFor::early_releases`], retired
    /// writes install only at commit; the engine must maintain a
    /// [`DepTracker`] for any protocol returning non-empty here.
    fn retires(&mut self, _view: &V, _who: InstanceId, _completed_step: usize) -> Vec<ItemId> {
        Vec::new()
    }

    /// The update model this protocol requires.
    fn update_model(&self) -> UpdateModel {
        UpdateModel::Workspace
    }

    /// True if instances running in `mode` may bypass this protocol
    /// entirely and read from a multiversion snapshot (never locking,
    /// never raising `Sysceil`, never blocking or being blocked).
    ///
    /// Sound by default exactly for read-only transactions under the
    /// deferred-update model: every commit installs atomically at a global
    /// commit stamp, so a snapshot at stamp `S` equals the serial state
    /// after the first `S` committed writers and the reader serialises
    /// right there. Protocols that install writes *before* commit
    /// ([`UpdateModel::InstallOnEarlyRelease`], i.e. CCP) decline: a
    /// snapshot taken between an early install's commit and the commit of
    /// the transaction whose dirty value it read is not a committed
    /// prefix, so their read-only instances stay on the lock-based path.
    fn lock_exempt(&self, mode: TxnMode) -> bool {
        mode == TxnMode::ReadOnly && self.update_model() == UpdateModel::Workspace
    }

    /// The *global* system ceiling currently in effect (the paper's
    /// `Max_Sysceil`, the dotted line of Figures 4 and 5): the ceiling an
    /// arriving transaction that holds nothing would face. Protocols
    /// without a ceiling notion (2PL) report [`rtdb_types::Ceiling::Dummy`].
    fn system_ceiling(&self, _view: &V) -> rtdb_types::Ceiling {
        rtdb_types::Ceiling::Dummy
    }

    /// True if the protocol may abort transactions (2PL-HP, OCC).
    /// Protocols with this property invalidate the paper's schedulability
    /// analysis — the flag lets tests assert PCP-DA never aborts.
    fn may_abort(&self) -> bool {
        false
    }

    /// True if the protocol can reach a deadlock (2PL-PI, Naive-DA, the
    /// literal pre-erratum PCP-DA). Drivers consult this to enable the
    /// engine's wait-for deadlock resolution; every repaired ceiling
    /// protocol is provably deadlock-free and reports `false`.
    fn may_deadlock(&self) -> bool {
        false
    }

    /// Called just before `who` commits: return the active instances this
    /// commit *invalidates* — they are aborted and restarted before the
    /// writes install (optimistic concurrency control with forward
    /// validation). Lock-based protocols never need this.
    fn commit_victims(&mut self, _view: &V, _who: InstanceId) -> Vec<InstanceId> {
        Vec::new()
    }
}

/// A concurrency-control protocol as a view-erased trait object.
///
/// The object-safe face of [`ProtocolFor`]: every method takes
/// `&dyn EngineView`, whose object lifetime elaborates per call site, so a
/// `Box<dyn Protocol>` can be driven with the engine's short-lived views.
/// Do not implement this trait directly — write a blanket
/// `ProtocolFor<V>` impl instead and this trait comes for free.
pub trait Protocol {
    /// See [`ProtocolFor::name`].
    fn name(&self) -> &'static str;
    /// See [`ProtocolFor::request`].
    fn request(&mut self, view: &dyn EngineView, req: LockRequest) -> Decision;
    /// See [`ProtocolFor::on_grant`].
    fn on_grant(&mut self, view: &dyn EngineView, req: LockRequest);
    /// See [`ProtocolFor::on_commit`].
    fn on_commit(&mut self, view: &dyn EngineView, who: InstanceId);
    /// See [`ProtocolFor::on_abort`].
    fn on_abort(&mut self, view: &dyn EngineView, who: InstanceId);
    /// See [`ProtocolFor::early_releases`].
    fn early_releases(
        &mut self,
        view: &dyn EngineView,
        who: InstanceId,
        completed_step: usize,
    ) -> Vec<(ItemId, LockMode)>;
    /// See [`ProtocolFor::retires`].
    fn retires(
        &mut self,
        view: &dyn EngineView,
        who: InstanceId,
        completed_step: usize,
    ) -> Vec<ItemId>;
    /// See [`ProtocolFor::update_model`].
    fn update_model(&self) -> UpdateModel;
    /// See [`ProtocolFor::lock_exempt`].
    fn lock_exempt(&self, mode: TxnMode) -> bool;
    /// See [`ProtocolFor::system_ceiling`].
    fn system_ceiling(&self, view: &dyn EngineView) -> rtdb_types::Ceiling;
    /// See [`ProtocolFor::may_abort`].
    fn may_abort(&self) -> bool;
    /// See [`ProtocolFor::may_deadlock`].
    fn may_deadlock(&self) -> bool;
    /// See [`ProtocolFor::commit_victims`].
    fn commit_victims(&mut self, view: &dyn EngineView, who: InstanceId) -> Vec<InstanceId>;
}

/// Every view-generic protocol is a view-erased [`Protocol`].
impl<P> Protocol for P
where
    P: for<'v> ProtocolFor<dyn EngineView + 'v>,
{
    fn name(&self) -> &'static str {
        ProtocolFor::<dyn EngineView>::name(self)
    }

    fn request(&mut self, view: &dyn EngineView, req: LockRequest) -> Decision {
        ProtocolFor::request(self, view, req)
    }

    fn on_grant(&mut self, view: &dyn EngineView, req: LockRequest) {
        ProtocolFor::on_grant(self, view, req)
    }

    fn on_commit(&mut self, view: &dyn EngineView, who: InstanceId) {
        ProtocolFor::on_commit(self, view, who)
    }

    fn on_abort(&mut self, view: &dyn EngineView, who: InstanceId) {
        ProtocolFor::on_abort(self, view, who)
    }

    fn early_releases(
        &mut self,
        view: &dyn EngineView,
        who: InstanceId,
        completed_step: usize,
    ) -> Vec<(ItemId, LockMode)> {
        ProtocolFor::early_releases(self, view, who, completed_step)
    }

    fn retires(
        &mut self,
        view: &dyn EngineView,
        who: InstanceId,
        completed_step: usize,
    ) -> Vec<ItemId> {
        ProtocolFor::retires(self, view, who, completed_step)
    }

    fn update_model(&self) -> UpdateModel {
        ProtocolFor::<dyn EngineView>::update_model(self)
    }

    fn lock_exempt(&self, mode: TxnMode) -> bool {
        ProtocolFor::<dyn EngineView>::lock_exempt(self, mode)
    }

    fn system_ceiling(&self, view: &dyn EngineView) -> rtdb_types::Ceiling {
        ProtocolFor::system_ceiling(self, view)
    }

    fn may_abort(&self) -> bool {
        ProtocolFor::<dyn EngineView>::may_abort(self)
    }

    fn may_deadlock(&self) -> bool {
        ProtocolFor::<dyn EngineView>::may_deadlock(self)
    }

    fn commit_victims(&mut self, view: &dyn EngineView, who: InstanceId) -> Vec<InstanceId> {
        ProtocolFor::commit_victims(self, view, who)
    }
}

/// Adapter running a view-erased `&mut dyn Protocol` behind any concrete
/// [`EngineView`] type, by unsizing the view at the boundary.
///
/// This keeps `Box<dyn Protocol>` call sites working against the
/// monomorphized engine loop: the loop itself is compiled for a concrete
/// view type, and only protocols that are *already* trait objects pay the
/// two virtual hops (protocol vtable + view vtable) per callback.
pub struct DynProtocol<'p> {
    inner: &'p mut (dyn Protocol + 'p),
}

impl<'p> DynProtocol<'p> {
    /// Wrap a view-erased protocol object.
    pub fn new(inner: &'p mut (dyn Protocol + 'p)) -> Self {
        DynProtocol { inner }
    }
}

impl<V: EngineView> ProtocolFor<V> for DynProtocol<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        self.inner.request(view, req)
    }

    fn on_grant(&mut self, view: &V, req: LockRequest) {
        self.inner.on_grant(view, req)
    }

    fn on_commit(&mut self, view: &V, who: InstanceId) {
        self.inner.on_commit(view, who)
    }

    fn on_abort(&mut self, view: &V, who: InstanceId) {
        self.inner.on_abort(view, who)
    }

    fn early_releases(
        &mut self,
        view: &V,
        who: InstanceId,
        completed_step: usize,
    ) -> Vec<(ItemId, LockMode)> {
        self.inner.early_releases(view, who, completed_step)
    }

    fn retires(&mut self, view: &V, who: InstanceId, completed_step: usize) -> Vec<ItemId> {
        self.inner.retires(view, who, completed_step)
    }

    fn update_model(&self) -> UpdateModel {
        self.inner.update_model()
    }

    fn lock_exempt(&self, mode: TxnMode) -> bool {
        self.inner.lock_exempt(mode)
    }

    fn system_ceiling(&self, view: &V) -> rtdb_types::Ceiling {
        self.inner.system_ceiling(view)
    }

    fn may_abort(&self) -> bool {
        self.inner.may_abort()
    }

    fn may_deadlock(&self) -> bool {
        self.inner.may_deadlock()
    }

    fn commit_victims(&mut self, view: &V, who: InstanceId) -> Vec<InstanceId> {
        self.inner.commit_victims(view, who)
    }
}

impl Decision {
    /// Convenience constructor that deduplicates and drops the requester
    /// from the blocker list, returning `Grant` if nothing remains —
    /// protocols use it to express "blocked by whoever holds these locks".
    pub fn block_on<I: IntoIterator<Item = InstanceId>>(who: InstanceId, blockers: I) -> Decision {
        let mut list: Vec<InstanceId> = blockers.into_iter().filter(|&b| b != who).collect();
        list.sort_unstable();
        list.dedup();
        assert!(
            !list.is_empty(),
            "a Block decision needs at least one blocker (requester {who})"
        );
        Decision::Block { blockers: list }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::TxnId;

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    #[test]
    fn block_on_dedupes_and_drops_requester() {
        let d = Decision::block_on(i(0), vec![i(1), i(0), i(1), i(2)]);
        assert_eq!(
            d,
            Decision::Block {
                blockers: vec![i(1), i(2)]
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least one blocker")]
    fn block_on_rejects_empty() {
        let _ = Decision::block_on(i(0), vec![i(0)]);
    }
}
