//! A packaged verification battery for simulation runs.
//!
//! Downstream users (and this repository's own tests) can verify any
//! [`RunResult`] against the guarantees its protocol is supposed to
//! provide — Theorems 1–3 of the paper plus the engine's bookkeeping
//! invariants — with one call:
//!
//! ```
//! use rtdb_sim::{checks, Engine, SimConfig};
//! use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate};
//!
//! let set = SetBuilder::new()
//!     .with(TransactionTemplate::new("a", 10, vec![Step::read(ItemId(0), 1)]))
//!     .with(TransactionTemplate::new("b", 20, vec![Step::write(ItemId(0), 2)]))
//!     .build().unwrap();
//! let run = Engine::new(&set, SimConfig::with_horizon(100))
//!     .run(&mut rtdb_cc::PcpDa::new()).unwrap();
//!
//! let violations = checks::verify_run(&set, &run, checks::Expectations::pcp_da());
//! assert!(violations.is_empty(), "{violations:?}");
//! ```

use crate::engine::{RunOutcome, RunResult};
use rtdb_storage::{Database, EventKind, History, SerializationGraph};
use rtdb_types::{InstanceId, ItemId, Tick, TransactionSet};
use std::collections::BTreeMap;

/// What a protocol promises; [`verify_run`] checks a run against it.
#[derive(Clone, Copy, Debug)]
pub struct Expectations {
    /// The run must complete (no unresolved deadlock).
    pub deadlock_free: bool,
    /// No transaction may ever be aborted/restarted.
    pub no_restarts: bool,
    /// Every instance is blocked by at most one distinct lower-priority
    /// transaction (Theorem 1).
    pub single_blocking: bool,
    /// Serial replay **in commit order** must reproduce every read and
    /// the final state (Theorem 3's serialization order). Protocols whose
    /// serialization order may deviate from commit order (CCP) use the
    /// topological check instead.
    pub commit_order_serialization: bool,
}

impl Expectations {
    /// PCP-DA (and RW-PCP / original PCP): every guarantee of the paper.
    pub fn pcp_da() -> Self {
        Expectations {
            deadlock_free: true,
            no_restarts: true,
            single_blocking: true,
            commit_order_serialization: true,
        }
    }

    /// CCP: deadlock-free, restart-free, single blocking, serializable —
    /// but the serialization order is decoupled from commit order.
    pub fn ccp() -> Self {
        Expectations {
            commit_order_serialization: false,
            ..Self::pcp_da()
        }
    }

    /// Abort-based protocols (2PL-HP, OCC-BC) and 2PL-PI with deadlock
    /// resolution: serializability only.
    pub fn abort_based() -> Self {
        Expectations {
            deadlock_free: true,
            no_restarts: false,
            single_blocking: false,
            commit_order_serialization: true,
        }
    }
}

/// One failed guarantee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The run ended in a deadlock.
    Deadlock(Vec<rtdb_types::InstanceId>),
    /// Restarts happened although the protocol promises none.
    UnexpectedRestarts(u32),
    /// Some instance was blocked by more than one distinct
    /// lower-priority transaction.
    MultipleLowerBlockers {
        /// The offending instance.
        instance: rtdb_types::InstanceId,
        /// Its distinct lower-priority blockers.
        blockers: Vec<rtdb_types::TxnId>,
    },
    /// The serialization graph has a cycle.
    ConflictCycle(Vec<rtdb_types::InstanceId>),
    /// Serial replay diverged (value-level anomaly); carries the number
    /// of divergences.
    ReplayDivergence(usize),
    /// A snapshot reader observed a version that is not the latest one
    /// installed by the first `stamp` lock-path commits — its reads do
    /// not form a consistent committed prefix.
    SnapshotInconsistency {
        /// The offending snapshot reader.
        reader: InstanceId,
        /// Item whose read was wrong.
        item: ItemId,
        /// Version the reader observed.
        version: u64,
        /// Version visible at the reader's pinned stamp.
        expected: u64,
        /// The reader's pinned commit stamp.
        stamp: u64,
    },
}

/// Verify `run` against `expect`; returns every violation found (empty =
/// all guarantees held).
pub fn verify_run(set: &TransactionSet, run: &RunResult, expect: Expectations) -> Vec<Violation> {
    let mut out = Vec::new();

    if expect.deadlock_free {
        if let RunOutcome::Deadlock(cycle) = &run.outcome {
            out.push(Violation::Deadlock(cycle.clone()));
        }
    }

    if expect.no_restarts && run.history.aborts() > 0 {
        out.push(Violation::UnexpectedRestarts(run.history.aborts() as u32));
    }

    if expect.single_blocking {
        for m in run.metrics.instances() {
            if m.distinct_lower_blockers.len() > 1 {
                out.push(Violation::MultipleLowerBlockers {
                    instance: m.id,
                    blockers: m.distinct_lower_blockers.clone(),
                });
            }
        }
    }

    // Serializability — always checked: conflict graph first, then the
    // value-level replay in the appropriate order. Snapshot readers (if
    // the run used the lock-exempt path) are verified at their stamps.
    out.extend(snapshot_serializability_violations(
        set,
        &run.history,
        &run.db,
        expect.commit_order_serialization,
        &run.snapshot_stamps(),
    ));

    out
}

/// The serializability core of [`verify_run`], usable on any history —
/// including those produced by the threaded runtime (`rtdb-rt`), which has
/// no [`RunResult`]: conflict-graph acyclicity first, then the value-level
/// serial replay, in commit order when `commit_order_serialization` is
/// set and otherwise in a topological order of the conflict graph (the
/// view check valid for CCP, whose serialization order may deviate from
/// commit order).
pub fn serializability_violations(
    set: &TransactionSet,
    history: &History,
    db: &Database,
    commit_order_serialization: bool,
) -> Vec<Violation> {
    let graph = SerializationGraph::build(history);
    if let Some(cycle) = graph.find_cycle() {
        return vec![Violation::ConflictCycle(cycle)];
    }
    let replay = if commit_order_serialization {
        rtdb_storage::replay_serial(set, history, db)
    } else {
        // Reconstruct a history whose commit order is a topological order
        // of the (acyclic) conflict graph; only commit order and the
        // committed reads matter to the replayer.
        let topo = graph
            .topological_order()
            .expect("acyclic graph has a topological order");
        let mut h = History::new();
        for e in history.events() {
            if !matches!(e.kind, EventKind::Commit) {
                h.push(e.at, e.instance, e.kind);
            }
        }
        for who in topo {
            h.push(Tick::ZERO, who, EventKind::Commit);
        }
        rtdb_storage::replay_serial(set, &h, db)
    };
    if !replay.is_serializable() {
        return vec![Violation::ReplayDivergence(replay.violations.len())];
    }
    Vec::new()
}

/// [`serializability_violations`] extended for histories with lock-exempt
/// snapshot readers. `snapshots` lists each reader with its pinned commit
/// stamp (as produced by `RunResult::snapshot_stamps` or the runtime's
/// report); with an empty list this is exactly the plain oracle.
///
/// Three layers:
/// 1. conflict-graph acyclicity on the raw history (edges derive from the
///    version numbers each read observed, so snapshot readers' wr/rw
///    edges are already placed correctly);
/// 2. an explicit **consistent-prefix check**: every read of a snapshot
///    reader pinned at stamp `S` must observe exactly the latest version
///    installed by the first `S` lock-path commits — wr edges may only
///    point to installed-before-snapshot versions, and skipping an
///    overwritten-before-snapshot version is equally a violation;
/// 3. the value-level serial replay on a rebuilt history whose commit
///    order inserts each reader directly after its stamp-th lock-path
///    commit — the serial position the snapshot semantics claim.
pub fn snapshot_serializability_violations(
    set: &TransactionSet,
    history: &History,
    db: &Database,
    commit_order_serialization: bool,
    snapshots: &[(InstanceId, u64)],
) -> Vec<Violation> {
    // Only committed readers participate; unfinished ones have no Commit
    // event to place (the runtime never reports them, but the simulator's
    // metrics include leftovers at the horizon).
    let committed: std::collections::BTreeSet<InstanceId> =
        history.commit_order().iter().copied().collect();
    let readers: BTreeMap<InstanceId, u64> = snapshots
        .iter()
        .copied()
        .filter(|(r, _)| committed.contains(r))
        .collect();
    if readers.is_empty() {
        return serializability_violations(set, history, db, commit_order_serialization);
    }

    let graph = SerializationGraph::build(history);
    if let Some(cycle) = graph.find_cycle() {
        return vec![Violation::ConflictCycle(cycle)];
    }

    // 1-based commit positions of the lock-path (non-reader) commits —
    // the engine seals one stamp per such commit, in this exact order.
    let mut pos: BTreeMap<InstanceId, u64> = BTreeMap::new();
    for &who in history.commit_order() {
        if !readers.contains_key(&who) {
            pos.insert(who, pos.len() as u64 + 1);
        }
    }

    // Consistent-prefix check.
    let installs = history.install_order();
    let reads = history.committed_reads();
    let mut out = Vec::new();
    for (&reader, &stamp) in &readers {
        for &(item, _, version, own) in reads.get(&reader).map_or(&[][..], Vec::as_slice) {
            debug_assert!(!own, "snapshot readers stage nothing");
            let expected = installs.get(&item).map_or(0, |chain| {
                chain
                    .iter()
                    .filter(|&&(_, writer, _)| pos.get(&writer).is_some_and(|&p| p <= stamp))
                    .map(|&(v, _, _)| v)
                    .max()
                    .unwrap_or(0)
            });
            if version != expected {
                out.push(Violation::SnapshotInconsistency {
                    reader,
                    item,
                    version,
                    expected,
                    stamp,
                });
            }
        }
    }
    if !out.is_empty() {
        return out;
    }

    // Value-level replay with each reader serialized at its stamp.
    let mut by_stamp: BTreeMap<u64, Vec<InstanceId>> = BTreeMap::new();
    for (&r, &s) in &readers {
        by_stamp.entry(s).or_default().push(r);
    }
    let mut h = History::new();
    for e in history.events() {
        if !matches!(e.kind, EventKind::Commit) {
            h.push(e.at, e.instance, e.kind);
        }
    }
    let mut serial: Vec<InstanceId> = Vec::with_capacity(history.commit_order().len());
    serial.extend(by_stamp.get(&0).into_iter().flatten());
    let mut k = 0u64;
    for &who in history.commit_order() {
        if readers.contains_key(&who) {
            continue;
        }
        k += 1;
        serial.push(who);
        serial.extend(by_stamp.get(&k).into_iter().flatten());
    }
    // A stamp beyond the last commit cannot be pinned; be defensive.
    for (_, rs) in by_stamp.range(k + 1..) {
        serial.extend(rs);
    }
    for who in serial {
        h.push(Tick::ZERO, who, EventKind::Commit);
    }
    let replay = rtdb_storage::replay_serial(set, &h, db);
    if !replay.is_serializable() {
        return vec![Violation::ReplayDivergence(replay.violations.len())];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, SimConfig};
    use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate};

    fn contended_set() -> TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                20,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                40,
                vec![Step::write(ItemId(0), 2), Step::read(ItemId(1), 1)],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn pcpda_run_passes_full_battery() {
        let set = contended_set();
        let run = Engine::new(&set, SimConfig::with_horizon(200))
            .run(&mut rtdb_cc::PcpDa::new())
            .unwrap();
        assert_eq!(verify_run(&set, &run, Expectations::pcp_da()), vec![]);
    }

    #[test]
    fn ccp_run_passes_its_battery() {
        let set = contended_set();
        let run = Engine::new(&set, SimConfig::with_horizon(200))
            .run(&mut rtdb_baselines::Ccp::new())
            .unwrap();
        assert_eq!(verify_run(&set, &run, Expectations::ccp()), vec![]);
    }

    #[test]
    fn abort_based_run_tolerates_restarts() {
        let set = contended_set();
        let run = Engine::new(&set, SimConfig::with_horizon(400))
            .run(&mut rtdb_baselines::TwoPlHp::new())
            .unwrap();
        assert_eq!(verify_run(&set, &run, Expectations::abort_based()), vec![]);
        // But the strict battery flags the restarts (if any happened).
        if run.history.aborts() > 0 {
            let v = verify_run(&set, &run, Expectations::pcp_da());
            assert!(v
                .iter()
                .any(|x| matches!(x, Violation::UnexpectedRestarts(_))));
        }
    }

    #[test]
    fn deadlock_is_reported() {
        // Example 5 under Naive-DA.
        let set = SetBuilder::new()
            .with(
                TransactionTemplate::new(
                    "TH",
                    10,
                    vec![Step::read(ItemId(1), 1), Step::write(ItemId(0), 1)],
                )
                .with_offset(1)
                .with_instances(1),
            )
            .with(
                TransactionTemplate::new(
                    "TL",
                    10,
                    vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
                )
                .with_instances(1),
            )
            .build()
            .unwrap();
        let run = Engine::new(&set, SimConfig::default())
            .run(&mut rtdb_baselines::NaiveDa::new())
            .unwrap();
        let v = verify_run(&set, &run, Expectations::pcp_da());
        assert!(v.iter().any(|x| matches!(x, Violation::Deadlock(_))));
    }
}
