//! The simulation engine.
//!
//! A run is a deterministic function of `(transaction set, protocol,
//! config)`. The engine owns the clock, the arrival queue, the lock table,
//! the priority manager (inheritance), the workspaces and the database; a
//! [`Protocol`] is consulted for every lock request and the engine applies
//! its decision.
//!
//! ## Semantics (matching the paper's examples tick-for-tick)
//!
//! * The ready instance with the highest **running** priority executes
//!   (ties: higher base priority, then earlier instance of the same
//!   template).
//! * A step's lock is requested the instant the step becomes current; the
//!   read/staged write is performed at grant time; the step then consumes
//!   its CPU duration, during which the instance may be preempted but
//!   keeps its locks.
//! * Denied requests block the instance; the blockers inherit its priority
//!   transitively; blocked requests are re-evaluated (in descending
//!   priority) whenever locks are released.
//! * Commit is instantaneous at the end of the last step: staged writes
//!   install, all locks release, the instance leaves the system.
//! * Deadlocks (possible under 2PL-PI and Naive-DA only) are detected on
//!   the wait-for graph at block time; depending on
//!   [`SimConfig::resolve_deadlocks`] the run either stops with
//!   [`RunOutcome::Deadlock`] or aborts the lowest-priority instance on
//!   the cycle and continues.

use crate::metrics::{InstanceMetrics, MetricsReport};
use crate::trace::{SegKind, Trace, TraceEvent};
use rtdb_cc::{
    CeilingTable, Decision, EngineView, LockRequest, LockTable, PriorityManager, Protocol,
    UpdateModel, WaitForGraph,
};
use rtdb_storage::{Database, EventKind, History, ReplayOutcome, SerializationGraph, Workspace};
use rtdb_types::{
    Duration, Error, InstanceId, ItemId, LockMode, Priority, Result, Tick, TransactionSet, TxnId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Release arrivals strictly before this tick. `None`: simulate two
    /// hyperperiods (or just the explicitly bounded instances).
    pub horizon: Option<u64>,
    /// On deadlock: abort the lowest-priority instance on the cycle and
    /// continue (`true`), or stop with [`RunOutcome::Deadlock`] (`false`).
    pub resolve_deadlocks: bool,
    /// Safety budget on scheduler iterations.
    pub max_steps: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: None,
            resolve_deadlocks: false,
            max_steps: 10_000_000,
        }
    }
}

impl SimConfig {
    /// Config with an explicit horizon.
    pub fn with_horizon(horizon: u64) -> Self {
        SimConfig {
            horizon: Some(horizon),
            ..Default::default()
        }
    }

    /// Enable deadlock resolution by victim abort.
    pub fn resolving_deadlocks(mut self) -> Self {
        self.resolve_deadlocks = true;
        self
    }
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// All released instances committed (or the horizon was reached with
    /// every remaining instance still making progress).
    Completed,
    /// An unresolved deadlock stopped the run; the cycle is attached.
    Deadlock(Vec<InstanceId>),
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunResult {
    /// Protocol name.
    pub protocol: &'static str,
    /// Full event history (reads, writes, commits, aborts, installs).
    pub history: History,
    /// Final database state.
    pub db: Database,
    /// Per-instance / per-template statistics.
    pub metrics: MetricsReport,
    /// Segments, events and ceiling samples for timeline rendering.
    pub trace: Trace,
    /// Completion or deadlock.
    pub outcome: RunOutcome,
}

impl RunResult {
    /// Serial-replay oracle in **commit order** (Theorem 3's serialization
    /// order — valid for every protocol here except CCP, whose early
    /// unlock lets the serialization order deviate from commit order; use
    /// [`RunResult::replay_check_topological`] for CCP).
    pub fn replay_check(&self, set: &TransactionSet) -> ReplayOutcome {
        rtdb_storage::replay_serial(set, &self.history, &self.db)
    }

    /// Serialization graph of the history.
    pub fn serialization_graph(&self) -> SerializationGraph {
        SerializationGraph::build(&self.history)
    }

    /// `true` if the serialization graph is acyclic (conflict-serializable
    /// history). This is the correctness oracle valid for *all* protocols.
    pub fn is_conflict_serializable(&self) -> bool {
        self.serialization_graph().find_cycle().is_none()
    }

    /// Serial-replay oracle in a topological order of the serialization
    /// graph (view check valid for CCP). Returns `None` if the graph is
    /// cyclic.
    pub fn replay_check_topological(&self, set: &TransactionSet) -> Option<ReplayOutcome> {
        // Reorder the commit order into a topological order and replay by
        // temporarily rebuilding a history stub? Simpler: the value-replay
        // needs only the order; reuse replay_serial by checking the graph
        // first and replaying in topological order via a reordered commit
        // list.
        let graph = self.serialization_graph();
        let topo = graph.topological_order()?;
        let mut h = History::new();
        // Reconstruct a history with the same events but commit order =
        // topological order. Only commit_order and committed_reads matter
        // to the replayer; committed_reads is commit-order independent.
        for e in self.history.events() {
            if !matches!(e.kind, EventKind::Commit) {
                h.push(e.at, e.instance, e.kind);
            }
        }
        for who in topo {
            h.push(Tick::ZERO, who, EventKind::Commit);
        }
        Some(rtdb_storage::replay_serial(set, &h, &self.db))
    }
}

/// The engine. Create with [`Engine::new`], execute with [`Engine::run`].
pub struct Engine<'a> {
    set: &'a TransactionSet,
    config: SimConfig,
}

impl<'a> Engine<'a> {
    /// Engine over a transaction set.
    pub fn new(set: &'a TransactionSet, config: SimConfig) -> Self {
        Engine { set, config }
    }

    /// Execute one full run under `protocol`.
    pub fn run(&self, protocol: &mut dyn Protocol) -> Result<RunResult> {
        let mut sim = Sim::new(self.set, &self.config)?;
        sim.run(protocol)?;
        let mut result = sim.finish(protocol);
        result.protocol = protocol.name();
        Ok(result)
    }
}

/// The [`EngineView`] protocols consult: the shared, read-mostly state.
struct ViewState<'a> {
    set: &'a TransactionSet,
    ceilings: CeilingTable,
    locks: LockTable,
    pm: PriorityManager,
    workspaces: BTreeMap<InstanceId, Workspace>,
    /// The denied request each blocked instance is waiting on.
    pending: BTreeMap<InstanceId, LockRequest>,
    empty: BTreeSet<ItemId>,
}

impl EngineView for ViewState<'_> {
    fn set(&self) -> &TransactionSet {
        self.set
    }
    fn locks(&self) -> &LockTable {
        &self.locks
    }
    fn ceilings(&self) -> &CeilingTable {
        &self.ceilings
    }
    fn base_priority(&self, who: InstanceId) -> Priority {
        self.set.priority_of(who.txn)
    }
    fn running_priority(&self, who: InstanceId) -> Priority {
        self.pm.running(who)
    }
    fn data_read(&self, who: InstanceId) -> &BTreeSet<ItemId> {
        self.workspaces
            .get(&who)
            .map(|w| w.data_read())
            .unwrap_or(&self.empty)
    }
    fn pending_request(&self, who: InstanceId) -> Option<LockRequest> {
        self.pending.get(&who).copied()
    }
    fn active_instances(&self) -> Vec<InstanceId> {
        self.workspaces.keys().copied().collect()
    }
    fn staged_write_items(&self, who: InstanceId) -> BTreeSet<ItemId> {
        self.workspaces
            .get(&who)
            .map(|w| w.staged_writes().keys().copied().collect())
            .unwrap_or_default()
    }
}

/// Runtime state of one live instance.
struct Live {
    release: Tick,
    deadline: Tick,
    step: usize,
    consumed: u64,
    acquired: bool,
    blocked_since: Option<Tick>,
    /// This step's lock request was denied before — the eventual grant is
    /// traced as `Resumed` rather than `Granted`.
    was_denied: bool,
    blocking: Duration,
    lower_exec: Duration,
    lower_blockers: BTreeSet<TxnId>,
    restarts: u32,
}

struct Sim<'a> {
    vs: ViewState<'a>,
    config: &'a SimConfig,
    clock: Tick,
    /// Pending arrivals, sorted descending by time (pop from the back).
    arrivals: Vec<(Tick, TxnId, u32)>,
    live: BTreeMap<InstanceId, Live>,
    db: Database,
    history: History,
    trace: Trace,
    metrics: MetricsReport,
    installed_early: BTreeMap<InstanceId, BTreeSet<ItemId>>,
    miss_logged: BTreeSet<InstanceId>,
    outcome: RunOutcome,
}

impl<'a> Sim<'a> {
    fn new(set: &'a TransactionSet, config: &'a SimConfig) -> Result<Self> {
        let horizon = match config.horizon {
            Some(h) => Tick(h),
            None => {
                let max_offset = set
                    .templates()
                    .iter()
                    .map(|t| t.offset)
                    .max()
                    .unwrap_or(Tick::ZERO);
                max_offset + set.hyperperiod() + set.hyperperiod()
            }
        };
        let mut arrivals: Vec<(Tick, TxnId, u32)> = Vec::new();
        for t in set.templates() {
            let mut seq = 0u32;
            loop {
                if let Some(n) = t.instances {
                    if seq >= n {
                        break;
                    }
                } else if t.release_of(seq) >= horizon {
                    break;
                }
                arrivals.push((t.release_of(seq), t.id, seq));
                seq += 1;
                if arrivals.len() > 2_000_000 {
                    return Err(Error::Config(format!(
                        "arrival count exceeds 2,000,000 before horizon {horizon:?}"
                    )));
                }
            }
        }
        // Sort descending so the next arrival is at the back; tie-break by
        // template order for determinism.
        arrivals.sort_by(|a, b| b.cmp(a));

        let ceilings = CeilingTable::new(set);
        // The incremental Sysceil index rides inside the lock table, so
        // every protocol's ceiling queries are O(1) instead of full scans.
        let locks = LockTable::with_index(&ceilings);
        Ok(Sim {
            vs: ViewState {
                set,
                ceilings,
                locks,
                pm: PriorityManager::new(),
                workspaces: BTreeMap::new(),
                pending: BTreeMap::new(),
                empty: BTreeSet::new(),
            },
            config,
            clock: Tick::ZERO,
            arrivals,
            live: BTreeMap::new(),
            db: Database::new(),
            history: History::new(),
            trace: Trace::new(),
            metrics: MetricsReport::new(),
            installed_early: BTreeMap::new(),
            miss_logged: BTreeSet::new(),
            outcome: RunOutcome::Completed,
        })
    }

    fn run(&mut self, protocol: &mut dyn Protocol) -> Result<()> {
        self.trace
            .push_ceiling(Tick::ZERO, protocol.system_ceiling(&self.vs));
        let mut budget = self.config.max_steps;
        loop {
            budget = budget.checked_sub(1).ok_or(Error::EventBudgetExhausted)?;

            self.release_arrivals();
            self.log_deadline_misses();

            let Some(runner) = self.dispatch(protocol) else {
                if matches!(self.outcome, RunOutcome::Deadlock(_)) {
                    break;
                }
                if let Some(&(t, _, _)) = self.arrivals.last() {
                    // Idle (or everyone blocked) until the next arrival.
                    self.clock = t;
                    continue;
                }
                if self.live.is_empty() {
                    break; // all done
                }
                // No runner, no arrivals, live instances remain: every
                // live instance is blocked — a circular wait by
                // construction (blockers never commit unnoticed).
                let wf = WaitForGraph::from_edges(self.vs.pm.edges());
                let cycle = wf
                    .find_cycle()
                    .unwrap_or_else(|| self.live.keys().copied().collect());
                self.trace.push_event(TraceEvent::DeadlockDetected {
                    at: self.clock,
                    cycle: cycle.clone(),
                });
                self.outcome = RunOutcome::Deadlock(cycle);
                break;
            };
            if matches!(self.outcome, RunOutcome::Deadlock(_)) {
                break;
            }

            // Run `runner` until its step completes or the next arrival.
            let template = self.vs.set.template(runner.txn);
            let step = template.steps[self.live[&runner].step];
            let remaining = step.duration.raw() - self.live[&runner].consumed;
            debug_assert!(remaining > 0);
            let step_end = self.clock + Duration(remaining);
            let slice_end = match self.arrivals.last() {
                Some(&(t, _, _)) if t < step_end => t,
                _ => step_end,
            };
            debug_assert!(slice_end > self.clock, "time must advance");
            self.trace
                .push_segment(runner, self.clock, slice_end, SegKind::Running);
            let ran = slice_end.since(self.clock).raw();
            self.clock = slice_end;
            {
                let live = self.live.get_mut(&runner).unwrap();
                live.consumed += ran;
            }
            // Attribute this slice as lower-priority execution to every
            // other live instance the runner's base priority undercuts
            // (the measurable analogue of the analytic blocking B_i).
            let runner_base = self.vs.set.priority_of(runner.txn);
            for (&other, live) in self.live.iter_mut() {
                if other != runner && self.vs.set.priority_of(other.txn) > runner_base {
                    live.lower_exec += Duration(ran);
                }
            }

            if self.live[&runner].consumed == step.duration.raw() {
                self.complete_step(runner, protocol);
            }
        }
        Ok(())
    }

    /// Pick the ready instance with the highest running priority and make
    /// sure it holds its current step's lock, blocking/aborting as the
    /// protocol dictates. Returns the instance to run, or `None` if no
    /// instance is ready.
    fn dispatch(&mut self, protocol: &mut dyn Protocol) -> Option<InstanceId> {
        loop {
            let who = self.pick_ready()?;
            let live = &self.live[&who];
            let template = self.vs.set.template(who.txn);
            let step = template.steps[live.step];

            if live.acquired {
                return Some(who);
            }
            let Some((item, mode)) = step.op.access() else {
                // Compute step: nothing to acquire.
                return Some(who);
            };

            // A lock already held in a sufficient mode needs no request:
            // a write lock covers reads of the own staged value; an exact
            // re-grant is idempotent.
            let holds_sufficient = match mode {
                LockMode::Read => {
                    self.vs.locks.holds(who, item, LockMode::Read)
                        || self.vs.locks.holds(who, item, LockMode::Write)
                }
                LockMode::Write => self.vs.locks.holds(who, item, LockMode::Write),
            };
            if holds_sufficient {
                self.perform_data_op(who, live_step(&self.live, who), item, mode);
                self.live.get_mut(&who).unwrap().acquired = true;
                return Some(who);
            }

            let req = LockRequest { who, item, mode };
            let resumed = self.live[&who].was_denied;
            match protocol.request(&self.vs, req) {
                Decision::Grant => {
                    self.apply_grant(req, protocol, resumed);
                    return Some(who);
                }
                Decision::Block { blockers } => {
                    self.block(who, req, blockers, protocol);
                    if matches!(self.outcome, RunOutcome::Deadlock(_)) {
                        return None;
                    }
                    // Pick someone else.
                }
                Decision::AbortHolders { victims } => {
                    debug_assert!(protocol.may_abort());
                    for v in victims {
                        self.abort(v, protocol);
                    }
                    self.reevaluate(protocol);
                    // Loop: the request is retried (holders are gone).
                }
            }
        }
    }

    /// Highest-running-priority ready (live, unblocked) instance.
    fn pick_ready(&self) -> Option<InstanceId> {
        self.live
            .iter()
            .filter(|(_, l)| l.blocked_since.is_none())
            .map(|(&id, _)| id)
            .max_by_key(|&id| {
                (
                    self.vs.pm.running(id),
                    self.vs.set.priority_of(id.txn),
                    std::cmp::Reverse(id.seq),
                    std::cmp::Reverse(id.txn.0),
                )
            })
    }

    fn release_arrivals(&mut self) {
        while let Some(&(t, txn, seq)) = self.arrivals.last() {
            if t > self.clock {
                break;
            }
            self.arrivals.pop();
            let id = InstanceId::new(txn, seq);
            let template = self.vs.set.template(txn);
            let live = Live {
                release: t,
                deadline: template.deadline_of(seq),
                step: 0,
                consumed: 0,
                acquired: false,
                blocked_since: None,
                was_denied: false,
                blocking: Duration::ZERO,
                lower_exec: Duration::ZERO,
                lower_blockers: BTreeSet::new(),
                restarts: 0,
            };
            self.live.insert(id, live);
            self.vs.pm.register(id, self.vs.set.priority_of(txn));
            self.vs.workspaces.insert(id, Workspace::new(id));
            self.history.push(t, id, EventKind::Begin);
            self.trace.push_event(TraceEvent::Arrive { at: t, who: id });
        }
    }

    fn log_deadline_misses(&mut self) {
        let missed: Vec<(InstanceId, Tick)> = self
            .live
            .iter()
            .filter(|(id, l)| l.deadline <= self.clock && !self.miss_logged.contains(id))
            .map(|(&id, l)| (id, l.deadline))
            .collect();
        for (id, deadline) in missed {
            self.miss_logged.insert(id);
            self.trace.push_event(TraceEvent::DeadlineMiss {
                at: deadline,
                who: id,
            });
        }
    }

    fn perform_data_op(
        &mut self,
        who: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
    ) {
        let ws = self.vs.workspaces.get_mut(&who).expect("live workspace");
        match mode {
            LockMode::Read => {
                let rec = ws.read(&self.db, item);
                self.history.push(
                    self.clock,
                    who,
                    EventKind::Read {
                        item,
                        value: rec.value,
                        version: rec.version,
                        own: rec.own,
                    },
                );
            }
            LockMode::Write => {
                let value = ws.write(step_index, item);
                self.history
                    .push(self.clock, who, EventKind::StageWrite { item, value });
            }
        }
    }

    fn apply_grant(&mut self, req: LockRequest, protocol: &mut dyn Protocol, resumed: bool) {
        self.vs.locks.grant(req.who, req.item, req.mode);
        protocol.on_grant(&self.vs, req);
        let step_index = self.live[&req.who].step;
        self.perform_data_op(req.who, step_index, req.item, req.mode);
        self.live.get_mut(&req.who).unwrap().acquired = true;
        let ev = if resumed {
            TraceEvent::Resumed {
                at: self.clock,
                who: req.who,
                item: req.item,
                mode: req.mode,
            }
        } else {
            TraceEvent::Granted {
                at: self.clock,
                who: req.who,
                item: req.item,
                mode: req.mode,
            }
        };
        self.trace.push_event(ev);
        self.trace
            .push_ceiling(self.clock, protocol.system_ceiling(&self.vs));
    }

    fn block(
        &mut self,
        who: InstanceId,
        req: LockRequest,
        blockers: Vec<InstanceId>,
        protocol: &mut dyn Protocol,
    ) {
        debug_assert!(blockers.iter().all(|b| self.live.contains_key(b)));
        let my_base = self.vs.set.priority_of(who.txn);
        {
            let live = self.live.get_mut(&who).unwrap();
            live.blocked_since = Some(self.clock);
            live.was_denied = true;
            for b in &blockers {
                if self.vs.set.priority_of(b.txn) < my_base {
                    live.lower_blockers.insert(b.txn);
                }
            }
        }
        self.vs.pm.set_blocked(who, blockers.clone());
        self.vs.pending.insert(who, req);
        self.trace.push_event(TraceEvent::Denied {
            at: self.clock,
            who,
            item: req.item,
            mode: req.mode,
            blockers,
        });

        // A new blocking edge can itself unblock others: PCP-DA's
        // commit-order guard admits a read over a higher-priority write
        // holder once that holder is hard-blocked on the requester. Give
        // every blocked request a wake-up pass before testing for a
        // deadlock, so only irreducible cycles are reported.
        self.reevaluate(protocol);
        if self
            .live
            .get(&who)
            .is_none_or(|l| l.blocked_since.is_none())
        {
            // The requester itself was woken again; nothing to detect.
            return;
        }

        // Deadlock check on the wait-for graph.
        let wf = WaitForGraph::from_edges(self.vs.pm.edges());
        if let Some(cycle) = wf.find_cycle() {
            self.trace.push_event(TraceEvent::DeadlockDetected {
                at: self.clock,
                cycle: cycle.clone(),
            });
            if self.config.resolve_deadlocks {
                // Abort the lowest-base-priority instance on the cycle.
                let victim = cycle
                    .iter()
                    .copied()
                    .min_by_key(|v| self.vs.set.priority_of(v.txn))
                    .expect("cycle is non-empty");
                self.abort(victim, protocol);
                self.reevaluate(protocol);
            } else {
                self.outcome = RunOutcome::Deadlock(cycle);
            }
        }
    }

    fn unblock(&mut self, who: InstanceId) {
        let live = self.live.get_mut(&who).unwrap();
        if let Some(since) = live.blocked_since.take() {
            live.blocking += self.clock.since(since);
            self.trace
                .push_segment(who, since, self.clock, SegKind::Blocked);
        }
        self.vs.pm.clear_blocked(who);
        self.vs.pending.remove(&who);
    }

    /// Re-evaluate blocked requests after a lock release: an instance
    /// whose request would now be granted is *woken* (made ready) — the
    /// lock itself is acquired only when the instance is next dispatched,
    /// exactly as on a real single-CPU system, where a blocked transaction
    /// re-issues its request when it runs again. Granting at release time
    /// instead would let a low-priority waiter grab a ceiling-raising
    /// lock while a higher-priority *ready* transaction exists, breaking
    /// the single-blocking property (this repository's property tests
    /// caught exactly that).
    ///
    /// Instances whose requests are still denied keep (refreshed)
    /// blocking edges so priority inheritance stays precise.
    fn reevaluate(&mut self, protocol: &mut dyn Protocol) {
        let mut blocked: Vec<InstanceId> = self
            .live
            .iter()
            .filter(|(_, l)| l.blocked_since.is_some())
            .map(|(&id, _)| id)
            .collect();
        blocked.sort_by_key(|&id| {
            std::cmp::Reverse((
                self.vs.pm.running(id),
                self.vs.set.priority_of(id.txn),
                std::cmp::Reverse(id.seq),
            ))
        });
        for who in blocked {
            let live = &self.live[&who];
            let template = self.vs.set.template(who.txn);
            let (item, mode) = template.steps[live.step]
                .op
                .access()
                .expect("blocked on a data step");
            let req = LockRequest { who, item, mode };
            match protocol.request(&self.vs, req) {
                Decision::Grant | Decision::AbortHolders { .. } => {
                    // Would be granted now: wake up; the actual request
                    // (including any AbortHolders side effect) happens at
                    // dispatch time.
                    self.unblock(who);
                }
                Decision::Block { blockers } => {
                    debug_assert!(!blockers.is_empty());
                    let my_base = self.vs.set.priority_of(who.txn);
                    let live = self.live.get_mut(&who).unwrap();
                    for b in &blockers {
                        if self.vs.set.priority_of(b.txn) < my_base {
                            live.lower_blockers.insert(b.txn);
                        }
                    }
                    self.vs.pm.set_blocked(who, blockers);
                }
            }
        }
    }

    fn complete_step(&mut self, who: InstanceId, protocol: &mut dyn Protocol) {
        let completed_step;
        let total_steps = self.vs.set.template(who.txn).steps.len();
        {
            let live = self.live.get_mut(&who).unwrap();
            completed_step = live.step;
            live.step += 1;
            live.consumed = 0;
            live.acquired = false;
            live.was_denied = false;
        }

        if self.live[&who].step == total_steps {
            self.commit(who, protocol);
            return;
        }

        // Early releases (CCP).
        let releases = protocol.early_releases(&self.vs, who, completed_step);
        if !releases.is_empty() {
            let install_early = protocol.update_model() == UpdateModel::InstallOnEarlyRelease;
            for (item, mode) in releases {
                debug_assert!(self.vs.locks.holds(who, item, mode));
                self.vs.locks.release(who, item, mode);
                self.trace.push_event(TraceEvent::EarlyRelease {
                    at: self.clock,
                    who,
                    item,
                    mode,
                });
                if install_early && mode == LockMode::Write {
                    let staged = self
                        .vs
                        .workspaces
                        .get(&who)
                        .and_then(|w| w.staged_writes().get(&item).copied());
                    if let Some(value) = staged {
                        let fresh = self.installed_early.entry(who).or_default().insert(item);
                        if fresh {
                            let version = self.db.install(who, item, value, self.clock);
                            self.history.push(
                                self.clock,
                                who,
                                EventKind::Install {
                                    item,
                                    value,
                                    version,
                                },
                            );
                        }
                    }
                }
            }
            self.trace
                .push_ceiling(self.clock, protocol.system_ceiling(&self.vs));
            self.reevaluate(protocol);
        }
    }

    fn commit(&mut self, who: InstanceId, protocol: &mut dyn Protocol) {
        // Optimistic protocols validate at commit: abort every active
        // instance this commit invalidates, before the writes install.
        let victims = protocol.commit_victims(&self.vs, who);
        if !victims.is_empty() {
            debug_assert!(protocol.may_abort());
            for v in victims {
                if v != who && self.live.contains_key(&v) {
                    self.abort(v, protocol);
                }
            }
        }

        self.history.push(self.clock, who, EventKind::Commit);
        let early = self.installed_early.remove(&who).unwrap_or_default();
        let ws = self.vs.workspaces.get(&who).expect("live workspace");
        let installs: Vec<(ItemId, rtdb_types::Value)> = ws
            .staged_writes()
            .iter()
            .filter(|(item, _)| !early.contains(item))
            .map(|(&i, &v)| (i, v))
            .collect();
        for (item, value) in installs {
            let version = self.db.install(who, item, value, self.clock);
            self.history.push(
                self.clock,
                who,
                EventKind::Install {
                    item,
                    value,
                    version,
                },
            );
        }

        self.vs.locks.release_all(who);
        self.vs.pm.remove(who);
        protocol.on_commit(&self.vs, who);
        self.trace.push_event(TraceEvent::Commit {
            at: self.clock,
            who,
        });
        self.trace
            .push_ceiling(self.clock, protocol.system_ceiling(&self.vs));

        let live = self.live.remove(&who).expect("committing instance");
        self.vs.workspaces.remove(&who);
        self.metrics.record(InstanceMetrics {
            id: who,
            release: live.release,
            deadline: live.deadline,
            completion: Some(self.clock),
            blocking: live.blocking,
            lower_exec: live.lower_exec,
            distinct_lower_blockers: live.lower_blockers.into_iter().collect(),
            restarts: live.restarts,
        });

        self.reevaluate(protocol);
    }

    fn abort(&mut self, victim: InstanceId, protocol: &mut dyn Protocol) {
        debug_assert_eq!(
            protocol.update_model(),
            UpdateModel::Workspace,
            "aborts require the workspace model (no undo implemented)"
        );
        self.history.push(self.clock, victim, EventKind::Abort);
        self.trace.push_event(TraceEvent::Abort {
            at: self.clock,
            who: victim,
        });
        self.vs.locks.release_all(victim);
        // If the victim was itself blocked, flush its blocked segment.
        if self.live[&victim].blocked_since.is_some() {
            self.unblock(victim);
        } else {
            self.vs.pm.clear_blocked(victim);
            self.vs.pending.remove(&victim);
        }
        // Reset execution state; the instance restarts from scratch.
        {
            let live = self.live.get_mut(&victim).unwrap();
            live.step = 0;
            live.consumed = 0;
            live.acquired = false;
            live.was_denied = false;
            live.restarts += 1;
        }
        self.vs.workspaces.insert(victim, Workspace::new(victim));
        self.installed_early.remove(&victim);
        protocol.on_abort(&self.vs, victim);
        self.history.push(self.clock, victim, EventKind::Begin);
        self.trace
            .push_ceiling(self.clock, protocol.system_ceiling(&self.vs));
    }

    fn finish(mut self, _protocol: &mut dyn Protocol) -> RunResult {
        // Flush unfinished instances into the metrics.
        let leftovers: Vec<InstanceId> = self.live.keys().copied().collect();
        for who in leftovers {
            let live = self.live.remove(&who).unwrap();
            if let Some(since) = live.blocked_since {
                self.trace
                    .push_segment(who, since, self.clock, SegKind::Blocked);
            }
            let mut blocking = live.blocking;
            if let Some(since) = live.blocked_since {
                blocking += self.clock.since(since);
            }
            self.metrics.record(InstanceMetrics {
                id: who,
                release: live.release,
                deadline: live.deadline,
                completion: None,
                blocking,
                lower_exec: live.lower_exec,
                distinct_lower_blockers: live.lower_blockers.into_iter().collect(),
                restarts: live.restarts,
            });
        }
        self.metrics.max_sysceil = self.trace.max_system_ceiling();
        RunResult {
            protocol: "", // patched by the caller below
            history: self.history,
            db: self.db,
            metrics: self.metrics,
            trace: self.trace,
            outcome: self.outcome,
        }
    }
}

fn live_step(live: &BTreeMap<InstanceId, Live>, who: InstanceId) -> usize {
    live[&who].step
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpda::PcpDa;
    use rtdb_baselines::RwPcp;
    use rtdb_types::{SetBuilder, Step, TransactionTemplate};

    fn example3_set() -> TransactionSet {
        SetBuilder::new()
            .with(
                TransactionTemplate::new(
                    "T1",
                    5,
                    vec![Step::read(ItemId(0), 1), Step::read(ItemId(1), 1)],
                )
                .with_offset(1)
                .with_instances(2),
            )
            .with(
                TransactionTemplate::new(
                    "T2",
                    10,
                    vec![
                        Step::write(ItemId(0), 1),
                        Step::compute(2),
                        Step::write(ItemId(1), 1),
                        Step::compute(1),
                    ],
                )
                .with_instances(1),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn example3_pcpda_timeline_matches_figure2() {
        let set = example3_set();
        let mut p = PcpDa::new();
        let r = Engine::new(&set, SimConfig::default()).run(&mut p).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        // T1 never blocks; commits at 3 and 8; T2 commits at 9.
        let t1a = InstanceId::new(TxnId(0), 0);
        let t1b = InstanceId::new(TxnId(0), 1);
        let t2 = InstanceId::new(TxnId(1), 0);
        let m = |id| r.metrics.instance(id).unwrap().clone();
        assert_eq!(m(t1a).completion, Some(Tick(3)));
        assert_eq!(m(t1b).completion, Some(Tick(8)));
        assert_eq!(m(t2).completion, Some(Tick(9)));
        assert_eq!(m(t1a).blocking, Duration::ZERO);
        assert_eq!(m(t1b).blocking, Duration::ZERO);
        assert_eq!(r.metrics.deadline_misses(), 0);
        assert!(r.replay_check(&set).is_serializable());
        assert!(r.is_conflict_serializable());
    }

    #[test]
    fn example3_rwpcp_timeline_matches_figure3() {
        let set = example3_set();
        let mut p = RwPcp::new();
        let r = Engine::new(&set, SimConfig::default()).run(&mut p).unwrap();
        let t1a = InstanceId::new(TxnId(0), 0);
        let m = r.metrics.instance(t1a).unwrap();
        // Blocked from 1 to 5 (4 ticks), completes at 7, misses deadline 6.
        assert_eq!(m.blocking, Duration(4));
        assert_eq!(m.completion, Some(Tick(7)));
        assert!(!m.met_deadline());
        assert_eq!(r.metrics.deadline_misses(), 1);
        assert!(r.replay_check(&set).is_serializable());
    }
}
