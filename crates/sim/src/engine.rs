//! The simulation engine.
//!
//! A run is a deterministic function of `(transaction set, protocol,
//! config)`. The engine owns the clock, the arrival calendar, the lock
//! table, the priority manager (inheritance), the workspaces and the
//! database; a [`Protocol`] is consulted for every lock request and the
//! engine applies its decision.
//!
//! ## Semantics (matching the paper's examples tick-for-tick)
//!
//! * The ready instance with the highest **running** priority executes
//!   (ties: higher base priority, then earlier instance of the same
//!   template).
//! * A step's lock is requested the instant the step becomes current; the
//!   read/staged write is performed at grant time; the step then consumes
//!   its CPU duration, during which the instance may be preempted but
//!   keeps its locks.
//! * Denied requests block the instance; the blockers inherit its priority
//!   transitively; blocked requests are re-evaluated (in descending
//!   priority) whenever locks are released.
//! * Commit is instantaneous at the end of the last step: staged writes
//!   install, all locks release, the instance leaves the system.
//! * Deadlocks (possible under 2PL-PI and Naive-DA only) are detected on
//!   the wait-for graph at block time; depending on
//!   [`SimConfig::resolve_deadlocks`] the run either stops with
//!   [`RunOutcome::Deadlock`] or aborts the lowest-priority instance on
//!   the cycle and continues.
//!
//! ## Hot-path layout
//!
//! Per-instance runtime state lives in an `InstanceSlot` arena
//! (`SlotStore`): slots are dense, recycled through per-template free
//! lists when instances commit, and keep their workspace/trace capacity
//! across instances of the same template, so the steady state of a long
//! run allocates nothing per instance. Arrivals are not materialized up
//! front; an `ArrivalCalendar` (a binary heap with one outstanding entry
//! per template) produces them lazily in the exact order the old eager
//! sorted vector did. A map-backed `MapStore` with identical semantics
//! is kept behind `debug_assertions`/the `oracle-checks` feature as the
//! differential-testing oracle ([`Engine::run_map_oracle`]).

use crate::metrics::{InstanceMetrics, MetricsReport};
use crate::registry::{instantiate, AnyProtocol};
use crate::trace::{SegKind, Trace, TraceEvent};
use rtdb_core::{
    deadlock_victim, AbortReason, CeilingTable, Decision, DepTracker, DynProtocol, EngineView,
    LockRequest, LockTable, PriorityManager, Protocol, ProtocolFor, ProtocolKind, ShardRouter,
    TxnMode, UpdateModel, WaitForGraph, MAX_SHARDS,
};
use rtdb_storage::{
    Database, EventKind, History, MvStore, ReplayOutcome, SerializationGraph, VersionedValue,
    Workspace,
};
use rtdb_types::{
    Ceiling, Duration, Error, InstanceId, ItemId, LockMode, Priority, Result, Tick, TransactionSet,
    TxnId,
};
use std::cmp::Reverse;
#[cfg(any(debug_assertions, feature = "oracle-checks"))]
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Release arrivals strictly before this tick. `None`: simulate two
    /// hyperperiods (or just the explicitly bounded instances).
    pub horizon: Option<u64>,
    /// On deadlock: abort the lowest-priority instance on the cycle and
    /// continue (`true`), or stop with [`RunOutcome::Deadlock`] (`false`).
    pub resolve_deadlocks: bool,
    /// Safety budget on scheduler iterations.
    pub max_steps: u64,
    /// Offer read-only transactions the lock-exempt multiversion snapshot
    /// path. Takes effect only for protocols whose
    /// [`rtdb_core::ProtocolFor::lock_exempt`] accepts (the
    /// deferred-update kinds; CCP declines and keeps lock-based reads).
    pub snapshot_reads: bool,
    /// Number of lock-table shards (clamped to
    /// `1..=`[`rtdb_core::MAX_SHARDS`]). At `1` (the default) the engine
    /// is the classic single-table simulator, bit-for-bit. Above `1` the
    /// engine partitions items across per-shard lock tables with the same
    /// [`ShardRouter`] rule the runtime's sharded manager uses, and
    /// protocol decisions consult the requested item's shard-local table
    /// — the simulator analogue of DPCP-p's partitioned ceilings
    /// (DESIGN.md §6e). Requires a [`ProtocolKind::shardable`] protocol;
    /// [`Engine::run_kind`] and [`Engine::run_any`] reject others.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: None,
            resolve_deadlocks: false,
            max_steps: 10_000_000,
            snapshot_reads: false,
            shards: 1,
        }
    }
}

impl SimConfig {
    /// Config with an explicit horizon.
    pub fn with_horizon(horizon: u64) -> Self {
        SimConfig {
            horizon: Some(horizon),
            ..Default::default()
        }
    }

    /// Enable deadlock resolution by victim abort.
    pub fn resolving_deadlocks(mut self) -> Self {
        self.resolve_deadlocks = true;
        self
    }

    /// Enable the multiversion snapshot path for read-only transactions.
    pub fn with_snapshot_reads(mut self) -> Self {
        self.snapshot_reads = true;
        self
    }

    /// Partition the lock table across `shards` shards (clamped to
    /// `1..=`[`MAX_SHARDS`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// All released instances committed (or the horizon was reached with
    /// every remaining instance still making progress).
    Completed,
    /// An unresolved deadlock stopped the run; the cycle is attached.
    Deadlock(Vec<InstanceId>),
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunResult {
    /// Protocol name.
    pub protocol: &'static str,
    /// Full event history (reads, writes, commits, aborts, installs).
    pub history: History,
    /// Final database state.
    pub db: Database,
    /// Per-instance / per-template statistics.
    pub metrics: MetricsReport,
    /// Segments, events and ceiling samples for timeline rendering.
    pub trace: Trace,
    /// Completion or deadlock.
    pub outcome: RunOutcome,
    /// Value of the simulation clock when the run ended.
    pub final_clock: Tick,
    /// True if the lock-exempt snapshot path was active (config asked for
    /// it *and* the protocol's `lock_exempt` accepted).
    pub snapshot_reads: bool,
    /// Longest per-item version chain the multiversion side store ever
    /// held (0 when the snapshot path was off) — the memory-flatness
    /// telemetry the epoch GC is asserted against.
    pub mv_high_water: usize,
    /// Number of lock-table shards the run executed with.
    pub shards: usize,
}

impl RunResult {
    /// Serial-replay oracle in **commit order** (Theorem 3's serialization
    /// order — valid for every protocol here except CCP, whose early
    /// unlock lets the serialization order deviate from commit order; use
    /// [`RunResult::replay_check_topological`] for CCP).
    pub fn replay_check(&self, set: &TransactionSet) -> ReplayOutcome {
        rtdb_storage::replay_serial(set, &self.history, &self.db)
    }

    /// Serialization graph of the history.
    pub fn serialization_graph(&self) -> SerializationGraph {
        SerializationGraph::build(&self.history)
    }

    /// `true` if the serialization graph is acyclic (conflict-serializable
    /// history). This is the correctness oracle valid for *all* protocols.
    pub fn is_conflict_serializable(&self) -> bool {
        self.serialization_graph().find_cycle().is_none()
    }

    /// Commit stamps of the instances that ran on the snapshot path,
    /// sorted by instance id: each observed exactly the state after its
    /// stamp's worth of lock-path commits. Empty when the path was off.
    pub fn snapshot_stamps(&self) -> Vec<(InstanceId, u64)> {
        self.metrics
            .instances()
            .filter_map(|m| m.snapshot.map(|s| (m.id, s)))
            .collect()
    }

    /// Serial-replay oracle in a topological order of the serialization
    /// graph (view check valid for CCP). Returns `None` if the graph is
    /// cyclic.
    pub fn replay_check_topological(&self, set: &TransactionSet) -> Option<ReplayOutcome> {
        // Reorder the commit order into a topological order and replay by
        // temporarily rebuilding a history stub? Simpler: the value-replay
        // needs only the order; reuse replay_serial by checking the graph
        // first and replaying in topological order via a reordered commit
        // list.
        let graph = self.serialization_graph();
        let topo = graph.topological_order()?;
        let mut h = History::new();
        // Reconstruct a history with the same events but commit order =
        // topological order. Only commit_order and committed_reads matter
        // to the replayer; committed_reads is commit-order independent.
        for e in self.history.events() {
            if !matches!(e.kind, EventKind::Commit) {
                h.push(e.at, e.instance, e.kind);
            }
        }
        for who in topo {
            h.push(Tick::ZERO, who, EventKind::Commit);
        }
        Some(rtdb_storage::replay_serial(set, &h, &self.db))
    }
}

/// The engine. Create with [`Engine::new`], execute with [`Engine::run`].
pub struct Engine<'a> {
    set: &'a TransactionSet,
    config: SimConfig,
}

impl<'a> Engine<'a> {
    /// Engine over a transaction set.
    pub fn new(set: &'a TransactionSet, config: SimConfig) -> Self {
        Engine { set, config }
    }

    /// Execute one full run under a view-erased `protocol` object.
    ///
    /// The object is carried into the monomorphized loop behind a
    /// [`DynProtocol`] adapter; it pays two virtual hops per callback
    /// (protocol vtable + view vtable). Protocols named by the registry
    /// run fully statically through [`Engine::run_kind`] instead.
    pub fn run(&self, protocol: &mut dyn Protocol) -> Result<RunResult> {
        self.run_generic::<SlotStore, _>(&mut DynProtocol::new(protocol))
    }

    /// Execute one full run under the registry protocol `kind` — fully
    /// monomorphized: the steady-state loop dispatches to the protocol by
    /// enum match and hands it the concrete view, with no vtable on
    /// either side.
    pub fn run_kind(&self, kind: ProtocolKind) -> Result<RunResult> {
        self.run_any(&mut instantiate(kind))
    }

    /// Execute one full run under an already-instantiated [`AnyProtocol`]
    /// (static dispatch). Lets the caller keep the instance — e.g. to
    /// read [`AnyProtocol::requests`] afterwards.
    pub fn run_any(&self, protocol: &mut AnyProtocol) -> Result<RunResult> {
        self.check_shardable(protocol.kind())?;
        self.run_generic::<SlotStore, _>(protocol)
    }

    /// Reject multi-shard configs for protocols whose invariants do not
    /// survive partitioning ([`ProtocolKind::shardable`]). `Engine::run`
    /// takes a view-erased protocol with no kind to inspect; sharded runs
    /// through it are the caller's responsibility.
    fn check_shardable(&self, kind: ProtocolKind) -> Result<()> {
        if self.config.shards > 1 && !kind.shardable() {
            let valid: Vec<&str> = ProtocolKind::ALL
                .iter()
                .filter(|k| k.shardable())
                .map(|k| k.name())
                .collect();
            return Err(Error::Config(format!(
                "{} cannot run sharded; shardable protocols: {}",
                kind.name(),
                valid.join(", ")
            )));
        }
        Ok(())
    }

    /// Execute one full run on the map-backed instance store instead of
    /// the slot arena. Semantics are identical by construction; the
    /// differential property tests assert it. Available in debug builds
    /// and under the `oracle-checks` feature.
    #[cfg(any(debug_assertions, feature = "oracle-checks"))]
    pub fn run_map_oracle(&self, protocol: &mut dyn Protocol) -> Result<RunResult> {
        self.run_generic::<MapStore, _>(&mut DynProtocol::new(protocol))
    }

    /// [`Engine::run_kind`] on the map-backed oracle store.
    #[cfg(any(debug_assertions, feature = "oracle-checks"))]
    pub fn run_kind_map_oracle(&self, kind: ProtocolKind) -> Result<RunResult> {
        self.check_shardable(kind)?;
        self.run_generic::<MapStore, _>(&mut instantiate(kind))
    }

    fn run_generic<'s, S, P>(&'s self, protocol: &mut P) -> Result<RunResult>
    where
        S: InstanceStore,
        P: ProtocolFor<ViewState<'s, S>>,
    {
        let mut sim: Sim<'s, S> = Sim::new(self.set, &self.config);
        sim.run(protocol)?;
        let mut result = sim.finish();
        result.protocol = protocol.name();
        Ok(result)
    }
}

/// Runtime state of one live instance, arena-resident.
///
/// A slot consolidates everything the old engine kept in four parallel
/// `BTreeMap`s (live record, workspace, pending request, early-install
/// set) plus the deadline-miss flag. Sorted `Vec`s replace the per-field
/// sets; their capacity — like the workspace's — survives recycling.
struct InstanceSlot {
    id: InstanceId,
    release: Tick,
    deadline: Tick,
    step: usize,
    consumed: u64,
    acquired: bool,
    blocked_since: Option<Tick>,
    /// This step's lock request was denied before — the eventual grant is
    /// traced as `Resumed` rather than `Granted`.
    was_denied: bool,
    /// A deadline-miss event was already emitted for this instance.
    miss_logged: bool,
    blocking: Duration,
    lower_exec: Duration,
    /// Distinct lower-priority blocker templates, sorted ascending.
    lower_blockers: Vec<TxnId>,
    restarts: u32,
    workspace: Workspace,
    /// The denied request this instance is blocked on, if any.
    pending: Option<LockRequest>,
    /// Items already installed by an early release (CCP), sorted.
    installed_early: Vec<ItemId>,
    /// Commit stamp pinned by a snapshot reader at its first read.
    snapshot: Option<u64>,
    /// Parked at the commit gate: all steps done, waiting for commit
    /// dependencies to drain. Never dispatched (its `step` is past the
    /// template's last index).
    gated: bool,
    /// Wait-die hold after a self-abort: the restarted instance is not
    /// dispatched until one of these (its former blockers) commits or
    /// aborts — otherwise the retry would re-die in the same instant.
    /// Sorted ascending.
    hold_on: Vec<InstanceId>,
}

impl InstanceSlot {
    fn fresh(id: InstanceId, release: Tick, deadline: Tick) -> Self {
        InstanceSlot {
            id,
            release,
            deadline,
            step: 0,
            consumed: 0,
            acquired: false,
            blocked_since: None,
            was_denied: false,
            miss_logged: false,
            blocking: Duration::ZERO,
            lower_exec: Duration::ZERO,
            lower_blockers: Vec::new(),
            restarts: 0,
            workspace: Workspace::new(id),
            pending: None,
            installed_early: Vec::new(),
            snapshot: None,
            gated: false,
            hold_on: Vec::new(),
        }
    }

    /// Re-home a recycled slot to a new instance, keeping allocations.
    fn reset(&mut self, id: InstanceId, release: Tick, deadline: Tick) {
        self.id = id;
        self.release = release;
        self.deadline = deadline;
        self.step = 0;
        self.consumed = 0;
        self.acquired = false;
        self.blocked_since = None;
        self.was_denied = false;
        self.miss_logged = false;
        self.blocking = Duration::ZERO;
        self.lower_exec = Duration::ZERO;
        self.lower_blockers.clear();
        self.restarts = 0;
        self.workspace.reset(id);
        self.pending = None;
        self.installed_early.clear();
        self.snapshot = None;
        self.gated = false;
        self.hold_on.clear();
    }

    fn note_lower_blocker(&mut self, txn: TxnId) {
        if let Err(i) = self.lower_blockers.binary_search(&txn) {
            self.lower_blockers.insert(i, txn);
        }
    }

    /// Record an early install of `item`; `true` if it was not recorded
    /// before.
    fn mark_installed_early(&mut self, item: ItemId) -> bool {
        match self.installed_early.binary_search(&item) {
            Ok(_) => false,
            Err(i) => {
                self.installed_early.insert(i, item);
                true
            }
        }
    }
}

/// Storage backend for live-instance slots. Two implementations with
/// identical observable behavior: the production [`SlotStore`] arena and
/// the [`MapStore`] oracle.
trait InstanceStore {
    /// Empty store for a set with `n_templates` templates.
    fn with_templates(n_templates: usize) -> Self;
    /// Add a freshly released instance. `id` must not be present.
    fn insert(&mut self, id: InstanceId, release: Tick, deadline: Tick);
    fn get(&self, id: InstanceId) -> Option<&InstanceSlot>;
    fn get_mut(&mut self, id: InstanceId) -> Option<&mut InstanceSlot>;
    /// Drop (and possibly recycle) the slot of `id`.
    fn remove(&mut self, id: InstanceId);
}

/// Dense slot arena with per-template free lists.
///
/// `by_txn[t]` maps the live sequence numbers of template `t` to slot
/// indices (sorted by `seq`, so lookups are a short binary search —
/// usually over one or two entries). Committed instances push their slot
/// onto `free[t]`, and the next release of the same template reuses it —
/// including the workspace and scratch-`Vec` capacities, which are tuned
/// to exactly that template's footprint.
struct SlotStore {
    slots: Vec<InstanceSlot>,
    by_txn: Vec<Vec<(u32, u32)>>,
    free: Vec<Vec<u32>>,
}

impl SlotStore {
    #[inline]
    fn slot_of(&self, id: InstanceId) -> Option<usize> {
        let live = self.by_txn.get(id.txn.index())?;
        live.binary_search_by_key(&id.seq, |&(seq, _)| seq)
            .ok()
            .map(|i| live[i].1 as usize)
    }
}

impl InstanceStore for SlotStore {
    fn with_templates(n_templates: usize) -> Self {
        SlotStore {
            slots: Vec::new(),
            by_txn: vec![Vec::new(); n_templates],
            free: vec![Vec::new(); n_templates],
        }
    }

    fn insert(&mut self, id: InstanceId, release: Tick, deadline: Tick) {
        let t = id.txn.index();
        let slot = match self.free[t].pop() {
            Some(s) => {
                self.slots[s as usize].reset(id, release, deadline);
                s
            }
            None => {
                self.slots.push(InstanceSlot::fresh(id, release, deadline));
                (self.slots.len() - 1) as u32
            }
        };
        let live = &mut self.by_txn[t];
        match live.binary_search_by_key(&id.seq, |&(seq, _)| seq) {
            Ok(_) => unreachable!("instance {id:?} inserted twice"),
            Err(i) => live.insert(i, (id.seq, slot)),
        }
    }

    #[inline]
    fn get(&self, id: InstanceId) -> Option<&InstanceSlot> {
        self.slot_of(id).map(|s| &self.slots[s])
    }

    #[inline]
    fn get_mut(&mut self, id: InstanceId) -> Option<&mut InstanceSlot> {
        self.slot_of(id).map(|s| &mut self.slots[s])
    }

    fn remove(&mut self, id: InstanceId) {
        let t = id.txn.index();
        let live = &mut self.by_txn[t];
        if let Ok(i) = live.binary_search_by_key(&id.seq, |&(seq, _)| seq) {
            let (_, slot) = live.remove(i);
            self.free[t].push(slot);
        }
    }
}

/// Map-backed oracle with the pre-arena layout. Kept out of release
/// builds unless `oracle-checks` is enabled.
#[cfg(any(debug_assertions, feature = "oracle-checks"))]
#[derive(Default)]
struct MapStore {
    map: BTreeMap<InstanceId, InstanceSlot>,
}

#[cfg(any(debug_assertions, feature = "oracle-checks"))]
impl InstanceStore for MapStore {
    fn with_templates(_n_templates: usize) -> Self {
        MapStore::default()
    }

    fn insert(&mut self, id: InstanceId, release: Tick, deadline: Tick) {
        let prev = self
            .map
            .insert(id, InstanceSlot::fresh(id, release, deadline));
        debug_assert!(prev.is_none(), "instance {id:?} inserted twice");
    }

    fn get(&self, id: InstanceId) -> Option<&InstanceSlot> {
        self.map.get(&id)
    }

    fn get_mut(&mut self, id: InstanceId) -> Option<&mut InstanceSlot> {
        self.map.get_mut(&id)
    }

    fn remove(&mut self, id: InstanceId) {
        self.map.remove(&id);
    }
}

/// Lazy arrival source: one outstanding `(release, template, seq)` entry
/// per template in a min-heap; popping an entry enqueues the template's
/// next eligible instance. Emits exactly the ascending
/// `(Tick, TxnId, seq)` sequence the old eagerly-materialized vector held
/// — without the up-front O(instances) memory (and without its 2M cap).
struct ArrivalCalendar {
    horizon: Tick,
    heap: BinaryHeap<Reverse<(Tick, TxnId, u32)>>,
}

impl ArrivalCalendar {
    fn new(set: &TransactionSet, horizon: Tick) -> Self {
        let mut cal = ArrivalCalendar {
            horizon,
            heap: BinaryHeap::with_capacity(set.templates().len()),
        };
        for t in set.templates() {
            cal.enqueue(set, t.id, 0);
        }
        cal
    }

    /// Push instance `seq` of template `txn` if it is due to be released:
    /// explicitly bounded templates release all their instances regardless
    /// of the horizon, unbounded ones stop at it.
    fn enqueue(&mut self, set: &TransactionSet, txn: TxnId, seq: u32) {
        let t = set.template(txn);
        let eligible = match t.instances {
            Some(n) => seq < n,
            None => t.release_of(seq) < self.horizon,
        };
        if eligible {
            self.heap.push(Reverse((t.release_of(seq), txn, seq)));
        }
    }

    /// The next arrival, if any, without consuming it.
    #[inline]
    fn peek(&self) -> Option<(Tick, TxnId, u32)> {
        self.heap.peek().map(|&Reverse(e)| e)
    }

    /// Consume the next arrival and schedule its successor.
    fn pop(&mut self, set: &TransactionSet) -> Option<(Tick, TxnId, u32)> {
        let Reverse((t, txn, seq)) = self.heap.pop()?;
        self.enqueue(set, txn, seq + 1);
        Some((t, txn, seq))
    }
}

/// The [`EngineView`] protocols consult: the shared, read-mostly state.
struct ViewState<'a, S> {
    set: &'a TransactionSet,
    ceilings: CeilingTable,
    /// One lock table per shard — exactly one in the classic single-shard
    /// mode. Every table carries its own incremental Sysceil index, so a
    /// shard's *local* ceiling stays O(1): the simulator analogue of the
    /// runtime's per-shard lock managers.
    tables: Vec<LockTable>,
    /// Which shard's table [`EngineView::locks`] currently exposes. The
    /// engine focuses the requested item's shard before every protocol
    /// consultation, so one protocol instance makes shard-local decisions
    /// against per-shard ceilings — the modelling approximation of the
    /// runtime's one-instance-per-shard layout (DESIGN.md §6e). Always 0
    /// when unsharded.
    focus: usize,
    /// The shared item→shard rule ([`ShardRouter`]); everything maps to
    /// shard 0 when unsharded.
    router: ShardRouter,
    pm: PriorityManager,
    /// Retired-lock lists and the commit-dependency graph (early-release
    /// protocols; empty for everyone else).
    deps: DepTracker,
    store: S,
    /// Live instances, sorted ascending — the iteration order every sweep
    /// (dispatch, deadline misses, lower-priority attribution, finish)
    /// shares, and the exact key order of the oracle's `BTreeMap`s.
    active: Vec<InstanceId>,
    /// Per-template read-only flags (index = `TxnId::index()`).
    read_only: Vec<bool>,
    /// The snapshot path is on for this run (config asked *and* the
    /// protocol's `lock_exempt` accepted).
    snapshot_on: bool,
}

impl<S> ViewState<'_, S> {
    /// True if `who` runs on the lock-exempt snapshot path: it never
    /// requests locks and — as far as any protocol can observe — has
    /// read nothing ([`EngineView::data_read`] reports empty), so it can
    /// neither block nor be aborted by protocol decisions.
    #[inline]
    fn exempt(&self, who: InstanceId) -> bool {
        self.snapshot_on && self.read_only[who.txn.index()]
    }

    /// Aim [`EngineView::locks`] at the shard owning `item`. Must precede
    /// every protocol consultation about a concrete request.
    #[inline]
    fn focus_item(&mut self, item: ItemId) {
        self.focus = self.router.shard_of(item);
    }

    #[inline]
    fn covers(&self, who: InstanceId, item: ItemId, mode: LockMode) -> bool {
        self.tables[self.router.shard_of(item)].covers(who, item, mode)
    }

    #[inline]
    fn holds(&self, who: InstanceId, item: ItemId, mode: LockMode) -> bool {
        self.tables[self.router.shard_of(item)].holds(who, item, mode)
    }

    #[inline]
    fn grant(&mut self, who: InstanceId, item: ItemId, mode: LockMode) {
        let shard = self.router.shard_of(item);
        self.tables[shard].grant(who, item, mode);
    }

    #[inline]
    fn release(&mut self, who: InstanceId, item: ItemId, mode: LockMode) {
        let shard = self.router.shard_of(item);
        self.tables[shard].release(who, item, mode);
    }

    /// Release everything `who` holds, across every shard.
    fn release_all(&mut self, who: InstanceId) {
        for table in &mut self.tables {
            table.release_all(who);
        }
    }
}

impl<S: InstanceStore> EngineView for ViewState<'_, S> {
    fn set(&self) -> &TransactionSet {
        self.set
    }
    fn locks(&self) -> &LockTable {
        &self.tables[self.focus]
    }
    fn ceilings(&self) -> &CeilingTable {
        &self.ceilings
    }
    fn base_priority(&self, who: InstanceId) -> Priority {
        self.set.priority_of(who.txn)
    }
    fn running_priority(&self, who: InstanceId) -> Priority {
        self.pm.running(who)
    }
    fn data_read(&self, who: InstanceId) -> &[ItemId] {
        if self.exempt(who) {
            // Snapshot readers are invisible to protocols: their reads
            // cannot be invalidated (they resolve against an immutable
            // stamped prefix), so LC4-style conditions and optimistic
            // validation must not see them.
            return &[];
        }
        self.store.get(who).map_or(&[], |s| s.workspace.data_read())
    }
    fn pending_request(&self, who: InstanceId) -> Option<LockRequest> {
        self.store.get(who).and_then(|s| s.pending)
    }
    fn active_instances(&self) -> &[InstanceId] {
        &self.active
    }
    fn staged_write_items(&self, who: InstanceId) -> Vec<ItemId> {
        self.store.get(who).map_or_else(Vec::new, |s| {
            s.workspace
                .staged_writes()
                .iter()
                .map(|&(item, _)| item)
                .collect()
        })
    }
    fn deps(&self) -> Option<&DepTracker> {
        Some(&self.deps)
    }
}

struct Sim<'a, S> {
    vs: ViewState<'a, S>,
    config: &'a SimConfig,
    clock: Tick,
    calendar: ArrivalCalendar,
    db: Database,
    /// Multiversion side store backing snapshot readers (idle unless the
    /// snapshot path is on).
    mv: MvStore,
    history: History,
    trace: Trace,
    metrics: MetricsReport,
    outcome: RunOutcome,
    /// Scratch for [`Sim::reevaluate`], reused across calls.
    reeval_scratch: Vec<InstanceId>,
    /// Number of live instances with `blocked_since` set.
    n_blocked: usize,
    /// Number of live instances parked at the commit gate.
    n_gated: usize,
    /// Number of live instances with a non-empty wait-die hold.
    n_held: usize,
    /// Earliest deadline that may still need a miss event; the sweep in
    /// [`Sim::log_deadline_misses`] is skipped while the clock is before
    /// it.
    next_miss_check: Tick,
}

impl<'a, S: InstanceStore> Sim<'a, S> {
    fn new(set: &'a TransactionSet, config: &'a SimConfig) -> Self {
        let horizon = match config.horizon {
            Some(h) => Tick(h),
            None => {
                let max_offset = set
                    .templates()
                    .iter()
                    .map(|t| t.offset)
                    .max()
                    .unwrap_or(Tick::ZERO);
                max_offset + set.hyperperiod() + set.hyperperiod()
            }
        };
        let calendar = ArrivalCalendar::new(set, horizon);

        // Pre-size the history and trace for the run's expected volume so
        // steady-state appends never reallocate. (Estimates only; capped.)
        let mut est_instances: u64 = 0;
        let mut est_ops: u64 = 0;
        for t in set.templates() {
            let n = match t.instances {
                Some(n) => u64::from(n),
                None if horizon > t.offset => {
                    let span = horizon.since(t.offset).raw();
                    span.div_ceil(t.period.raw().max(1))
                }
                None => 0,
            };
            est_instances += n;
            est_ops += n * (t.steps.len() as u64 + 3);
        }
        const RESERVE_CAP: u64 = 1 << 20;
        let mut history = History::new();
        history.reserve_events(est_ops.min(RESERVE_CAP) as usize);
        let mut trace = Trace::new();
        trace.reserve(
            est_instances.min(RESERVE_CAP) as usize,
            est_ops.min(RESERVE_CAP) as usize,
        );

        let ceilings = CeilingTable::new(set);
        // The incremental Sysceil index rides inside each lock table, so
        // every protocol's ceiling queries are O(1) instead of full scans.
        // Ceilings are static (a function of the whole set), so every
        // shard indexes the identical table.
        let shards = config.shards.clamp(1, MAX_SHARDS);
        let tables = (0..shards)
            .map(|_| LockTable::with_index(&ceilings))
            .collect();
        Sim {
            vs: ViewState {
                set,
                ceilings,
                tables,
                focus: 0,
                router: ShardRouter::new(shards),
                pm: PriorityManager::new(),
                deps: DepTracker::new(),
                store: S::with_templates(set.templates().len()),
                active: Vec::new(),
                read_only: set.templates().iter().map(|t| t.is_read_only()).collect(),
                snapshot_on: false,
            },
            config,
            clock: Tick::ZERO,
            calendar,
            db: Database::new(),
            mv: MvStore::new(),
            history,
            trace,
            metrics: MetricsReport::new(),
            outcome: RunOutcome::Completed,
            reeval_scratch: Vec::new(),
            n_blocked: 0,
            n_gated: 0,
            n_held: 0,
            next_miss_check: Tick(u64::MAX),
        }
    }

    #[inline]
    fn slot(&self, who: InstanceId) -> &InstanceSlot {
        self.vs.store.get(who).expect("instance is live")
    }

    #[inline]
    fn slot_mut(&mut self, who: InstanceId) -> &mut InstanceSlot {
        self.vs.store.get_mut(who).expect("instance is live")
    }

    fn activate(&mut self, id: InstanceId) {
        match self.vs.active.binary_search(&id) {
            Ok(_) => debug_assert!(false, "instance {id:?} already active"),
            Err(i) => self.vs.active.insert(i, id),
        }
    }

    fn deactivate(&mut self, id: InstanceId) {
        if let Ok(i) = self.vs.active.binary_search(&id) {
            self.vs.active.remove(i);
        }
    }

    /// Sample the system ceiling for the trace: the max of every shard's
    /// local ceiling — identical to the single table's ceiling when
    /// unsharded, and exactly what [`rtdb_core::GlobalCeiling`] publishes
    /// in the runtime.
    fn push_ceiling<P: ProtocolFor<ViewState<'a, S>>>(&mut self, protocol: &P) {
        let mut max = Ceiling::Dummy;
        for shard in 0..self.vs.tables.len() {
            self.vs.focus = shard;
            max = max.max(protocol.system_ceiling(&self.vs));
        }
        self.trace.push_ceiling(self.clock, max);
    }

    fn run<P: ProtocolFor<ViewState<'a, S>>>(&mut self, protocol: &mut P) -> Result<()> {
        self.vs.snapshot_on = self.config.snapshot_reads && protocol.lock_exempt(TxnMode::ReadOnly);
        self.push_ceiling(protocol);
        let mut budget = self.config.max_steps;
        loop {
            budget = budget.checked_sub(1).ok_or(Error::EventBudgetExhausted)?;

            self.release_arrivals();
            self.log_deadline_misses();

            let Some(runner) = self.dispatch(protocol) else {
                if matches!(self.outcome, RunOutcome::Deadlock(_)) {
                    break;
                }
                if let Some((t, _, _)) = self.calendar.peek() {
                    // Idle (or everyone blocked) until the next arrival.
                    self.clock = t;
                    continue;
                }
                if self.vs.active.is_empty() {
                    break; // all done
                }
                // No runner, no arrivals, live instances remain: every
                // live instance is blocked, gated or held — a circular
                // wait by construction (blockers never commit unnoticed).
                let wf = WaitForGraph::from_edges(self.vs.pm.edges());
                if self.config.resolve_deadlocks {
                    if let Some(cycle) = wf.find_cycle() {
                        let victim = deadlock_victim(&cycle, |v| self.vs.set.priority_of(v.txn));
                        self.trace.push_event(TraceEvent::DeadlockDetected {
                            at: self.clock,
                            cycle,
                        });
                        self.abort(victim, AbortReason::DeadlockVictim, protocol);
                        self.reevaluate(protocol);
                        continue;
                    }
                }
                let cycle = wf.find_cycle().unwrap_or_else(|| self.vs.active.clone());
                self.trace.push_event(TraceEvent::DeadlockDetected {
                    at: self.clock,
                    cycle: cycle.clone(),
                });
                self.outcome = RunOutcome::Deadlock(cycle);
                break;
            };
            if matches!(self.outcome, RunOutcome::Deadlock(_)) {
                break;
            }

            // Run `runner` until its step completes or the next arrival.
            let template = self.vs.set.template(runner.txn);
            let (step_index, consumed) = {
                let slot = self.slot(runner);
                (slot.step, slot.consumed)
            };
            let step = template.steps[step_index];
            let remaining = step.duration.raw() - consumed;
            debug_assert!(remaining > 0);
            let step_end = self.clock + Duration(remaining);
            let slice_end = match self.calendar.peek() {
                Some((t, _, _)) if t < step_end => t,
                _ => step_end,
            };
            debug_assert!(slice_end > self.clock, "time must advance");
            self.trace
                .push_segment(runner, self.clock, slice_end, SegKind::Running);
            let ran = slice_end.since(self.clock).raw();
            self.clock = slice_end;
            self.slot_mut(runner).consumed += ran;
            // Attribute this slice as lower-priority execution to every
            // other live instance the runner's base priority undercuts
            // (the measurable analogue of the analytic blocking B_i).
            let runner_base = self.vs.set.priority_of(runner.txn);
            {
                let ViewState {
                    set, store, active, ..
                } = &mut self.vs;
                for &other in active.iter() {
                    if other != runner && set.priority_of(other.txn) > runner_base {
                        store.get_mut(other).expect("active is live").lower_exec += Duration(ran);
                    }
                }
            }

            if self.slot(runner).consumed == step.duration.raw() {
                self.complete_step(runner, protocol);
            }
        }
        Ok(())
    }

    /// Pick the ready instance with the highest running priority and make
    /// sure it holds its current step's lock, blocking/aborting as the
    /// protocol dictates. Returns the instance to run, or `None` if no
    /// instance is ready.
    fn dispatch<P: ProtocolFor<ViewState<'a, S>>>(
        &mut self,
        protocol: &mut P,
    ) -> Option<InstanceId> {
        loop {
            let who = self.pick_ready()?;
            let slot = self.slot(who);
            let template = self.vs.set.template(who.txn);
            let step = template.steps[slot.step];
            let (step_index, resumed) = (slot.step, slot.was_denied);

            if slot.acquired {
                return Some(who);
            }
            if self.vs.exempt(who) {
                // Snapshot reader: no lock request, no protocol call. The
                // read resolves against the stamp pinned at the first read.
                if let Some((item, mode)) = step.op.access() {
                    debug_assert_eq!(mode, LockMode::Read, "read-only template wrote");
                    self.perform_snapshot_read(who, item);
                }
                self.slot_mut(who).acquired = true;
                return Some(who);
            }
            let Some((item, mode)) = step.op.access() else {
                // Compute step: nothing to acquire.
                return Some(who);
            };

            // A lock already held in a sufficient mode needs no request:
            // a write lock covers reads of the own staged value; an exact
            // re-grant is idempotent.
            if self.vs.covers(who, item, mode) {
                self.perform_data_op(who, step_index, item, mode);
                self.slot_mut(who).acquired = true;
                return Some(who);
            }

            let req = LockRequest { who, item, mode };
            self.vs.focus_item(item);
            match protocol.request(&self.vs, req) {
                Decision::Grant => {
                    self.apply_grant(req, protocol, resumed);
                    return Some(who);
                }
                Decision::Block { blockers } => {
                    self.block(who, req, blockers, protocol);
                    if matches!(self.outcome, RunOutcome::Deadlock(_)) {
                        return None;
                    }
                    // Pick someone else.
                }
                Decision::AbortHolders { victims } => {
                    debug_assert!(protocol.may_abort());
                    for v in victims {
                        self.abort(v, AbortReason::Wound, protocol);
                    }
                    self.reevaluate(protocol);
                    // Loop: the request is retried (holders are gone).
                }
                Decision::AbortSelf { blockers } => {
                    debug_assert!(protocol.may_abort());
                    debug_assert!(!blockers.is_empty() && !blockers.contains(&who));
                    self.abort(who, AbortReason::CeilingBlock, protocol);
                    self.reevaluate(protocol);
                    // Wait-die hold: park the restarted instance until a
                    // blocker commits or aborts, so the retry is not
                    // re-decided (and re-died) in the same instant. Set
                    // *after* the reevaluate so it is not cleared by it.
                    let mut hold: Vec<InstanceId> = blockers
                        .into_iter()
                        .filter(|&b| b != who && self.vs.store.get(b).is_some())
                        .collect();
                    hold.sort_unstable();
                    hold.dedup();
                    if !hold.is_empty() && self.vs.store.get(who).is_some() {
                        self.vs.pm.set_blocked(who, &hold);
                        self.slot_mut(who).hold_on = hold;
                        self.n_held += 1;
                    }
                    // Pick someone else.
                }
            }
        }
    }

    /// Highest-running-priority ready (live, unblocked, not gated or
    /// held) instance.
    fn pick_ready(&self) -> Option<InstanceId> {
        self.vs
            .active
            .iter()
            .copied()
            .filter(|&id| {
                let s = self.slot(id);
                s.blocked_since.is_none() && !s.gated && s.hold_on.is_empty()
            })
            .max_by_key(|&id| {
                (
                    self.vs.pm.running(id),
                    self.vs.set.priority_of(id.txn),
                    Reverse(id.seq),
                    Reverse(id.txn.0),
                )
            })
    }

    fn release_arrivals(&mut self) {
        while let Some((t, txn, seq)) = self.calendar.peek() {
            if t > self.clock {
                break;
            }
            self.calendar.pop(self.vs.set);
            let id = InstanceId::new(txn, seq);
            let template = self.vs.set.template(txn);
            let deadline = template.deadline_of(seq);
            self.vs.store.insert(id, t, deadline);
            self.next_miss_check = self.next_miss_check.min(deadline);
            self.activate(id);
            self.vs.pm.register(id, self.vs.set.priority_of(txn));
            self.history.push(t, id, EventKind::Begin);
            self.trace.push_event(TraceEvent::Arrive { at: t, who: id });
        }
    }

    fn log_deadline_misses(&mut self) {
        if self.clock < self.next_miss_check {
            return;
        }
        let mut next = Tick(u64::MAX);
        for i in 0..self.vs.active.len() {
            let id = self.vs.active[i];
            let clock = self.clock;
            let slot = self.slot_mut(id);
            if slot.miss_logged {
                continue;
            }
            if slot.deadline <= clock {
                slot.miss_logged = true;
                let deadline = slot.deadline;
                self.trace.push_event(TraceEvent::DeadlineMiss {
                    at: deadline,
                    who: id,
                });
            } else {
                next = next.min(slot.deadline);
            }
        }
        self.next_miss_check = next;
    }

    fn perform_data_op(
        &mut self,
        who: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
    ) {
        let Sim {
            vs,
            db,
            history,
            clock,
            ..
        } = self;
        let ViewState { store, deps, .. } = vs;
        let slot = store.get_mut(who).expect("live workspace");
        match mode {
            LockMode::Read => {
                // Dirty read over a retired chain: with no own staged
                // value, the latest live retired writer's value is the
                // one this reader is ordered after (the commit
                // dependency taken at grant time). Its predicted version
                // is the committed version plus the chain length — every
                // live chain member installs exactly one bump first.
                let dirty = if slot.workspace.staged_value(item).is_none() {
                    deps.latest_retired(item)
                } else {
                    None
                };
                let rec = match dirty {
                    Some((rw, chain_len)) if rw.owner != who => {
                        let version = db.get(item).version + chain_len as u64;
                        slot.workspace.read_dirty(item, rw.value, version)
                    }
                    _ => slot.workspace.read(db, item),
                };
                history.push(
                    *clock,
                    who,
                    EventKind::Read {
                        item,
                        value: rec.value,
                        version: rec.version,
                        own: rec.own,
                    },
                );
            }
            LockMode::Write => {
                let value = slot.workspace.write(step_index, item);
                history.push(*clock, who, EventKind::StageWrite { item, value });
            }
        }
    }

    /// Serve a snapshot reader's read: pin the current commit stamp on
    /// first use, then resolve the item against that stamp in the
    /// multiversion store. No locks, no protocol.
    fn perform_snapshot_read(&mut self, who: InstanceId, item: ItemId) {
        let Sim {
            vs,
            mv,
            history,
            clock,
            ..
        } = self;
        let slot = vs.store.get_mut(who).expect("live workspace");
        let stamp = *slot.snapshot.get_or_insert_with(|| mv.stamp());
        let vv = mv.read_at(item, stamp).unwrap_or(VersionedValue::INITIAL);
        let rec = slot.workspace.read_versioned(item, vv.value, vv.version);
        history.push(
            *clock,
            who,
            EventKind::Read {
                item,
                value: rec.value,
                version: rec.version,
                own: false,
            },
        );
    }

    /// Retire multiversion entries no live snapshot (current or future)
    /// can observe.
    fn prune_mv(&mut self) {
        let mut floor = self.mv.stamp();
        for &id in &self.vs.active {
            if self.vs.exempt(id) {
                if let Some(s) = self.slot(id).snapshot {
                    floor = floor.min(s);
                }
            }
        }
        self.mv.prune(floor);
    }

    fn apply_grant<P: ProtocolFor<ViewState<'a, S>>>(
        &mut self,
        req: LockRequest,
        protocol: &mut P,
        resumed: bool,
    ) {
        self.vs.focus_item(req.item);
        self.vs.grant(req.who, req.item, req.mode);
        // Early-release bookkeeping: acquiring an item with live retired
        // writes orders the grantee after the latest such writer — its
        // commit gates on the writer's, and the writer's abort cascades.
        // Registered for *every* mode: a write over the chain must also
        // install after the chain (install order = retire order).
        let latest = self
            .vs
            .deps
            .latest_retired(req.item)
            .map(|(rw, _)| rw.owner);
        if let Some(owner) = latest {
            self.vs.deps.add_dep(req.who, owner);
        }
        protocol.on_grant(&self.vs, req);
        let step_index = self.slot(req.who).step;
        self.perform_data_op(req.who, step_index, req.item, req.mode);
        self.slot_mut(req.who).acquired = true;
        let ev = if resumed {
            TraceEvent::Resumed {
                at: self.clock,
                who: req.who,
                item: req.item,
                mode: req.mode,
            }
        } else {
            TraceEvent::Granted {
                at: self.clock,
                who: req.who,
                item: req.item,
                mode: req.mode,
            }
        };
        self.trace.push_event(ev);
        self.push_ceiling(protocol);
    }

    fn block<P: ProtocolFor<ViewState<'a, S>>>(
        &mut self,
        who: InstanceId,
        req: LockRequest,
        blockers: Vec<InstanceId>,
        protocol: &mut P,
    ) {
        debug_assert!(blockers.iter().all(|&b| self.vs.store.get(b).is_some()));
        let my_base = self.vs.set.priority_of(who.txn);
        let clock = self.clock;
        {
            let ViewState { set, store, .. } = &mut self.vs;
            let slot = store.get_mut(who).expect("blocked instance is live");
            debug_assert!(slot.blocked_since.is_none());
            slot.blocked_since = Some(clock);
            slot.was_denied = true;
            slot.pending = Some(req);
            for &b in &blockers {
                if set.priority_of(b.txn) < my_base {
                    slot.note_lower_blocker(b.txn);
                }
            }
        }
        self.n_blocked += 1;
        self.vs.pm.set_blocked(who, &blockers);
        self.trace.push_event(TraceEvent::Denied {
            at: self.clock,
            who,
            item: req.item,
            mode: req.mode,
            blockers,
        });

        // A new blocking edge can itself unblock others: PCP-DA's
        // commit-order guard admits a read over a higher-priority write
        // holder once that holder is hard-blocked on the requester. Give
        // every blocked request a wake-up pass before testing for a
        // deadlock, so only irreducible cycles are reported.
        self.reevaluate(protocol);
        if self
            .vs
            .store
            .get(who)
            .is_none_or(|s| s.blocked_since.is_none())
        {
            // The requester itself was woken again; nothing to detect.
            return;
        }

        // Deadlock check on the wait-for graph.
        let wf = WaitForGraph::from_edges(self.vs.pm.edges());
        if let Some(cycle) = wf.find_cycle() {
            if self.config.resolve_deadlocks {
                // Abort the lowest-base-priority instance on the cycle —
                // the victim rule shared with the runtime lock managers.
                let victim = deadlock_victim(&cycle, |v| self.vs.set.priority_of(v.txn));
                self.trace.push_event(TraceEvent::DeadlockDetected {
                    at: self.clock,
                    cycle,
                });
                self.abort(victim, AbortReason::DeadlockVictim, protocol);
                self.reevaluate(protocol);
            } else {
                self.trace.push_event(TraceEvent::DeadlockDetected {
                    at: self.clock,
                    cycle: cycle.clone(),
                });
                self.outcome = RunOutcome::Deadlock(cycle);
            }
        }
    }

    fn unblock(&mut self, who: InstanceId) {
        let clock = self.clock;
        let taken = {
            let slot = self.slot_mut(who);
            let since = slot.blocked_since.take();
            if let Some(s) = since {
                slot.blocking += clock.since(s);
            }
            since
        };
        if let Some(since) = taken {
            self.n_blocked -= 1;
            self.trace.push_segment(who, since, clock, SegKind::Blocked);
        }
        self.vs.pm.clear_blocked(who);
        self.slot_mut(who).pending = None;
    }

    /// Re-evaluate blocked requests after a lock release: an instance
    /// whose request would now be granted is *woken* (made ready) — the
    /// lock itself is acquired only when the instance is next dispatched,
    /// exactly as on a real single-CPU system, where a blocked transaction
    /// re-issues its request when it runs again. Granting at release time
    /// instead would let a low-priority waiter grab a ceiling-raising
    /// lock while a higher-priority *ready* transaction exists, breaking
    /// the single-blocking property (this repository's property tests
    /// caught exactly that).
    ///
    /// Instances whose requests are still denied keep (refreshed)
    /// blocking edges so priority inheritance stays precise.
    fn reevaluate<P: ProtocolFor<ViewState<'a, S>>>(&mut self, protocol: &mut P) {
        if self.n_blocked == 0 {
            return;
        }
        let mut blocked = std::mem::take(&mut self.reeval_scratch);
        blocked.clear();
        blocked.extend(
            self.vs
                .active
                .iter()
                .copied()
                .filter(|&id| self.slot(id).blocked_since.is_some()),
        );
        blocked.sort_by_key(|&id| {
            Reverse((
                self.vs.pm.running(id),
                self.vs.set.priority_of(id.txn),
                Reverse(id.seq),
            ))
        });
        for &who in &blocked {
            let slot = self.slot(who);
            let template = self.vs.set.template(who.txn);
            let (item, mode) = template.steps[slot.step]
                .op
                .access()
                .expect("blocked on a data step");
            let req = LockRequest { who, item, mode };
            self.vs.focus_item(item);
            match protocol.request(&self.vs, req) {
                Decision::Grant | Decision::AbortHolders { .. } | Decision::AbortSelf { .. } => {
                    // Would be granted now — or would abort (either way the
                    // instance must run to find out): wake up; the actual
                    // request and any abort side effect happen at dispatch
                    // time.
                    self.unblock(who);
                }
                Decision::Block { blockers } => {
                    debug_assert!(!blockers.is_empty());
                    let my_base = self.vs.set.priority_of(who.txn);
                    {
                        let ViewState { set, store, .. } = &mut self.vs;
                        let slot = store.get_mut(who).expect("blocked instance is live");
                        for &b in &blockers {
                            if set.priority_of(b.txn) < my_base {
                                slot.note_lower_blocker(b.txn);
                            }
                        }
                    }
                    self.vs.pm.set_blocked(who, &blockers);
                }
            }
        }
        self.reeval_scratch = blocked;
    }

    fn complete_step<P: ProtocolFor<ViewState<'a, S>>>(
        &mut self,
        who: InstanceId,
        protocol: &mut P,
    ) {
        let completed_step;
        let next_step;
        let total_steps = self.vs.set.template(who.txn).steps.len();
        {
            let slot = self.slot_mut(who);
            completed_step = slot.step;
            slot.step += 1;
            slot.consumed = 0;
            slot.acquired = false;
            slot.was_denied = false;
            next_step = slot.step;
        }

        if next_step == total_steps {
            self.commit(who, protocol);
            return;
        }
        if self.vs.exempt(who) {
            // Snapshot readers hold nothing to release early.
            return;
        }

        // Early releases (CCP).
        let releases = protocol.early_releases(&self.vs, who, completed_step);
        if !releases.is_empty() {
            let install_early = protocol.update_model() == UpdateModel::InstallOnEarlyRelease;
            for (item, mode) in releases {
                debug_assert!(self.vs.holds(who, item, mode));
                self.vs.release(who, item, mode);
                self.trace.push_event(TraceEvent::EarlyRelease {
                    at: self.clock,
                    who,
                    item,
                    mode,
                });
                if install_early && mode == LockMode::Write {
                    let staged = self
                        .vs
                        .store
                        .get(who)
                        .and_then(|s| s.workspace.staged_value(item));
                    if let Some(value) = staged {
                        let fresh = self.slot_mut(who).mark_installed_early(item);
                        if fresh {
                            let version = self.db.install(who, item, value, self.clock);
                            self.history.push(
                                self.clock,
                                who,
                                EventKind::Install {
                                    item,
                                    value,
                                    version,
                                },
                            );
                        }
                    }
                }
            }
            self.push_ceiling(protocol);
            self.reevaluate(protocol);
        }

        // Early release into the retired list (Bamboo / Brook-2PL):
        // write locks past their last access release now; the staged
        // value stays visible through the dependency tracker, and
        // successors order themselves behind the retiree via commit
        // dependencies instead of lock waits.
        let retired = protocol.retires(&self.vs, who, completed_step);
        if !retired.is_empty() {
            for item in retired {
                debug_assert!(self.vs.holds(who, item, LockMode::Write));
                let staged = self
                    .vs
                    .store
                    .get(who)
                    .and_then(|s| s.workspace.staged_value(item))
                    .expect("retired an item without a staged write");
                if self.vs.holds(who, item, LockMode::Read) {
                    // An upgrade's read lock goes with the write lock:
                    // successors are ordered by the dependency anyway.
                    self.vs.release(who, item, LockMode::Read);
                }
                self.vs.release(who, item, LockMode::Write);
                self.vs.deps.retire(who, item, staged);
                self.trace.push_event(TraceEvent::EarlyRelease {
                    at: self.clock,
                    who,
                    item,
                    mode: LockMode::Write,
                });
            }
            self.push_ceiling(protocol);
            self.reevaluate(protocol);
        }
    }

    fn commit<P: ProtocolFor<ViewState<'a, S>>>(&mut self, who: InstanceId, protocol: &mut P) {
        if self.vs.exempt(who) {
            self.commit_snapshot(who);
            return;
        }
        // Commit gate: with outstanding commit dependencies the instance
        // parks until the last dependency commits (recoverability — no
        // one commits a dirty value whose writer can still abort). The
        // drain in the committing dependency's own `commit` re-enters
        // here.
        if self.vs.deps.has_deps(who) {
            self.gate(who, protocol);
            return;
        }
        // Optimistic protocols validate at commit: abort every active
        // instance this commit invalidates, before the writes install.
        // Snapshot readers can never be victims — their reads resolve
        // against an immutable stamped prefix no commit invalidates.
        let victims = protocol.commit_victims(&self.vs, who);
        if !victims.is_empty() {
            debug_assert!(protocol.may_abort());
            for v in victims {
                if v != who && self.vs.store.get(v).is_some() && !self.vs.exempt(v) {
                    self.abort(v, AbortReason::Wound, protocol);
                }
            }
        }

        self.history.push(self.clock, who, EventKind::Commit);
        // Install staged writes straight out of the workspace: the slot
        // lives in `vs` while the database and history are sibling fields,
        // so no staging copy is needed.
        {
            let Sim {
                vs,
                db,
                mv,
                history,
                clock,
                ..
            } = self;
            let slot = vs.store.get(who).expect("live workspace");
            for &(item, value) in slot.workspace.staged_writes() {
                if slot.installed_early.binary_search(&item).is_ok() {
                    continue;
                }
                let version = db.install(who, item, value, *clock);
                history.push(
                    *clock,
                    who,
                    EventKind::Install {
                        item,
                        value,
                        version,
                    },
                );
                if vs.snapshot_on {
                    mv.publish(
                        item,
                        VersionedValue {
                            value,
                            version,
                            writer: Some(who),
                            installed_at: *clock,
                        },
                    );
                }
            }
        }
        if self.vs.snapshot_on {
            // Every lock-path commit seals a stamp — written or not — so
            // a snapshot stamp is exactly a commit-order position.
            self.mv.seal();
            self.prune_mv();
        }

        self.vs.release_all(who);
        self.vs.pm.remove(who);
        // Dependency bookkeeping: the retired entries become committed
        // state, and dependents whose last dependency this was leave the
        // commit gate (committed below, after this commit is recorded).
        let drained = self.vs.deps.on_commit(who);
        self.release_holds_on(who);
        protocol.on_commit(&self.vs, who);
        self.trace.push_event(TraceEvent::Commit {
            at: self.clock,
            who,
        });
        self.push_ceiling(protocol);

        let (release, deadline, blocking, lower_exec, restarts, lower_blockers) = {
            let slot = self.slot_mut(who);
            (
                slot.release,
                slot.deadline,
                slot.blocking,
                slot.lower_exec,
                slot.restarts,
                std::mem::take(&mut slot.lower_blockers),
            )
        };
        self.vs.store.remove(who);
        self.deactivate(who);
        self.metrics.record(InstanceMetrics {
            id: who,
            release,
            deadline,
            completion: Some(self.clock),
            blocking,
            lower_exec,
            distinct_lower_blockers: lower_blockers,
            restarts,
            snapshot: None,
        });

        self.reevaluate(protocol);

        // Let drained dependents through the commit gate, in dependency
        // order at the same clock — their commits land after the one
        // they waited for, which is exactly the serialization the gate
        // enforces. (Drained instances still mid-execution are simply
        // no longer gated when they reach their own commit.)
        for d in drained {
            if self.vs.store.get(d).is_some_and(|s| s.gated) {
                self.ungate(d);
                self.commit(d, protocol);
            }
        }
    }

    /// Park `who` at the commit gate: it stays live and holds its read
    /// locks, but is never dispatched until its commit dependencies
    /// drain. Gate edges enter the priority manager — the parked
    /// instance donates its priority to the dependencies it waits on,
    /// and the wait-for graph sees gate waits, so a gate-plus-lock cycle
    /// (possible under Bamboo) is detected and resolved like any other
    /// deadlock.
    fn gate<P: ProtocolFor<ViewState<'a, S>>>(&mut self, who: InstanceId, protocol: &mut P) {
        let deps: Vec<InstanceId> = self.vs.deps.deps_of(who).to_vec();
        debug_assert!(!deps.is_empty());
        {
            let slot = self.slot_mut(who);
            debug_assert!(!slot.gated && slot.blocked_since.is_none());
            slot.gated = true;
        }
        self.n_gated += 1;
        self.vs.pm.set_blocked(who, &deps);

        let wf = WaitForGraph::from_edges(self.vs.pm.edges());
        if let Some(cycle) = wf.find_cycle() {
            if self.config.resolve_deadlocks {
                let victim = deadlock_victim(&cycle, |v| self.vs.set.priority_of(v.txn));
                self.trace.push_event(TraceEvent::DeadlockDetected {
                    at: self.clock,
                    cycle,
                });
                self.abort(victim, AbortReason::DeadlockVictim, protocol);
                self.reevaluate(protocol);
            } else {
                self.trace.push_event(TraceEvent::DeadlockDetected {
                    at: self.clock,
                    cycle: cycle.clone(),
                });
                self.outcome = RunOutcome::Deadlock(cycle);
            }
        }
    }

    /// Reverse of [`Sim::gate`].
    fn ungate(&mut self, who: InstanceId) {
        let slot = self.slot_mut(who);
        debug_assert!(slot.gated);
        slot.gated = false;
        self.n_gated -= 1;
        self.vs.pm.clear_blocked(who);
    }

    /// `who` commits or aborts: clear every wait-die hold naming it.
    fn release_holds_on(&mut self, who: InstanceId) {
        if self.n_held == 0 {
            return;
        }
        for i in 0..self.vs.active.len() {
            let id = self.vs.active[i];
            if id == who {
                continue;
            }
            let slot = self.vs.store.get_mut(id).expect("active is live");
            if let Ok(pos) = slot.hold_on.binary_search(&who) {
                slot.hold_on.remove(pos);
                if slot.hold_on.is_empty() {
                    self.n_held -= 1;
                    self.vs.pm.clear_blocked(id);
                }
            }
        }
    }

    /// Slim commit for a snapshot reader: no validation, no installs, no
    /// locks to release, no protocol notification — just the Commit
    /// event, metrics, and an epoch-GC pass now that its pin is gone.
    fn commit_snapshot(&mut self, who: InstanceId) {
        self.history.push(self.clock, who, EventKind::Commit);
        self.vs.pm.remove(who);
        self.trace.push_event(TraceEvent::Commit {
            at: self.clock,
            who,
        });

        let mv_stamp = self.mv.stamp();
        let (release, deadline, blocking, lower_exec, restarts, lower_blockers, snapshot) = {
            let slot = self.slot_mut(who);
            (
                slot.release,
                slot.deadline,
                slot.blocking,
                slot.lower_exec,
                slot.restarts,
                std::mem::take(&mut slot.lower_blockers),
                // A reader that never touched data still commits *as* a
                // snapshot commit; stamp it now so every exempt commit in
                // the history carries its serialization position.
                slot.snapshot.or(Some(mv_stamp)),
            )
        };
        debug_assert_eq!(blocking, Duration::ZERO, "snapshot readers never block");
        debug_assert_eq!(restarts, 0, "snapshot readers never abort");
        self.vs.store.remove(who);
        self.deactivate(who);
        self.metrics.record(InstanceMetrics {
            id: who,
            release,
            deadline,
            completion: Some(self.clock),
            blocking,
            lower_exec,
            distinct_lower_blockers: lower_blockers,
            restarts,
            snapshot,
        });
        self.prune_mv();
    }

    fn abort<P: ProtocolFor<ViewState<'a, S>>>(
        &mut self,
        victim: InstanceId,
        reason: AbortReason,
        protocol: &mut P,
    ) {
        debug_assert_eq!(
            protocol.update_model(),
            UpdateModel::Workspace,
            "aborts require the workspace model (no undo implemented)"
        );
        debug_assert!(
            !self.vs.exempt(victim),
            "snapshot readers never abort (hold no locks, block nobody)"
        );
        self.metrics.abort_reasons.record(reason);
        self.history.push(self.clock, victim, EventKind::Abort);
        self.trace.push_event(TraceEvent::Abort {
            at: self.clock,
            who: victim,
        });
        self.vs.release_all(victim);
        // If the victim was itself blocked, flush its blocked segment.
        if self.slot(victim).blocked_since.is_some() {
            self.unblock(victim);
        } else {
            self.vs.pm.clear_blocked(victim);
            self.slot_mut(victim).pending = None;
        }
        // Reset execution state; the instance restarts from scratch.
        let (was_gated, was_held) = {
            let slot = self.slot_mut(victim);
            slot.step = 0;
            slot.consumed = 0;
            slot.acquired = false;
            slot.was_denied = false;
            slot.restarts += 1;
            slot.workspace.reset(victim);
            slot.installed_early.clear();
            let flags = (slot.gated, !slot.hold_on.is_empty());
            slot.gated = false;
            slot.hold_on.clear();
            flags
        };
        if was_gated {
            self.n_gated -= 1;
        }
        if was_held {
            self.n_held -= 1;
        }
        protocol.on_abort(&self.vs, victim);
        self.history.push(self.clock, victim, EventKind::Begin);
        self.push_ceiling(protocol);

        // Anyone holding back a wait-die retry on this victim may go
        // again, and everyone who observed (or overwrote) its retired
        // writes aborts with it — the dependency tracker hands back the
        // transitive closure, each member exactly once.
        self.release_holds_on(victim);
        let cascade = self.vs.deps.on_abort(victim);
        for d in cascade {
            if self.vs.store.get(d).is_some() {
                self.abort(d, AbortReason::Cascade, protocol);
            }
        }
    }

    fn finish(mut self) -> RunResult {
        // Flush unfinished instances into the metrics.
        let leftovers: Vec<InstanceId> = self.vs.active.clone();
        for who in leftovers {
            let (release, deadline, blocked_since, mut blocking, lower_exec, restarts, lowers) = {
                let slot = self.vs.store.get_mut(who).expect("active is live");
                (
                    slot.release,
                    slot.deadline,
                    slot.blocked_since,
                    slot.blocking,
                    slot.lower_exec,
                    slot.restarts,
                    std::mem::take(&mut slot.lower_blockers),
                )
            };
            let snapshot = self.vs.store.get(who).and_then(|s| s.snapshot);
            self.vs.store.remove(who);
            if let Some(since) = blocked_since {
                self.trace
                    .push_segment(who, since, self.clock, SegKind::Blocked);
                blocking += self.clock.since(since);
            }
            self.metrics.record(InstanceMetrics {
                id: who,
                release,
                deadline,
                completion: None,
                blocking,
                lower_exec,
                distinct_lower_blockers: lowers,
                restarts,
                snapshot,
            });
        }
        self.metrics.max_sysceil = self.trace.max_system_ceiling();
        RunResult {
            protocol: "", // patched by the caller below
            history: self.history,
            db: self.db,
            metrics: self.metrics,
            trace: self.trace,
            outcome: self.outcome,
            final_clock: self.clock,
            snapshot_reads: self.vs.snapshot_on,
            mv_high_water: self.mv.high_water(),
            shards: self.vs.tables.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_baselines::RwPcp;
    use rtdb_cc::PcpDa;
    use rtdb_types::{SetBuilder, Step, TransactionTemplate};

    fn example3_set() -> TransactionSet {
        SetBuilder::new()
            .with(
                TransactionTemplate::new(
                    "T1",
                    5,
                    vec![Step::read(ItemId(0), 1), Step::read(ItemId(1), 1)],
                )
                .with_offset(1)
                .with_instances(2),
            )
            .with(
                TransactionTemplate::new(
                    "T2",
                    10,
                    vec![
                        Step::write(ItemId(0), 1),
                        Step::compute(2),
                        Step::write(ItemId(1), 1),
                        Step::compute(1),
                    ],
                )
                .with_instances(1),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn example3_pcpda_timeline_matches_figure2() {
        let set = example3_set();
        let mut p = PcpDa::new();
        let r = Engine::new(&set, SimConfig::default()).run(&mut p).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
        // T1 never blocks; commits at 3 and 8; T2 commits at 9.
        let t1a = InstanceId::new(TxnId(0), 0);
        let t1b = InstanceId::new(TxnId(0), 1);
        let t2 = InstanceId::new(TxnId(1), 0);
        let m = |id| r.metrics.instance(id).unwrap().clone();
        assert_eq!(m(t1a).completion, Some(Tick(3)));
        assert_eq!(m(t1b).completion, Some(Tick(8)));
        assert_eq!(m(t2).completion, Some(Tick(9)));
        assert_eq!(m(t1a).blocking, Duration::ZERO);
        assert_eq!(m(t1b).blocking, Duration::ZERO);
        assert_eq!(r.metrics.deadline_misses(), 0);
        assert!(r.replay_check(&set).is_serializable());
        assert!(r.is_conflict_serializable());
    }

    #[test]
    fn example3_rwpcp_timeline_matches_figure3() {
        let set = example3_set();
        let mut p = RwPcp::new();
        let r = Engine::new(&set, SimConfig::default()).run(&mut p).unwrap();
        let t1a = InstanceId::new(TxnId(0), 0);
        let m = r.metrics.instance(t1a).unwrap();
        // Blocked from 1 to 5 (4 ticks), completes at 7, misses deadline 6.
        assert_eq!(m.blocking, Duration(4));
        assert_eq!(m.completion, Some(Tick(7)));
        assert!(!m.met_deadline());
        assert_eq!(r.metrics.deadline_misses(), 1);
        assert_eq!(r.final_clock, Tick(9));
        assert!(r.replay_check(&set).is_serializable());
    }

    #[test]
    fn slot_store_recycles_slots_per_template() {
        let mut store = SlotStore::with_templates(2);
        let a0 = InstanceId::new(TxnId(0), 0);
        store.insert(a0, Tick(0), Tick(10));
        store.get_mut(a0).unwrap().note_lower_blocker(TxnId(1));
        store.remove(a0);
        assert!(store.get(a0).is_none());
        // The next instance of the same template reuses the slot (len
        // stays 1) and sees none of the old state.
        let a1 = InstanceId::new(TxnId(0), 1);
        store.insert(a1, Tick(5), Tick(15));
        assert_eq!(store.slots.len(), 1);
        let slot = store.get(a1).unwrap();
        assert_eq!(slot.id, a1);
        assert_eq!(slot.release, Tick(5));
        assert!(slot.lower_blockers.is_empty());
        // A different template gets a fresh slot.
        let b0 = InstanceId::new(TxnId(1), 0);
        store.insert(b0, Tick(0), Tick(20));
        assert_eq!(store.slots.len(), 2);
        assert!(store.get(b0).is_some());
    }

    #[test]
    fn arrival_calendar_matches_eager_order() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new("A", 3, vec![Step::compute(1)]))
            .with(
                TransactionTemplate::new("B", 4, vec![Step::compute(1)])
                    .with_offset(1)
                    .with_instances(5),
            )
            .build()
            .unwrap();
        let horizon = Tick(10);
        // Eager reference: every arrival, ascending (tick, txn, seq).
        let mut eager: Vec<(Tick, TxnId, u32)> = Vec::new();
        for t in set.templates() {
            let mut seq = 0u32;
            loop {
                if let Some(n) = t.instances {
                    if seq >= n {
                        break;
                    }
                } else if t.release_of(seq) >= horizon {
                    break;
                }
                eager.push((t.release_of(seq), t.id, seq));
                seq += 1;
            }
        }
        eager.sort();
        let mut cal = ArrivalCalendar::new(&set, horizon);
        let mut lazy = Vec::new();
        while let Some(e) = cal.pop(&set) {
            lazy.push(e);
        }
        assert_eq!(lazy, eager);
    }
}
