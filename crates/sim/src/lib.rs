//! Deterministic discrete-event simulator for hard real-time database
//! systems.
//!
//! The simulator realises the paper's execution model exactly: a single
//! processor, a memory-resident database, periodic transactions with
//! rate-monotonic (or explicit) priorities, priority-driven preemptive
//! scheduling with priority inheritance, and a pluggable concurrency
//! control protocol deciding every lock request. Time is integral, the
//! schedule is a deterministic function of the transaction set + protocol,
//! and the paper's worked examples (Figures 1–5) are reproduced
//! tick-for-tick.
//!
//! # Structure
//!
//! * [`engine`] — the core simulation loop: arrivals, scheduling,
//!   lock-request mediation, blocking/inheritance, commits, aborts,
//!   deadlock detection/resolution;
//! * [`metrics`] — per-instance and per-template statistics: response and
//!   blocking times, deadline misses, restarts, distinct lower-priority
//!   blockers (the single-blocking property), observed `Max_Sysceil`;
//! * [`trace`] + [`gantt`] — an event/segment trace and the ASCII timeline
//!   rendering used to regenerate the paper's figures;
//! * [`workload`] — seeded random workload generation for the extension
//!   experiments (E9–E11);
//! * [`registry`] — [`rtdb_core::ProtocolKind`] → runnable protocol:
//!   static-enum dispatch ([`AnyProtocol`]) feeding the engine's
//!   monomorphized loop;
//! * [`sweep`] — run identical workloads across protocols and tabulate.
//!
//! # Quick start
//!
//! ```
//! use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate};
//! use rtdb_sim::{Engine, SimConfig};
//! use rtdb_cc::PcpDa;
//!
//! // Paper Example 3.
//! let set = SetBuilder::new()
//!     .with(TransactionTemplate::new("T1", 5, vec![
//!         Step::read(ItemId(0), 1), Step::read(ItemId(1), 1),
//!     ]).with_offset(1).with_instances(2))
//!     .with(TransactionTemplate::new("T2", 10, vec![
//!         Step::write(ItemId(0), 1), Step::compute(2),
//!         Step::write(ItemId(1), 1), Step::compute(1),
//!     ]).with_instances(1))
//!     .build().unwrap();
//!
//! let mut protocol = PcpDa::new();
//! let result = Engine::new(&set, SimConfig::default()).run(&mut protocol).unwrap();
//! assert_eq!(result.metrics.deadline_misses(), 0);   // Figure 2: no blocking
//! assert!(result.replay_check(&set).is_serializable());
//! ```

#![forbid(unsafe_code)]

pub mod checks;
pub mod engine;
pub mod gantt;
pub mod metrics;
pub mod registry;
pub mod sweep;
pub mod trace;
pub mod workload;

pub use checks::{
    serializability_violations, snapshot_serializability_violations, verify_run, Expectations,
    Violation,
};
pub use engine::{Engine, RunOutcome, RunResult, SimConfig};
pub use metrics::{InstanceMetrics, MetricsReport, TemplateMetrics};
pub use registry::{instantiate, instantiate_boxed, AnyProtocol};
pub use sweep::{compare_protocols, ProtocolRow};
pub use trace::{SegKind, Trace, TraceEvent};
pub use workload::{WorkloadParams, WorkloadSpec};
