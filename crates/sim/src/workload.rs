//! Seeded random workload generation for the extension experiments.
//!
//! Workloads are periodic transaction sets in the paper's model: each
//! template is a sequence of read/write/compute steps over a shared item
//! pool, with rate-monotonic priorities and a target total CPU
//! utilization. Generation is fully determined by
//! [`WorkloadParams::seed`], so every experiment is reproducible.

use rtdb_types::{
    Error, ItemId, Operation, Result, SetBuilder, Step, TransactionSet, TransactionTemplate,
};
use rtdb_util::Rng;

/// Parameters of a random workload.
#[derive(Clone, Debug)]
pub struct WorkloadParams {
    /// Number of transaction templates.
    pub templates: usize,
    /// Size of the shared item pool.
    pub items: usize,
    /// Target total CPU utilization `Σ C_i / Pd_i` (0, 1].
    pub target_utilization: f64,
    /// Period range `[min, max]`, sampled log-uniformly.
    pub min_period: u64,
    /// See [`WorkloadParams::min_period`].
    pub max_period: u64,
    /// Data steps per template, sampled uniformly from this range.
    pub min_data_steps: usize,
    /// See [`WorkloadParams::min_data_steps`].
    pub max_data_steps: usize,
    /// Probability that a data step writes (vs reads).
    pub write_fraction: f64,
    /// Number of "hot" items (the first `hotspot_items` ids).
    pub hotspot_items: usize,
    /// Probability that a data step touches a hot item — the data
    /// contention knob.
    pub hotspot_prob: f64,
    /// Zipfian skew exponent θ for item selection. `None` keeps the
    /// legacy two-tier hotspot model (and its exact RNG stream, so
    /// existing seeds reproduce); `Some(theta)` replaces it with a
    /// Zipf(θ) distribution over the item pool — rank 1 (the hottest
    /// item) is item 0, matching the hotspot convention. θ = 0 is
    /// uniform; 0.9 is a sharp hotspot.
    pub zipf_theta: Option<f64>,
    /// Partition the item pool for sharded runs: items split across
    /// `partitions` partitions by the shared `item mod partitions`
    /// routing rule ([`rtdb_core::ShardRouter`]), template `i` homes in
    /// partition `i % partitions`, and every data step is remapped into
    /// the home partition unless a [`WorkloadParams::cross_partition_prob`]
    /// coin sends it to a random other one. The base item distribution
    /// (two-tier hotspot or Zipf) keeps its skew *within* each partition.
    /// `1` — the default — leaves the generator, and its exact RNG
    /// stream, untouched, so existing seeds reproduce.
    pub partitions: usize,
    /// Probability that a data step of a partitioned workload touches a
    /// partition other than its template's home — the cross-shard
    /// traffic knob. Ignored when [`WorkloadParams::partitions`] is 1.
    pub cross_partition_prob: f64,
    /// Force the first `read_only_templates` templates to be pure
    /// readers (every data step reads) — the knob the read-heavy
    /// snapshot scenarios use to dial a read fraction: with round-robin
    /// job queues, `k` of `n` templates read-only yields a `k/n` read
    /// mix. The remaining templates keep sampling writes with
    /// [`WorkloadParams::write_fraction`].
    pub read_only_templates: usize,
    /// Stable-sort each template's data steps by item id, hottest
    /// (lowest-id) first — the early-release demonstration shape: the
    /// hot access lands at the *front* of the transaction, so a
    /// blocking protocol pins the hot lock across the whole remaining
    /// body while Bamboo / Brook-2PL retire it after the access and let
    /// the tail run in parallel. (An access at the tail end contends
    /// for barely a step under any protocol — position is what the
    /// early-release win hinges on.) No RNG draws are added, so `false`
    /// — the default — preserves every legacy seed stream.
    pub hot_first: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            templates: 6,
            items: 20,
            target_utilization: 0.6,
            min_period: 40,
            max_period: 400,
            min_data_steps: 2,
            max_data_steps: 5,
            write_fraction: 0.4,
            hotspot_items: 4,
            hotspot_prob: 0.5,
            zipf_theta: None,
            partitions: 1,
            cross_partition_prob: 0.0,
            read_only_templates: 0,
            hot_first: false,
            seed: 42,
        }
    }
}

/// A generated workload: the parameters plus the resulting set.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Generation parameters.
    pub params: WorkloadParams,
    /// The generated transaction set (rate-monotonic priorities).
    pub set: TransactionSet,
}

impl WorkloadParams {
    /// Generate the workload.
    pub fn generate(&self) -> Result<WorkloadSpec> {
        self.validate()?;
        let mut rng = Rng::seed(self.seed);
        let mut builder = SetBuilder::new();
        let share = self.target_utilization / self.templates as f64;
        let zipf_cdf = self.zipf_cdf();

        for idx in 0..self.templates {
            // Log-uniform period.
            let (lo, hi) = (self.min_period as f64, self.max_period as f64);
            let period = (lo * (hi / lo).powf(rng.f64())).round() as u64;

            let force_read = idx < self.read_only_templates;
            let home = idx % self.partitions.max(1);
            let n_data = rng.range_inclusive_usize(self.min_data_steps, self.max_data_steps);
            let mut ops: Vec<Operation> = Vec::with_capacity(n_data + 1);
            for _ in 0..n_data {
                let item = self.pick_item(&mut rng, zipf_cdf.as_deref(), home);
                if !force_read && rng.f64() < self.write_fraction {
                    ops.push(Operation::Write(item));
                } else {
                    ops.push(Operation::Read(item));
                }
            }
            if self.hot_first {
                ops.sort_by_key(|op| match *op {
                    Operation::Read(item) | Operation::Write(item) => item.0,
                    Operation::Compute => u32::MAX,
                });
            }
            // One trailing compute step mimics post-processing and gives
            // the duration budget somewhere to go even for tiny locksets.
            ops.push(Operation::Compute);

            // Distribute the WCET budget over the steps, >= 1 tick each.
            let budget = ((share * period as f64).round() as u64).max(ops.len() as u64);
            let budget = budget.min(period); // keep feasible
            let n = ops.len() as u64;
            let base = budget / n;
            let extra = (budget % n) as usize;
            let steps: Vec<Step> = ops
                .into_iter()
                .enumerate()
                .map(|(i, op)| Step {
                    op,
                    duration: rtdb_types::Duration(base + u64::from(i < extra)),
                })
                .collect();

            builder.add(TransactionTemplate::new(format!("W{idx}"), period, steps));
        }
        let set = builder.build_rate_monotonic()?;
        Ok(WorkloadSpec {
            params: self.clone(),
            set,
        })
    }

    /// Generate a workload that the given admission test accepts, by
    /// rejection sampling over seeds derived from [`WorkloadParams::seed`]
    /// (`admit` is typically one of the `rtdb-analysis` schedulability
    /// predicates). Returns the first admitted spec, or `None` after
    /// `max_tries` rejections.
    pub fn generate_admitted(
        &self,
        max_tries: u32,
        mut admit: impl FnMut(&TransactionSet) -> bool,
    ) -> Option<WorkloadSpec> {
        for attempt in 0..max_tries {
            let params = WorkloadParams {
                seed: self
                    .seed
                    .wrapping_add(attempt as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..self.clone()
            };
            if let Ok(spec) = params.generate() {
                if admit(&spec.set) {
                    return Some(spec);
                }
            }
        }
        None
    }

    /// Cumulative Zipf(θ) distribution over item ranks, if requested.
    fn zipf_cdf(&self) -> Option<Vec<f64>> {
        let theta = self.zipf_theta?;
        if theta == 0.0 {
            // θ = 0 is the "no skew" end of a sweep axis: route it to the
            // legacy two-tier hotspot picker (and its exact RNG stream),
            // so a skew sweep's baseline point is byte-identical to the
            // workloads every committed benchmark was generated from.
            return None;
        }
        let mut w: Vec<f64> = (1..=self.items)
            .map(|rank| 1.0 / (rank as f64).powf(theta))
            .collect();
        let total: f64 = w.iter().sum();
        let mut acc = 0.0;
        for x in &mut w {
            acc += *x / total;
            *x = acc;
        }
        Some(w)
    }

    fn pick_item(&self, rng: &mut Rng, zipf_cdf: Option<&[f64]>, home: usize) -> ItemId {
        let base = if let Some(cdf) = zipf_cdf {
            let u = rng.f64();
            cdf.partition_point(|&c| c < u).min(self.items - 1)
        } else {
            let hot = self.hotspot_items.min(self.items);
            if hot > 0 && rng.f64() < self.hotspot_prob {
                rng.range_usize(0..hot)
            } else {
                rng.range_usize(0..self.items)
            }
        };
        if self.partitions <= 1 {
            // Unpartitioned: the base pick *is* the item (and no extra
            // RNG draws happen, preserving legacy seed streams).
            return ItemId(base as u32);
        }
        // Remap the base rank into the target partition: items ≡ p
        // (mod partitions) under the shared router rule, with low base
        // ranks landing on low in-partition ranks so the hotspot/Zipf
        // skew survives partitioning.
        let p = if rng.f64() < self.cross_partition_prob {
            let r = rng.range_usize(0..self.partitions - 1);
            r + usize::from(r >= home)
        } else {
            home
        };
        let slots = (self.items - p).div_ceil(self.partitions);
        ItemId((p + (base % slots) * self.partitions) as u32)
    }

    fn validate(&self) -> Result<()> {
        if self.templates == 0 || self.items == 0 {
            return Err(Error::Config("templates and items must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.target_utilization) || self.target_utilization == 0.0 {
            return Err(Error::Config("target_utilization must be in (0, 1]".into()));
        }
        if self.min_period == 0 || self.min_period > self.max_period {
            return Err(Error::Config("invalid period range".into()));
        }
        if self.min_data_steps == 0 || self.min_data_steps > self.max_data_steps {
            return Err(Error::Config("invalid data step range".into()));
        }
        if self
            .zipf_theta
            .is_some_and(|t| !t.is_finite() || !(0.0..=16.0).contains(&t))
        {
            return Err(Error::Config("zipf_theta must be in [0, 16]".into()));
        }
        if self.partitions == 0 || self.partitions > self.items.min(64) {
            return Err(Error::Config(
                "partitions must be in 1..=min(items, 64)".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.cross_partition_prob) {
            return Err(Error::Config(
                "cross_partition_prob must be in [0, 1]".into(),
            ));
        }
        if self.read_only_templates > self.templates {
            return Err(Error::Config(
                "read_only_templates exceeds template count".into(),
            ));
        }
        // A template needs at least steps+1 ticks of period to fit.
        if self.min_period < (self.max_data_steps as u64 + 1) * 2 {
            return Err(Error::Config(
                "min_period too small for the requested step counts".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = WorkloadParams::default();
        let a = p.generate().unwrap();
        let b = p.generate().unwrap();
        assert_eq!(a.set.templates().len(), b.set.templates().len());
        for (ta, tb) in a.set.templates().iter().zip(b.set.templates()) {
            assert_eq!(ta.period, tb.period);
            assert_eq!(ta.steps, tb.steps);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadParams::default().generate().unwrap();
        let b = WorkloadParams {
            seed: 43,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let same = a
            .set
            .templates()
            .iter()
            .zip(b.set.templates())
            .all(|(x, y)| x.period == y.period && x.steps == y.steps);
        assert!(!same);
    }

    #[test]
    fn utilization_close_to_target() {
        let p = WorkloadParams {
            target_utilization: 0.5,
            ..Default::default()
        };
        let w = p.generate().unwrap();
        let u = w.set.total_utilization();
        assert!(u > 0.3 && u < 0.8, "utilization {u} far from target 0.5");
    }

    #[test]
    fn templates_are_valid_and_feasible() {
        let w = WorkloadParams {
            templates: 10,
            seed: 7,
            ..Default::default()
        }
        .generate()
        .unwrap();
        for t in w.set.templates() {
            assert!(t.validate().is_ok());
            assert!(t.wcet() <= t.period);
        }
    }

    #[test]
    fn hotspot_prob_one_touches_only_hot_items() {
        let w = WorkloadParams {
            hotspot_prob: 1.0,
            hotspot_items: 2,
            seed: 1,
            ..Default::default()
        }
        .generate()
        .unwrap();
        for t in w.set.templates() {
            for x in t.access_set() {
                assert!(x.0 < 2, "non-hot item {x} accessed");
            }
        }
    }

    #[test]
    fn generate_admitted_respects_the_predicate() {
        let params = WorkloadParams {
            target_utilization: 0.5,
            seed: 3,
            ..Default::default()
        };
        // Admit only sets whose total utilization is below 0.55.
        let spec = params
            .generate_admitted(64, |set| set.total_utilization() < 0.55)
            .expect("an admitted workload exists");
        assert!(spec.set.total_utilization() < 0.55);

        // An unsatisfiable predicate yields None.
        assert!(params.generate_admitted(8, |_| false).is_none());
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ids() {
        let gen = |theta: Option<f64>| {
            let w = WorkloadParams {
                templates: 40,
                zipf_theta: theta,
                min_data_steps: 4,
                max_data_steps: 6,
                seed: 9,
                ..Default::default()
            }
            .generate()
            .unwrap();
            let mut hot = 0usize;
            let mut total = 0usize;
            for t in w.set.templates() {
                for s in &t.steps {
                    if let Some(item) = s.op.item() {
                        total += 1;
                        hot += usize::from(item.0 < 2);
                    }
                }
            }
            hot as f64 / total as f64
        };
        // θ = 0 falls back to the legacy hotspot model, so the flat
        // comparator must be a *small positive* θ to stay on the Zipf
        // path.
        let uniform = gen(Some(0.05));
        let skewed = gen(Some(0.9));
        // θ ≈ 0 spreads over 20 items (~10% on the top two); θ = 0.9
        // concentrates hard on the lowest ranks.
        assert!(uniform < 0.3, "uniform top-2 share {uniform}");
        assert!(
            skewed > uniform + 0.1,
            "skewed {skewed} vs uniform {uniform}"
        );
    }

    #[test]
    fn zipf_theta_zero_reproduces_legacy_stream() {
        // The skew-0 point of a sweep must be byte-identical to the
        // legacy (pre-Zipf) generator: same items, same ops, same
        // durations, same periods — one shared RNG stream.
        for seed in [1u64, 9, 42, 1234] {
            let base = WorkloadParams {
                templates: 12,
                seed,
                ..Default::default()
            };
            let legacy = base.clone().generate().unwrap();
            let swept = WorkloadParams {
                zipf_theta: Some(0.0),
                ..base
            }
            .generate()
            .unwrap();
            for (a, b) in legacy.set.templates().iter().zip(swept.set.templates()) {
                assert_eq!(a.period, b.period, "seed {seed}");
                assert_eq!(a.steps, b.steps, "seed {seed}");
            }
        }
    }

    #[test]
    fn read_only_templates_never_write() {
        let w = WorkloadParams {
            templates: 8,
            read_only_templates: 5,
            write_fraction: 1.0,
            seed: 11,
            ..Default::default()
        }
        .generate()
        .unwrap();
        for (idx, t) in w.set.templates().iter().enumerate() {
            if idx < 5 {
                assert!(t.is_read_only(), "template {idx} should be read-only");
            } else {
                assert!(!t.is_read_only(), "template {idx} writes with p=1");
            }
        }
    }

    #[test]
    fn partitions_of_one_preserve_the_legacy_stream() {
        let legacy = WorkloadParams::default().generate().unwrap();
        let partitioned = WorkloadParams {
            partitions: 1,
            cross_partition_prob: 0.7,
            ..Default::default()
        }
        .generate()
        .unwrap();
        for (a, b) in legacy
            .set
            .templates()
            .iter()
            .zip(partitioned.set.templates())
        {
            assert_eq!(a.period, b.period);
            assert_eq!(a.steps, b.steps);
        }
    }

    #[test]
    fn zero_cross_prob_confines_templates_to_their_home_partition() {
        let parts = 4usize;
        let w = WorkloadParams {
            templates: 8,
            partitions: parts,
            cross_partition_prob: 0.0,
            seed: 5,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let router = rtdb_core::ShardRouter::new(parts);
        for (idx, t) in w.set.templates().iter().enumerate() {
            for item in t.access_set() {
                assert_eq!(
                    router.shard_of(item),
                    idx % parts,
                    "template {idx} escaped its home partition"
                );
            }
        }
    }

    #[test]
    fn full_cross_prob_sends_every_step_abroad() {
        let parts = 4usize;
        let w = WorkloadParams {
            templates: 8,
            partitions: parts,
            cross_partition_prob: 1.0,
            seed: 5,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let router = rtdb_core::ShardRouter::new(parts);
        for (idx, t) in w.set.templates().iter().enumerate() {
            for item in t.access_set() {
                assert_ne!(
                    router.shard_of(item),
                    idx % parts,
                    "template {idx} stayed home at cross prob 1"
                );
            }
        }
    }

    #[test]
    fn partitioned_zipf_keeps_low_in_partition_ranks_hot() {
        let w = WorkloadParams {
            templates: 40,
            partitions: 4,
            zipf_theta: Some(0.9),
            min_data_steps: 4,
            max_data_steps: 6,
            seed: 9,
            ..Default::default()
        }
        .generate()
        .unwrap();
        // The hottest slot of each partition is item id < 4 (in-partition
        // rank 0); Zipf(0.9) should concentrate well above the uniform
        // share (4/20 = 0.2) — remapping folds ranks {0,5,10,15} onto
        // in-partition rank 0, ~0.34 of the mass.
        let mut hot = 0usize;
        let mut total = 0usize;
        for t in w.set.templates() {
            for s in &t.steps {
                if let Some(item) = s.op.item() {
                    total += 1;
                    hot += usize::from(item.0 < 4);
                }
            }
        }
        let share = hot as f64 / total as f64;
        assert!(share > 0.28, "rank-0 share {share} not skewed");
    }

    #[test]
    fn invalid_params_are_rejected() {
        let bad = WorkloadParams {
            templates: 0,
            ..Default::default()
        };
        assert!(bad.generate().is_err());
        let bad = WorkloadParams {
            target_utilization: 0.0,
            ..Default::default()
        };
        assert!(bad.generate().is_err());
        let bad = WorkloadParams {
            min_period: 100,
            max_period: 10,
            ..Default::default()
        };
        assert!(bad.generate().is_err());
        let bad = WorkloadParams {
            zipf_theta: Some(-0.5),
            ..Default::default()
        };
        assert!(bad.generate().is_err());
        let bad = WorkloadParams {
            read_only_templates: 7,
            ..Default::default()
        };
        assert!(bad.generate().is_err());
        let bad = WorkloadParams {
            partitions: 21, // > items
            ..Default::default()
        };
        assert!(bad.generate().is_err());
        let bad = WorkloadParams {
            partitions: 2,
            cross_partition_prob: 1.5,
            ..Default::default()
        };
        assert!(bad.generate().is_err());
    }
}
