//! Run identical workloads across protocols and tabulate the comparison
//! (experiments E9/E10).

use crate::engine::{Engine, RunOutcome, SimConfig};
use crate::metrics::MetricsReport;
use crate::registry::instantiate_boxed;
use rtdb_core::{Protocol, ProtocolKind};
use rtdb_types::{Ceiling, Result, TransactionSet};

/// One protocol's aggregate results on one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolRow {
    /// Protocol name.
    pub name: &'static str,
    /// Released instances.
    pub released: usize,
    /// Deadline miss ratio.
    pub miss_ratio: f64,
    /// Total blocking time (ticks) across all instances.
    pub total_blocking: u64,
    /// Worst single-instance blocking time.
    pub max_blocking: u64,
    /// Total restarts (aborts).
    pub restarts: u32,
    /// Highest observed global system ceiling (`Max_Sysceil`).
    pub max_sysceil: Ceiling,
    /// Worst count of distinct lower-priority blockers for one instance
    /// (Theorem 1: ≤ 1 for PCP-DA / RW-PCP).
    pub max_distinct_lower_blockers: usize,
    /// `true` if the run ended in an unresolved deadlock.
    pub deadlocked: bool,
}

impl ProtocolRow {
    fn from_report(name: &'static str, metrics: &MetricsReport, outcome: &RunOutcome) -> Self {
        ProtocolRow {
            name,
            released: metrics.instances().count(),
            miss_ratio: metrics.miss_ratio(),
            total_blocking: metrics.total_blocking().raw(),
            max_blocking: metrics
                .instances()
                .map(|m| m.blocking.raw())
                .max()
                .unwrap_or(0),
            restarts: metrics.total_restarts(),
            max_sysceil: metrics.max_sysceil,
            max_distinct_lower_blockers: metrics.max_distinct_lower_blockers(),
            deadlocked: matches!(outcome, RunOutcome::Deadlock(_)),
        }
    }
}

/// The standard protocol line-up of the evaluation
/// ([`ProtocolKind::STANDARD`]): PCP-DA plus every baseline (excluding
/// the demo variants), in the registry's presentation order.
pub fn standard_protocols() -> Vec<Box<dyn Protocol>> {
    ProtocolKind::STANDARD
        .iter()
        .map(|&k| instantiate_boxed(k))
        .collect()
}

/// Run `set` under every protocol in `protocols` with the same config and
/// collect one row per protocol. Protocols that report
/// [`Protocol::may_deadlock`] run with deadlock resolution enabled
/// automatically (their deadlocks would otherwise stop the run — every
/// repaired ceiling protocol is provably deadlock-free and unaffected).
pub fn compare_protocols(
    set: &TransactionSet,
    config: &SimConfig,
    protocols: &mut [Box<dyn Protocol>],
) -> Result<Vec<ProtocolRow>> {
    let mut rows = Vec::with_capacity(protocols.len());
    for p in protocols.iter_mut() {
        let mut cfg = config.clone();
        if p.may_deadlock() {
            cfg.resolve_deadlocks = true;
        }
        let result = Engine::new(set, cfg).run(p.as_mut())?;
        rows.push(ProtocolRow::from_report(
            result.protocol,
            &result.metrics,
            &result.outcome,
        ));
    }
    Ok(rows)
}

/// Run one [`compare_protocols`] per sweep point on a thread pool.
///
/// `make` maps a point to its workload and config; each point then runs
/// the full [`standard_protocols`] line-up in its own simulation (runs
/// are independent — a fresh protocol instance and engine per run — so
/// parallelism cannot perturb them). Results come back **in input
/// order** via [`rtdb_util::par_map`], so tables and CSV files built
/// from them are byte-identical to the sequential loop's.
pub fn compare_protocols_parallel<T, F>(points: &[T], make: F) -> Result<Vec<Vec<ProtocolRow>>>
where
    T: Sync,
    F: Fn(&T) -> Result<(TransactionSet, SimConfig)> + Sync,
{
    rtdb_util::par_map(points, |point| {
        let (set, config) = make(point)?;
        let mut protocols = standard_protocols();
        compare_protocols(&set, &config, &mut protocols)
    })
    .into_iter()
    .collect()
}

/// Format rows as an aligned text table.
pub fn format_table(rows: &[ProtocolRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} {:>9} {:>11} {:>13} {:>13} {:>9} {:>12} {:>8} {:>10}",
        "protocol",
        "released",
        "miss-ratio",
        "tot-blocking",
        "max-blocking",
        "restarts",
        "max-sysceil",
        "1-block",
        "deadlock"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:>9} {:>11.4} {:>13} {:>13} {:>9} {:>12} {:>8} {:>10}",
            r.name,
            r.released,
            r.miss_ratio,
            r.total_blocking,
            r.max_blocking,
            r.restarts,
            r.max_sysceil.to_string(),
            r.max_distinct_lower_blockers,
            if r.deadlocked { "YES" } else { "no" }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadParams;

    #[test]
    fn compare_runs_all_standard_protocols() {
        let w = WorkloadParams {
            templates: 4,
            items: 8,
            target_utilization: 0.5,
            seed: 11,
            ..Default::default()
        }
        .generate()
        .unwrap();
        let mut protocols = standard_protocols();
        let cfg = SimConfig::with_horizon(2_000);
        let rows = compare_protocols(&w.set, &cfg, &mut protocols).unwrap();
        assert_eq!(rows.len(), ProtocolKind::STANDARD.len());
        for (r, k) in rows.iter().zip(ProtocolKind::STANDARD.iter()) {
            assert_eq!(r.name, k.name());
        }
        // The ceiling protocols never deadlock or restart.
        for r in &rows {
            if matches!(r.name, "PCP-DA" | "RW-PCP" | "PCP" | "CCP") {
                assert!(!r.deadlocked, "{} deadlocked", r.name);
                assert_eq!(r.restarts, 0, "{} restarted", r.name);
            }
        }
        let table = format_table(&rows);
        assert!(table.contains("PCP-DA"));
        assert!(table.contains("2PL-HP"));
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let points: Vec<u64> = (0..6).collect();
        let make = |&seed: &u64| {
            let w = WorkloadParams {
                templates: 3,
                items: 6,
                target_utilization: 0.5,
                seed,
                ..Default::default()
            }
            .generate()?;
            Ok((w.set, SimConfig::with_horizon(1_500)))
        };
        let par = compare_protocols_parallel(&points, make).unwrap();
        let seq: Vec<Vec<ProtocolRow>> = points
            .iter()
            .map(|p| {
                let (set, cfg) = make(p).unwrap();
                compare_protocols(&set, &cfg, &mut standard_protocols()).unwrap()
            })
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn pcpda_blocks_no_more_than_rwpcp() {
        // Paper §5: "transaction blocking that happens under PCP-DA must
        // happen under RW-PCP" — so total blocking under PCP-DA is never
        // larger on the same workload.
        for seed in 0..8 {
            let w = WorkloadParams {
                seed,
                target_utilization: 0.6,
                ..Default::default()
            }
            .generate()
            .unwrap();
            let cfg = SimConfig::with_horizon(3_000);
            let mut ps: Vec<Box<dyn Protocol>> = vec![
                instantiate_boxed(ProtocolKind::PcpDa),
                instantiate_boxed(ProtocolKind::RwPcp),
            ];
            let rows = compare_protocols(&w.set, &cfg, &mut ps).unwrap();
            assert!(
                rows[0].total_blocking <= rows[1].total_blocking,
                "seed {seed}: PCP-DA blocking {} > RW-PCP {}",
                rows[0].total_blocking,
                rows[1].total_blocking
            );
            assert!(
                rows[0].max_sysceil <= rows[1].max_sysceil,
                "seed {seed}: PCP-DA ceiling above RW-PCP"
            );
        }
    }
}
