//! Per-instance and per-template statistics of a run.

use rtdb_core::AbortBreakdown;
use rtdb_types::{Ceiling, Duration, InstanceId, Tick, TxnId};
use std::collections::BTreeMap;

/// Statistics of one transaction instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceMetrics {
    /// The instance.
    pub id: InstanceId,
    /// Release time.
    pub release: Tick,
    /// Absolute deadline (end of period).
    pub deadline: Tick,
    /// Commit time, if the instance finished within the run.
    pub completion: Option<Tick>,
    /// Total time spent blocked on lock requests (the paper's "effective
    /// blocking time").
    pub blocking: Duration,
    /// CPU time consumed by *lower-base-priority* instances while this
    /// instance was live (released but not yet committed) — the quantity
    /// the analytic `B_i` of §9 bounds. Unlike [`InstanceMetrics::blocking`]
    /// it excludes higher-priority interference that happens to overlap a
    /// blocked window.
    pub lower_exec: Duration,
    /// Distinct *lower-base-priority* transactions that directly blocked
    /// this instance — Theorem 1 (single blocking) asserts `≤ 1` under
    /// PCP-DA and RW-PCP.
    pub distinct_lower_blockers: Vec<TxnId>,
    /// Times this instance was aborted and restarted.
    pub restarts: u32,
    /// Commit stamp this instance's reads were served at, if it ran on
    /// the lock-exempt multiversion snapshot path: it observed exactly the
    /// state after the first `snapshot` lock-path commits. `None` for
    /// lock-based instances (and for snapshot readers that never pinned —
    /// pure-compute templates).
    pub snapshot: Option<u64>,
}

impl InstanceMetrics {
    /// Response time (completion − release), if completed.
    pub fn response(&self) -> Option<Duration> {
        self.completion.map(|c| c.since(self.release))
    }

    /// True if the instance committed at or before its deadline.
    pub fn met_deadline(&self) -> bool {
        self.completion.is_some_and(|c| c <= self.deadline)
    }
}

/// Aggregated statistics of one transaction template.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TemplateMetrics {
    /// Released instances.
    pub released: u32,
    /// Committed instances.
    pub completed: u32,
    /// Instances that committed after (or never reached) their deadline.
    pub deadline_misses: u32,
    /// Worst observed response time.
    pub max_response: Duration,
    /// Mean response time over completed instances.
    pub mean_response: f64,
    /// Worst observed blocking time.
    pub max_blocking: Duration,
    /// Mean blocking time over released instances.
    pub mean_blocking: f64,
    /// Total restarts.
    pub restarts: u32,
}

/// The full metrics report of one run.
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    instances: BTreeMap<InstanceId, InstanceMetrics>,
    /// Highest system ceiling observed (the paper's `Max_Sysceil`).
    pub max_sysceil: Ceiling,
    /// Why instances aborted, by cause. Its [`AbortBreakdown::total`]
    /// equals [`MetricsReport::total_restarts`] — every abort restarts
    /// its instance.
    pub abort_reasons: AbortBreakdown,
}

impl MetricsReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) one instance's metrics.
    pub fn record(&mut self, m: InstanceMetrics) {
        self.instances.insert(m.id, m);
    }

    /// Metrics of one instance.
    pub fn instance(&self, id: InstanceId) -> Option<&InstanceMetrics> {
        self.instances.get(&id)
    }

    /// Mutable metrics of one instance.
    pub fn instance_mut(&mut self, id: InstanceId) -> Option<&mut InstanceMetrics> {
        self.instances.get_mut(&id)
    }

    /// All instances.
    pub fn instances(&self) -> impl Iterator<Item = &InstanceMetrics> {
        self.instances.values()
    }

    /// Total deadline misses (committed late or never completed).
    pub fn deadline_misses(&self) -> u32 {
        self.instances
            .values()
            .filter(|m| !m.met_deadline())
            .count() as u32
    }

    /// Total restarts across all instances.
    pub fn total_restarts(&self) -> u32 {
        self.instances.values().map(|m| m.restarts).sum()
    }

    /// Total blocking time across all instances.
    pub fn total_blocking(&self) -> Duration {
        self.instances.values().map(|m| m.blocking).sum()
    }

    /// Worst single-instance blocking per template (measured `B_i`).
    pub fn max_blocking_by_template(&self) -> BTreeMap<TxnId, Duration> {
        let mut out: BTreeMap<TxnId, Duration> = BTreeMap::new();
        for m in self.instances.values() {
            let e = out.entry(m.id.txn).or_insert(Duration::ZERO);
            if m.blocking > *e {
                *e = m.blocking;
            }
        }
        out
    }

    /// Aggregate per template.
    pub fn by_template(&self) -> BTreeMap<TxnId, TemplateMetrics> {
        let mut out: BTreeMap<TxnId, TemplateMetrics> = BTreeMap::new();
        let mut response_sums: BTreeMap<TxnId, u64> = BTreeMap::new();
        let mut blocking_sums: BTreeMap<TxnId, u64> = BTreeMap::new();
        for m in self.instances.values() {
            let t = out.entry(m.id.txn).or_default();
            t.released += 1;
            t.restarts += m.restarts;
            if let Some(r) = m.response() {
                t.completed += 1;
                if r > t.max_response {
                    t.max_response = r;
                }
                *response_sums.entry(m.id.txn).or_insert(0) += r.raw();
            }
            if !m.met_deadline() {
                t.deadline_misses += 1;
            }
            if m.blocking > t.max_blocking {
                t.max_blocking = m.blocking;
            }
            *blocking_sums.entry(m.id.txn).or_insert(0) += m.blocking.raw();
        }
        for (txn, t) in out.iter_mut() {
            if t.completed > 0 {
                t.mean_response =
                    response_sums.get(txn).copied().unwrap_or(0) as f64 / t.completed as f64;
            }
            if t.released > 0 {
                t.mean_blocking =
                    blocking_sums.get(txn).copied().unwrap_or(0) as f64 / t.released as f64;
            }
        }
        out
    }

    /// Miss ratio: misses / released (0.0 for an empty report).
    pub fn miss_ratio(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.deadline_misses() as f64 / self.instances.len() as f64
    }

    /// Response-time percentile for one template over completed
    /// instances, with `q` in `[0, 1]` (nearest-rank). `None` when the
    /// template completed nothing.
    pub fn response_percentile(&self, txn: TxnId, q: f64) -> Option<Duration> {
        let mut responses: Vec<u64> = self
            .instances
            .values()
            .filter(|m| m.id.txn == txn)
            .filter_map(|m| m.response())
            .map(|d| d.raw())
            .collect();
        if responses.is_empty() {
            return None;
        }
        responses.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * responses.len() as f64).ceil() as usize).clamp(1, responses.len());
        Some(Duration(responses[rank - 1]))
    }

    /// The worst single-blocking count across instances (Theorem 1 says
    /// this is ≤ 1 under PCP-DA / RW-PCP).
    pub fn max_distinct_lower_blockers(&self) -> usize {
        self.instances
            .values()
            .map(|m| m.distinct_lower_blockers.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(t: u32, seq: u32, release: u64, deadline: u64, done: Option<u64>) -> InstanceMetrics {
        InstanceMetrics {
            id: InstanceId::new(TxnId(t), seq),
            release: Tick(release),
            deadline: Tick(deadline),
            completion: done.map(Tick),
            blocking: Duration::ZERO,
            lower_exec: Duration::ZERO,
            distinct_lower_blockers: vec![],
            restarts: 0,
            snapshot: None,
        }
    }

    #[test]
    fn response_and_deadline() {
        let m = inst(0, 0, 1, 6, Some(5));
        assert_eq!(m.response(), Some(Duration(4)));
        assert!(m.met_deadline());
        let late = inst(0, 1, 6, 11, Some(12));
        assert!(!late.met_deadline());
        let never = inst(0, 2, 11, 16, None);
        assert!(!never.met_deadline());
        assert_eq!(never.response(), None);
    }

    #[test]
    fn report_aggregates_by_template() {
        let mut r = MetricsReport::new();
        let mut a = inst(0, 0, 0, 10, Some(4));
        a.blocking = Duration(2);
        r.record(a);
        let mut b = inst(0, 1, 10, 20, Some(21));
        b.blocking = Duration(4);
        b.restarts = 1;
        r.record(b);
        r.record(inst(1, 0, 0, 50, Some(10)));

        assert_eq!(r.deadline_misses(), 1);
        assert_eq!(r.total_restarts(), 1);
        assert_eq!(r.total_blocking(), Duration(6));
        assert!((r.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);

        let by = r.by_template();
        let t0 = &by[&TxnId(0)];
        assert_eq!(t0.released, 2);
        assert_eq!(t0.completed, 2);
        assert_eq!(t0.deadline_misses, 1);
        assert_eq!(t0.max_response, Duration(11));
        assert!((t0.mean_response - 7.5).abs() < 1e-12);
        assert_eq!(t0.max_blocking, Duration(4));
        assert_eq!(r.max_blocking_by_template()[&TxnId(0)], Duration(4));
    }

    #[test]
    fn response_percentiles_nearest_rank() {
        let mut r = MetricsReport::new();
        for (seq, resp) in [(0u32, 2u64), (1, 4), (2, 6), (3, 8)] {
            r.record(inst(0, seq, 0, 100, Some(resp)));
        }
        assert_eq!(r.response_percentile(TxnId(0), 0.5), Some(Duration(4)));
        assert_eq!(r.response_percentile(TxnId(0), 1.0), Some(Duration(8)));
        assert_eq!(r.response_percentile(TxnId(0), 0.0), Some(Duration(2)));
        assert_eq!(r.response_percentile(TxnId(1), 0.5), None);
    }

    #[test]
    fn single_blocking_stat() {
        let mut r = MetricsReport::new();
        let mut a = inst(0, 0, 0, 10, Some(4));
        a.distinct_lower_blockers = vec![TxnId(2)];
        r.record(a);
        assert_eq!(r.max_distinct_lower_blockers(), 1);
    }
}
