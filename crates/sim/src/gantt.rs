//! ASCII timeline (Gantt) rendering of a [`Trace`] — the textual analogue
//! of the paper's Figures 1–5.
//!
//! One row per instance: `#` marks a tick spent executing, `.` a tick
//! spent blocked on a lock, and space a tick spent ready-but-preempted or
//! not released. A `ceiling` row shows the global system ceiling
//! (`Max_Sysceil`) per tick as the priority level (in hex) or `-` for the
//! dummy ceiling.

use crate::trace::{SegKind, Trace, TraceEvent};
use rtdb_types::{Ceiling, InstanceId, TransactionSet};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render the trace as an ASCII chart.
pub fn render(set: &TransactionSet, trace: &Trace) -> String {
    let end = trace.end().raw() as usize;
    let width = end.max(1);

    // Collect rows per instance, in (template, seq) order.
    let mut rows: BTreeMap<InstanceId, Vec<char>> = BTreeMap::new();
    let touch = |who: InstanceId, rows: &mut BTreeMap<InstanceId, Vec<char>>| {
        rows.entry(who).or_insert_with(|| vec![' '; width]);
    };
    for s in trace.segments() {
        touch(s.who, &mut rows);
        let row = rows.get_mut(&s.who).unwrap();
        let ch = match s.kind {
            SegKind::Running => '#',
            SegKind::Blocked => '.',
        };
        for t in s.from.raw()..s.to.raw() {
            row[t as usize] = ch;
        }
    }
    for e in trace.events() {
        if let TraceEvent::Arrive { who, .. } = e {
            touch(*who, &mut rows);
        }
    }

    let label_width = rows
        .keys()
        .map(|w| w.to_string().len())
        .chain(["ceiling".len()])
        .max()
        .unwrap_or(7)
        + 1;

    let mut out = String::new();

    // Tens ruler + units ruler.
    let mut tens = String::new();
    let mut units = String::new();
    for t in 0..=width {
        if t % 10 == 0 {
            let _ = write!(tens, "{:<10}", t / 10);
        }
        let _ = write!(units, "{}", t % 10);
    }
    tens.truncate(width + 1);
    let _ = writeln!(out, "{:label_width$}{}", "t", tens);
    let _ = writeln!(out, "{:label_width$}{}", "", units);

    for (who, row) in &rows {
        let line: String = row.iter().collect();
        // Annotate arrival (^) and commit (|) markers beneath printable
        // positions by overlaying where the row is blank.
        let mut chars: Vec<char> = line.chars().collect();
        for e in trace.events() {
            match e {
                TraceEvent::Arrive { at, who: w } if w == who => {
                    let idx = at.raw() as usize;
                    if idx < chars.len() && chars[idx] == ' ' {
                        chars[idx] = '^';
                    }
                }
                _ => {}
            }
        }
        let commit = trace.events().iter().find_map(|e| match e {
            TraceEvent::Commit { at, who: w } if w == who => Some(at.raw() as usize),
            _ => None,
        });
        let mut line: String = chars.into_iter().collect();
        if let Some(c) = commit {
            while line.len() < c + 1 {
                line.push(' ');
            }
            line.insert(c, ']');
        }
        let _ = writeln!(out, "{:label_width$}{}", who.to_string(), line);
    }

    // Ceiling row: sample value per tick.
    let mut ceiling_row = vec!['-'; width];
    let samples = trace.ceiling_samples();
    for (idx, &(at, c)) in samples.iter().enumerate() {
        let from = at.raw() as usize;
        let to = samples
            .get(idx + 1)
            .map(|&(t, _)| t.raw() as usize)
            .unwrap_or(width);
        let ch = match c {
            Ceiling::Dummy => '-',
            Ceiling::At(p) => char::from_digit(p.level() % 16, 16).unwrap_or('*'),
        };
        for cell in ceiling_row.iter_mut().take(to.min(width)).skip(from) {
            *cell = ch;
        }
    }
    let _ = writeln!(
        out,
        "{:label_width$}{}",
        "ceiling",
        ceiling_row.iter().collect::<String>()
    );

    // Legend with template names and priorities.
    let _ = writeln!(out, "{:label_width$}(# running, . blocked, ^ arrival, ] commit; ceiling row: priority level or '-' = dummy)", "");
    for t in set.templates() {
        let _ = writeln!(
            out,
            "{:label_width$}{} = {:?} (period {}, priority {})",
            "",
            t.name,
            t.id,
            t.period,
            set.priority_of(t.id)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{Priority, SetBuilder, Step, Tick, TransactionTemplate, TxnId};

    #[test]
    fn renders_segments_and_markers() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new("A", 10, vec![Step::compute(2)]))
            .build()
            .unwrap();
        let who = InstanceId::first(TxnId(0));
        let mut tr = Trace::new();
        tr.push_event(TraceEvent::Arrive { at: Tick(0), who });
        tr.push_segment(who, Tick(0), Tick(2), SegKind::Running);
        tr.push_segment(who, Tick(2), Tick(4), SegKind::Blocked);
        tr.push_event(TraceEvent::Commit { at: Tick(4), who });
        tr.push_ceiling(Tick(0), Ceiling::Dummy);
        tr.push_ceiling(Tick(1), Ceiling::At(Priority(3)));

        let s = render(&set, &tr);
        assert!(s.contains("##.."), "running+blocked cells: {s}");
        assert!(s.contains(']'), "commit marker: {s}");
        assert!(s.contains("ceiling"), "{s}");
        assert!(s.contains('3'), "ceiling digit: {s}");
    }
}
