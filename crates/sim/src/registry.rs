//! Protocol instantiation: [`ProtocolKind`] → a runnable protocol.
//!
//! [`rtdb_core::ProtocolKind`] carries the *metadata* (names, families,
//! update models) but cannot construct protocols — the kernel sits below
//! the implementation crates in the dependency order. This module closes
//! the loop: [`instantiate`] builds the protocol behind a kind as an
//! [`AnyProtocol`], a static-enum-dispatch wrapper that implements
//! [`ProtocolFor`] over any view. The engine's monomorphized loop drives
//! it with zero vtable hops on either side ([`Engine::run_kind`]), and the
//! wrapper doubles as the workspace's single source of protocol line-ups:
//! every sweep, bench and binary builds its roster from
//! [`ProtocolKind::ALL`] / [`ProtocolKind::STANDARD`] through here.
//!
//! [`Engine::run_kind`]: crate::Engine::run_kind

use rtdb_baselines::{Ccp, NaiveDa, OccBc, Pcp, RwPcp, TwoPlHp, TwoPlPi};
use rtdb_cc::PcpDa;
use rtdb_contention::{Bamboo, Brook2Pl};
use rtdb_core::{
    Decision, EngineView, LockRequest, Protocol, ProtocolFor, ProtocolKind, UpdateModel,
};
use rtdb_types::{InstanceId, ItemId, LockMode};

/// One variant per [`ProtocolKind`]; the match arms below are the only
/// protocol dispatch in the steady-state loop.
enum Inner {
    PcpDa(PcpDa),
    RwPcp(RwPcp),
    Pcp(Pcp),
    Ccp(Ccp),
    TwoPlPi(TwoPlPi),
    TwoPlHp(TwoPlHp),
    OccBc(OccBc),
    Bamboo(Bamboo),
    Brook2Pl(Brook2Pl),
    NaiveDa(NaiveDa),
}

/// A protocol selected at runtime but dispatched statically: an enum over
/// every implementation the workspace registers, implementing
/// [`ProtocolFor`] over any view by matching once per callback.
///
/// The wrapper also counts [`ProtocolFor::request`] calls — the live
/// "protocol decisions" figure the perf harness reports — so hot-loop
/// instrumentation needs no `dyn` wrapper around the protocol.
pub struct AnyProtocol {
    kind: ProtocolKind,
    requests: u64,
    inner: Inner,
}

/// Construct the protocol a [`ProtocolKind`] names.
///
/// The mapping is exhaustive: adding a `ProtocolKind` variant without
/// extending it is a compile error, which is what keeps the registry's
/// metadata and the runnable lineup in lock-step (the
/// `registry_matches_instances` test asserts the metadata side).
pub fn instantiate(kind: ProtocolKind) -> AnyProtocol {
    let inner = match kind {
        ProtocolKind::PcpDa => Inner::PcpDa(PcpDa::new()),
        ProtocolKind::PcpDaLiteral => Inner::PcpDa(PcpDa::paper_literal()),
        ProtocolKind::RwPcp => Inner::RwPcp(RwPcp::new()),
        ProtocolKind::Pcp => Inner::Pcp(Pcp::new()),
        ProtocolKind::Ccp => Inner::Ccp(Ccp::new()),
        ProtocolKind::TwoPlPi => Inner::TwoPlPi(TwoPlPi::new()),
        ProtocolKind::TwoPlHp => Inner::TwoPlHp(TwoPlHp::new()),
        ProtocolKind::OccBc => Inner::OccBc(OccBc::new()),
        ProtocolKind::Bamboo => Inner::Bamboo(Bamboo::new()),
        ProtocolKind::Brook2Pl => Inner::Brook2Pl(Brook2Pl::new()),
        ProtocolKind::NaiveDa => Inner::NaiveDa(NaiveDa::new()),
    };
    AnyProtocol {
        kind,
        requests: 0,
        inner,
    }
}

/// [`instantiate`], boxed as a view-erased trait object — for call sites
/// that mix protocols in one collection (`Vec<Box<dyn Protocol>>`).
pub fn instantiate_boxed(kind: ProtocolKind) -> Box<dyn Protocol> {
    Box::new(instantiate(kind))
}

impl AnyProtocol {
    /// The kind this protocol was built from.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// Number of lock-request decisions taken so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }
}

macro_rules! dispatch {
    ($inner:expr, $p:ident => $body:expr) => {
        match $inner {
            Inner::PcpDa($p) => $body,
            Inner::RwPcp($p) => $body,
            Inner::Pcp($p) => $body,
            Inner::Ccp($p) => $body,
            Inner::TwoPlPi($p) => $body,
            Inner::TwoPlHp($p) => $body,
            Inner::OccBc($p) => $body,
            Inner::Bamboo($p) => $body,
            Inner::Brook2Pl($p) => $body,
            Inner::NaiveDa($p) => $body,
        }
    };
}

impl<V: EngineView + ?Sized> ProtocolFor<V> for AnyProtocol {
    fn name(&self) -> &'static str {
        dispatch!(&self.inner, p => ProtocolFor::<V>::name(p))
    }

    fn request(&mut self, view: &V, req: LockRequest) -> Decision {
        self.requests += 1;
        dispatch!(&mut self.inner, p => ProtocolFor::request(p, view, req))
    }

    fn on_grant(&mut self, view: &V, req: LockRequest) {
        dispatch!(&mut self.inner, p => ProtocolFor::on_grant(p, view, req))
    }

    fn on_commit(&mut self, view: &V, who: InstanceId) {
        dispatch!(&mut self.inner, p => ProtocolFor::on_commit(p, view, who))
    }

    fn on_abort(&mut self, view: &V, who: InstanceId) {
        dispatch!(&mut self.inner, p => ProtocolFor::on_abort(p, view, who))
    }

    fn early_releases(
        &mut self,
        view: &V,
        who: InstanceId,
        completed_step: usize,
    ) -> Vec<(ItemId, LockMode)> {
        dispatch!(&mut self.inner, p => ProtocolFor::early_releases(p, view, who, completed_step))
    }

    fn retires(&mut self, view: &V, who: InstanceId, completed_step: usize) -> Vec<ItemId> {
        dispatch!(&mut self.inner, p => ProtocolFor::retires(p, view, who, completed_step))
    }

    fn update_model(&self) -> UpdateModel {
        dispatch!(&self.inner, p => ProtocolFor::<V>::update_model(p))
    }

    fn system_ceiling(&self, view: &V) -> rtdb_types::Ceiling {
        dispatch!(&self.inner, p => ProtocolFor::system_ceiling(p, view))
    }

    fn may_abort(&self) -> bool {
        dispatch!(&self.inner, p => ProtocolFor::<V>::may_abort(p))
    }

    fn may_deadlock(&self) -> bool {
        dispatch!(&self.inner, p => ProtocolFor::<V>::may_deadlock(p))
    }

    fn commit_victims(&mut self, view: &V, who: InstanceId) -> Vec<InstanceId> {
        dispatch!(&mut self.inner, p => ProtocolFor::commit_victims(p, view, who))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry's static metadata must agree with what the
    /// instantiated protocols report through the trait — one drifting
    /// `match` arm and this fails.
    #[test]
    fn registry_matches_instances() {
        for &kind in ProtocolKind::ALL.iter() {
            let p = instantiate(kind);
            let p_dyn: &dyn Protocol = &p;
            assert_eq!(p.kind(), kind);
            assert_eq!(p_dyn.name(), kind.name(), "{kind:?}");
            assert_eq!(p_dyn.may_abort(), kind.may_abort(), "{kind:?}");
            assert_eq!(p_dyn.may_deadlock(), kind.may_deadlock(), "{kind:?}");
            assert_eq!(p_dyn.update_model(), kind.update_model(), "{kind:?}");
        }
    }

    /// `parse(display(k)) == k` for every kind, and the boxed face
    /// carries the same name.
    #[test]
    fn kind_display_roundtrips_through_instances() {
        for &kind in ProtocolKind::ALL.iter() {
            let parsed: ProtocolKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(instantiate_boxed(kind).name(), kind.name());
        }
    }

    #[test]
    fn request_counter_starts_at_zero() {
        assert_eq!(instantiate(ProtocolKind::PcpDa).requests(), 0);
    }
}
