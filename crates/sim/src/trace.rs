//! Execution traces: what ran when, and every scheduling-relevant event.
//!
//! The trace is the raw material for the Gantt renderer ([`crate::gantt`])
//! and for the figure-reproduction assertions: the paper's Figures 1–5 are
//! statements about exactly these segments and events.

use rtdb_types::{Ceiling, InstanceId, ItemId, LockMode, Tick};
use rtdb_util::Json;
use std::collections::BTreeMap;

/// What an instance was doing during a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegKind {
    /// Executing on the CPU.
    Running,
    /// Blocked on a lock request (the paper's blocking; preemption while
    /// ready is *not* recorded as a segment — ready time is implicit).
    Blocked,
}

/// A contiguous activity segment of one instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Instance concerned.
    pub who: InstanceId,
    /// Segment start.
    pub from: Tick,
    /// Segment end (exclusive).
    pub to: Tick,
    /// Activity.
    pub kind: SegKind,
}

/// A scheduling-relevant event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Instance released (arrived).
    Arrive { at: Tick, who: InstanceId },
    /// Lock granted.
    Granted {
        at: Tick,
        who: InstanceId,
        item: ItemId,
        mode: LockMode,
    },
    /// Lock denied; the instance blocks on `blockers`.
    Denied {
        at: Tick,
        who: InstanceId,
        item: ItemId,
        mode: LockMode,
        blockers: Vec<InstanceId>,
    },
    /// A previously denied request was granted after re-evaluation.
    Resumed {
        at: Tick,
        who: InstanceId,
        item: ItemId,
        mode: LockMode,
    },
    /// Early release of a lock before commit (CCP).
    EarlyRelease {
        at: Tick,
        who: InstanceId,
        item: ItemId,
        mode: LockMode,
    },
    /// Instance committed.
    Commit { at: Tick, who: InstanceId },
    /// Instance aborted (2PL-HP victim or deadlock resolution).
    Abort { at: Tick, who: InstanceId },
    /// Deadline passed before completion.
    DeadlineMiss { at: Tick, who: InstanceId },
    /// A deadlock was detected on the wait-for graph.
    DeadlockDetected { at: Tick, cycle: Vec<InstanceId> },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> Tick {
        match self {
            TraceEvent::Arrive { at, .. }
            | TraceEvent::Granted { at, .. }
            | TraceEvent::Denied { at, .. }
            | TraceEvent::Resumed { at, .. }
            | TraceEvent::EarlyRelease { at, .. }
            | TraceEvent::Commit { at, .. }
            | TraceEvent::Abort { at, .. }
            | TraceEvent::DeadlineMiss { at, .. }
            | TraceEvent::DeadlockDetected { at, .. } => *at,
        }
    }
}

fn inst_json(who: InstanceId) -> Json {
    Json::obj().set("txn", who.txn.0).set("seq", who.seq)
}

fn mode_json(mode: LockMode) -> Json {
    match mode {
        LockMode::Read => Json::from("read"),
        LockMode::Write => Json::from("write"),
    }
}

fn ceiling_json(c: Ceiling) -> Json {
    match c {
        Ceiling::Dummy => Json::Null,
        Ceiling::At(p) => Json::from(p.level()),
    }
}

impl TraceEvent {
    /// The event as a tagged JSON object (`{"kind": "arrive", ...}`).
    pub fn json(&self) -> Json {
        let (kind, at) = (self.kind_name(), self.at());
        let mut obj = Json::obj().set("kind", kind).set("at", at.raw());
        match self {
            TraceEvent::Arrive { who, .. }
            | TraceEvent::Commit { who, .. }
            | TraceEvent::Abort { who, .. }
            | TraceEvent::DeadlineMiss { who, .. } => {
                obj = obj.set("who", inst_json(*who));
            }
            TraceEvent::Granted {
                who, item, mode, ..
            }
            | TraceEvent::Resumed {
                who, item, mode, ..
            }
            | TraceEvent::EarlyRelease {
                who, item, mode, ..
            } => {
                obj = obj
                    .set("who", inst_json(*who))
                    .set("item", item.0)
                    .set("mode", mode_json(*mode));
            }
            TraceEvent::Denied {
                who,
                item,
                mode,
                blockers,
                ..
            } => {
                obj = obj
                    .set("who", inst_json(*who))
                    .set("item", item.0)
                    .set("mode", mode_json(*mode))
                    .set(
                        "blockers",
                        Json::Arr(blockers.iter().map(|&b| inst_json(b)).collect()),
                    );
            }
            TraceEvent::DeadlockDetected { cycle, .. } => {
                obj = obj.set(
                    "cycle",
                    Json::Arr(cycle.iter().map(|&b| inst_json(b)).collect()),
                );
            }
        }
        obj
    }

    /// The snake_case tag used in the JSON encoding.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::Arrive { .. } => "arrive",
            TraceEvent::Granted { .. } => "granted",
            TraceEvent::Denied { .. } => "denied",
            TraceEvent::Resumed { .. } => "resumed",
            TraceEvent::EarlyRelease { .. } => "early_release",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Abort { .. } => "abort",
            TraceEvent::DeadlineMiss { .. } => "deadline_miss",
            TraceEvent::DeadlockDetected { .. } => "deadlock_detected",
        }
    }
}

/// The complete trace of one run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    segments: Vec<Segment>,
    events: Vec<TraceEvent>,
    /// `(tick, ceiling)` samples of the global system ceiling, recorded
    /// after every change — the paper's `Max_Sysceil` dotted line.
    ceiling_samples: Vec<(Tick, Ceiling)>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size the segment and event logs, so steady-state runs append
    /// without reallocating.
    pub fn reserve(&mut self, segments: usize, events: usize) {
        self.segments.reserve(segments);
        self.events.reserve(events);
    }

    /// Record a segment; zero-length segments are dropped, and a segment
    /// contiguous with the previous one of the same instance and kind is
    /// merged into it.
    pub fn push_segment(&mut self, who: InstanceId, from: Tick, to: Tick, kind: SegKind) {
        if from >= to {
            return;
        }
        if let Some(last) = self.segments.last_mut() {
            if last.who == who && last.kind == kind && last.to == from {
                last.to = to;
                return;
            }
        }
        self.segments.push(Segment {
            who,
            from,
            to,
            kind,
        });
    }

    /// Record an event.
    pub fn push_event(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Record a system-ceiling sample (deduplicated against the previous
    /// sample's value; a later sample at the same tick replaces it).
    pub fn push_ceiling(&mut self, at: Tick, ceiling: Ceiling) {
        if let Some(&(last_at, last_c)) = self.ceiling_samples.last() {
            if last_c == ceiling {
                return;
            }
            if last_at == at {
                self.ceiling_samples.pop();
                if let Some(&(_, prev_c)) = self.ceiling_samples.last() {
                    if prev_c == ceiling {
                        return;
                    }
                }
            }
        }
        self.ceiling_samples.push((at, ceiling));
    }

    /// All segments in chronological order of their start.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segments of one instance.
    pub fn segments_of(&self, who: InstanceId) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(move |s| s.who == who)
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The ceiling samples.
    pub fn ceiling_samples(&self) -> &[(Tick, Ceiling)] {
        &self.ceiling_samples
    }

    /// Highest system ceiling observed over the run (`Max_Sysceil`).
    pub fn max_system_ceiling(&self) -> Ceiling {
        self.ceiling_samples
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(Ceiling::Dummy)
    }

    /// Total blocked time per instance, from the Blocked segments.
    pub fn blocked_time(&self) -> BTreeMap<InstanceId, u64> {
        let mut out = BTreeMap::new();
        for s in &self.segments {
            if s.kind == SegKind::Blocked {
                *out.entry(s.who).or_insert(0) += s.to.raw() - s.from.raw();
            }
        }
        out
    }

    /// Serialize the whole trace (segments, events, ceiling samples) to
    /// pretty JSON — for external timeline viewers and post-processing.
    pub fn to_json(&self) -> String {
        self.json().pretty()
    }

    /// The trace as a JSON value (segments, events, ceiling samples).
    pub fn json(&self) -> Json {
        let segments: Vec<Json> = self
            .segments
            .iter()
            .map(|s| {
                Json::obj()
                    .set("who", inst_json(s.who))
                    .set("from", s.from.raw())
                    .set("to", s.to.raw())
                    .set(
                        "kind",
                        match s.kind {
                            SegKind::Running => "running",
                            SegKind::Blocked => "blocked",
                        },
                    )
            })
            .collect();
        let events: Vec<Json> = self.events.iter().map(TraceEvent::json).collect();
        let samples: Vec<Json> = self
            .ceiling_samples
            .iter()
            .map(|&(at, c)| Json::Arr(vec![Json::from(at.raw()), ceiling_json(c)]))
            .collect();
        Json::obj()
            .set("segments", Json::Arr(segments))
            .set("events", Json::Arr(events))
            .set("ceiling_samples", Json::Arr(samples))
    }

    /// End of the last segment / event (the makespan).
    pub fn end(&self) -> Tick {
        let seg_end = self.segments.iter().map(|s| s.to).max();
        let ev_end = self.events.iter().map(|e| e.at()).max();
        seg_end
            .into_iter()
            .chain(ev_end)
            .max()
            .unwrap_or(Tick::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{Priority, TxnId};

    fn i(t: u32) -> InstanceId {
        InstanceId::first(TxnId(t))
    }

    #[test]
    fn contiguous_segments_merge() {
        let mut tr = Trace::new();
        tr.push_segment(i(0), Tick(0), Tick(2), SegKind::Running);
        tr.push_segment(i(0), Tick(2), Tick(3), SegKind::Running);
        assert_eq!(tr.segments().len(), 1);
        assert_eq!(tr.segments()[0].to, Tick(3));

        // Different kind does not merge.
        tr.push_segment(i(0), Tick(3), Tick(4), SegKind::Blocked);
        assert_eq!(tr.segments().len(), 2);
    }

    #[test]
    fn zero_length_segments_dropped() {
        let mut tr = Trace::new();
        tr.push_segment(i(0), Tick(1), Tick(1), SegKind::Running);
        assert!(tr.segments().is_empty());
    }

    #[test]
    fn ceiling_samples_dedupe() {
        let mut tr = Trace::new();
        tr.push_ceiling(Tick(0), Ceiling::Dummy);
        tr.push_ceiling(Tick(1), Ceiling::At(Priority(2)));
        tr.push_ceiling(Tick(2), Ceiling::At(Priority(2))); // same value
        tr.push_ceiling(Tick(3), Ceiling::Dummy);
        assert_eq!(tr.ceiling_samples().len(), 3);
        assert_eq!(tr.max_system_ceiling(), Ceiling::At(Priority(2)));
    }

    #[test]
    fn ceiling_same_tick_replaces() {
        let mut tr = Trace::new();
        tr.push_ceiling(Tick(1), Ceiling::At(Priority(1)));
        tr.push_ceiling(Tick(1), Ceiling::At(Priority(5)));
        assert_eq!(tr.ceiling_samples(), &[(Tick(1), Ceiling::At(Priority(5)))]);
    }

    #[test]
    fn trace_serializes_to_json() {
        let mut tr = Trace::new();
        let who = i(0);
        tr.push_event(TraceEvent::Arrive { at: Tick(0), who });
        tr.push_segment(who, Tick(0), Tick(2), SegKind::Running);
        tr.push_ceiling(Tick(1), Ceiling::At(Priority(3)));
        let json = tr.to_json();
        assert!(json.contains("\"arrive\""), "{json}");
        assert!(json.contains("segments"));
        assert!(json.contains("ceiling_samples"));
        // Round-trippable enough to be consumed by jq etc.
        let v = Json::parse(&json).unwrap();
        assert!(v.get("events").unwrap().is_array());
        assert_eq!(
            v.get("ceiling_samples").unwrap().as_array().unwrap()[0]
                .as_array()
                .unwrap()[1]
                .as_i64(),
            Some(3)
        );
    }

    #[test]
    fn blocked_time_sums_blocked_segments() {
        let mut tr = Trace::new();
        tr.push_segment(i(0), Tick(1), Tick(5), SegKind::Blocked);
        tr.push_segment(i(0), Tick(7), Tick(8), SegKind::Blocked);
        tr.push_segment(i(1), Tick(0), Tick(9), SegKind::Running);
        let bt = tr.blocked_time();
        assert_eq!(bt[&i(0)], 5);
        assert!(!bt.contains_key(&i(1)));
        assert_eq!(tr.end(), Tick(9));
    }
}
