//! Engine behaviour tests: aborts/restarts, deadlock resolution, early
//! release visibility, accounting, and configuration edge cases.

use rtdb_baselines::{Ccp, NaiveDa, TwoPlHp, TwoPlPi};
use rtdb_cc::PcpDa;
use rtdb_sim::{Engine, RunOutcome, SimConfig, TraceEvent};
use rtdb_types::*;

fn inst(t: u32) -> InstanceId {
    InstanceId::first(TxnId(t))
}

// Local copies of the paper's example sets (the facade crate `rtdb`
// depends on this crate, so we cannot import `rtdb::paper` here).
fn example1() -> TransactionSet {
    SetBuilder::new()
        .with(
            TransactionTemplate::new("T1", 20, vec![Step::read(ItemId(0), 1)])
                .with_offset(2)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new("T2", 20, vec![Step::read(ItemId(1), 1)])
                .with_offset(1)
                .with_instances(1),
        )
        .with(TransactionTemplate::new("T3", 20, vec![Step::write(ItemId(0), 3)]).with_instances(1))
        .build()
        .unwrap()
}

fn example4() -> TransactionSet {
    SetBuilder::new()
        .with(
            TransactionTemplate::new("T1", 30, vec![Step::read(ItemId(0), 2)])
                .with_offset(4)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new("T2", 30, vec![Step::write(ItemId(1), 2)])
                .with_offset(9)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new(
                "T3",
                30,
                vec![Step::read(ItemId(2), 1), Step::write(ItemId(2), 1)],
            )
            .with_offset(1)
            .with_instances(1),
        )
        .with(
            TransactionTemplate::new(
                "T4",
                30,
                vec![
                    Step::read(ItemId(1), 1),
                    Step::write(ItemId(0), 1),
                    Step::compute(3),
                ],
            )
            .with_instances(1),
        )
        .build()
        .unwrap()
}

fn example5() -> TransactionSet {
    SetBuilder::new()
        .with(
            TransactionTemplate::new(
                "TH",
                10,
                vec![Step::read(ItemId(1), 1), Step::write(ItemId(0), 1)],
            )
            .with_offset(1)
            .with_instances(1),
        )
        .with(
            TransactionTemplate::new(
                "TL",
                10,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
            )
            .with_instances(1),
        )
        .build()
        .unwrap()
}

/// H arrives second and aborts L under 2PL-HP; L restarts and still
/// commits with correct values.
#[test]
fn twopl_hp_abort_restarts_cleanly() {
    let x = ItemId(0);
    let set = SetBuilder::new()
        .with(
            TransactionTemplate::new("H", 50, vec![Step::write(x, 2)])
                .with_offset(1)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new("L", 50, vec![Step::write(x, 3), Step::compute(2)])
                .with_instances(1),
        )
        .build()
        .unwrap();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut TwoPlHp::new())
        .unwrap();
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.history.committed(), 2);
    assert_eq!(r.history.aborts(), 1);
    let l = r.metrics.instance(inst(1)).unwrap();
    assert_eq!(l.restarts, 1);
    // L re-ran from scratch: its final commit installs its own value.
    assert!(r.replay_check(&set).is_serializable());
    // H committed first (it preempted and aborted L).
    assert_eq!(r.history.commit_order()[0], inst(0));
}

/// Deadlock resolution aborts the lowest-priority cycle member and the
/// run completes; without resolution the same workload reports the cycle.
#[test]
fn deadlock_resolution_toggle() {
    let set = example5();
    let stuck = Engine::new(&set, SimConfig::default())
        .run(&mut NaiveDa::new())
        .unwrap();
    assert!(matches!(stuck.outcome, RunOutcome::Deadlock(_)));

    let resolved = Engine::new(&set, SimConfig::default().resolving_deadlocks())
        .run(&mut NaiveDa::new())
        .unwrap();
    assert_eq!(resolved.outcome, RunOutcome::Completed);
    assert!(resolved.history.aborts() >= 1);
    // The victim must be the lowest-priority member of the cycle (TL).
    assert!(resolved
        .trace
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::Abort { who, .. } if who.txn == TxnId(1))));
    assert!(resolved.replay_check(&set).is_serializable());
}

/// CCP's early release installs the written value so later readers see
/// it before the writer commits.
#[test]
fn ccp_early_install_is_visible() {
    let (a, b) = (ItemId(0), ItemId(1));
    // W writes a (high ceiling via H's access), then computes for a long
    // time; R arrives mid-computation and reads a.
    let set = SetBuilder::new()
        .with(
            TransactionTemplate::new("R", 100, vec![Step::read(a, 1)])
                .with_offset(6)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new(
                "W",
                100,
                vec![Step::write(a, 2), Step::read(b, 1), Step::compute(8)],
            )
            .with_instances(1),
        )
        .build()
        .unwrap();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut Ccp::new())
        .unwrap();
    assert_eq!(r.outcome, RunOutcome::Completed);

    // W early-releases its write lock on `a` once past its lock point;
    // the install happens at that moment, before W's commit.
    let release_at = r.trace.events().iter().find_map(|e| match e {
        TraceEvent::EarlyRelease { at, item, .. } if *item == a => Some(at.raw()),
        _ => None,
    });
    let w_commit = r.metrics.instance(inst(1)).unwrap().completion.unwrap();
    if let Some(rel) = release_at {
        assert!(rel < w_commit.raw(), "early release precedes commit");
        // R (arriving at 6) read W's value, not the initial one.
        let read_event = r.history.events().iter().find_map(|e| {
            if e.instance == inst(0) {
                if let rtdb_storage::EventKind::Read { version, .. } = e.kind {
                    return Some(version);
                }
            }
            None
        });
        assert_eq!(read_event, Some(1), "R observed W's early-installed write");
    }
    // Either way the run is serializable by the graph oracle.
    assert!(r.is_conflict_serializable());
    assert!(r
        .replay_check_topological(&set)
        .expect("acyclic")
        .is_serializable());
}

/// Directed cascade: A early-releases a write that B and C dirty-read,
/// then A self-aborts against a senior holder — B and C must be
/// cascade-aborted exactly once each, and the rerun loses no updates.
///
/// Brook-2PL is the vehicle because its wait-die order is *seniority*
/// (template order), not priority: the senior-and-higher-priority B and
/// C preempt the junior A mid-compute, dirty-read its retired write on
/// `x` and become dependents (senior → junior gate edges), while A later
/// dies wait-die style against the senior S.
#[test]
fn early_release_cascade_aborts_dependents_exactly_once() {
    let (x, y) = (ItemId(0), ItemId(1));
    let set = SetBuilder::new()
        // S: most senior, lowest priority; pins a read lock on y for the
        // whole run so the junior A's eventual `write y` wait-dies.
        .with(
            TransactionTemplate::new("S", 150, vec![Step::read(y, 1), Step::compute(25)])
                .with_instances(1),
        )
        // B and C: senior to A, higher priority — they preempt A's
        // compute window, dirty-read x and gate on A at commit.
        .with(
            TransactionTemplate::new("B", 60, vec![Step::read(x, 1), Step::compute(1)])
                .with_offset(3)
                .with_instances(1),
        )
        .with(
            TransactionTemplate::new("C", 50, vec![Step::read(x, 1), Step::compute(1)])
                .with_offset(4)
                .with_instances(1),
        )
        // A: most junior. Writes x (which retires immediately — nothing
        // later touches it), computes, then hits the senior S on y.
        .with(
            TransactionTemplate::new(
                "A",
                90,
                vec![Step::write(x, 1), Step::compute(10), Step::write(y, 1)],
            )
            .with_offset(1)
            .with_instances(1),
        )
        // Rate-monotonic: priority comes from the period, so the
        // insertion order above is free to encode seniority (S < A < B
        // < C) while the priority order crosses it (C > B > A > S).
        .build_rate_monotonic()
        .unwrap();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut rtdb_sim::instantiate(
            rtdb_core::ProtocolKind::Brook2Pl,
        ))
        .unwrap();
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.history.committed(), 4);

    // A self-aborted once; B and C each aborted exactly once, as cascades.
    let aborts_of = |t: u32| {
        r.trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Abort { who, .. } if who.txn == TxnId(t)))
            .count()
    };
    assert_eq!(aborts_of(3), 1, "A self-aborted once");
    assert_eq!(aborts_of(1), 1, "B cascade-aborted exactly once");
    assert_eq!(aborts_of(2), 1, "C cascade-aborted exactly once");
    assert_eq!(aborts_of(0), 0, "the senior holder never aborts");
    assert_eq!(r.metrics.abort_reasons.ceiling_block, 1);
    assert_eq!(r.metrics.abort_reasons.cascade, 2);
    assert_eq!(r.metrics.abort_reasons.wound, 0);

    // No lost updates: the final database matches a serial replay.
    assert!(r.is_conflict_serializable());
    assert!(r
        .replay_check_topological(&set)
        .expect("acyclic")
        .is_serializable());
}

/// The event budget aborts runaway configurations instead of hanging.
#[test]
fn event_budget_is_enforced() {
    let set = SetBuilder::new()
        .with(TransactionTemplate::new("A", 10, vec![Step::compute(1)]))
        .build()
        .unwrap();
    let mut cfg = SimConfig::with_horizon(1_000_000);
    cfg.max_steps = 10; // absurdly small
    let err = Engine::new(&set, cfg).run(&mut PcpDa::new()).unwrap_err();
    assert!(matches!(err, Error::EventBudgetExhausted));
}

/// Explicit instance counts override the horizon; offsets shift releases.
#[test]
fn arrivals_respect_instances_and_offsets() {
    let set = SetBuilder::new()
        .with(
            TransactionTemplate::new("A", 10, vec![Step::compute(1)])
                .with_offset(3)
                .with_instances(3),
        )
        .build()
        .unwrap();
    let r = Engine::new(&set, SimConfig::with_horizon(5))
        .run(&mut PcpDa::new())
        .unwrap();
    // All 3 instances run even though the horizon is 5 (explicit count).
    assert_eq!(r.history.committed(), 3);
    let arrivals: Vec<u64> = r
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Arrive { at, .. } => Some(at.raw()),
            _ => None,
        })
        .collect();
    assert_eq!(arrivals, vec![3, 13, 23]);
}

/// lower_exec accounts exactly the lower-priority CPU time during an
/// instance's lifetime (Figure 1's T1: T3 runs 1 tick while T1 is live).
#[test]
fn lower_exec_accounting_matches_figure1() {
    let set = example1();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut rtdb_baselines::RwPcp::new())
        .unwrap();
    let t1 = r.metrics.instance(inst(0)).unwrap();
    // T1 arrives at 2; T3 (lower) runs 2..3 => 1 tick of lower execution.
    assert_eq!(t1.lower_exec, Duration(1));
    let t2 = r.metrics.instance(inst(1)).unwrap();
    // T2 arrives at 1; T3 runs 1..3 (2 ticks); T1 is higher than T2 so
    // its execution is interference, not lower_exec.
    assert_eq!(t2.lower_exec, Duration(2));
}

/// 2PL-PI without resolution must *stop* at the deadlock with partial
/// metrics (unfinished instances recorded, blocked segments flushed).
#[test]
fn deadlock_stop_flushes_partial_state() {
    let set = example5();
    let r = Engine::new(&set, SimConfig::default())
        .run(&mut TwoPlPi::new())
        .unwrap();
    let RunOutcome::Deadlock(cycle) = &r.outcome else {
        panic!("expected deadlock");
    };
    assert_eq!(cycle.len(), 2);
    // Both instances are recorded as unfinished.
    for t in 0..2 {
        let m = r.metrics.instance(inst(t)).unwrap();
        assert_eq!(m.completion, None);
        assert!(!m.met_deadline());
    }
}

/// Identical runs byte-for-byte: the trace, history and metrics agree
/// across repeated executions (engine determinism at the API level).
#[test]
fn engine_determinism() {
    let set = example4();
    let a = Engine::new(&set, SimConfig::default())
        .run(&mut PcpDa::new())
        .unwrap();
    let b = Engine::new(&set, SimConfig::default())
        .run(&mut PcpDa::new())
        .unwrap();
    assert_eq!(a.history.events(), b.history.events());
    assert_eq!(a.trace.segments(), b.trace.segments());
    assert_eq!(a.db.snapshot(), b.db.snapshot());
}
