//! Differential property test: the slot-arena engine against the
//! map-backed oracle store.
//!
//! The dense-slot rewrite of the engine core must be **observationally
//! identical** to the plain `BTreeMap` layout it replaced — same
//! histories, traces, metrics, final database state and final clock, for
//! every protocol, on arbitrary workloads. Random transaction sets are
//! run through both [`Engine::run`] (slot arena) and
//! [`Engine::run_map_oracle`] (map store) and every observable output is
//! compared. The oracle is compiled only in debug builds or under the
//! `oracle-checks` feature, so this file is gated the same way.

#![cfg(any(debug_assertions, feature = "oracle-checks"))]

use rtdb_core::ProtocolKind;
use rtdb_sim::{Engine, RunResult, SimConfig, WorkloadParams};
use rtdb_types::TransactionSet;
use rtdb_util::prop::forall;
use rtdb_util::Rng;

/// Each case runs every registry protocol twice; keep the count moderate.
const CASES: usize = 24;

fn arb_params(rng: &mut Rng) -> WorkloadParams {
    WorkloadParams {
        templates: rng.range_inclusive_usize(2, 6),
        items: rng.range_inclusive_usize(4, 12),
        target_utilization: rng.range_inclusive_u64(1, 7) as f64 / 10.0,
        min_period: 30,
        max_period: 300,
        min_data_steps: 1,
        max_data_steps: 4,
        write_fraction: rng.f64() * 0.8,
        hotspot_items: 3,
        hotspot_prob: rng.f64() * 0.9,
        zipf_theta: None,
        partitions: 1,
        cross_partition_prob: 0.0,
        read_only_templates: 0,
        // Exercise both step orderings: hot-first reshapes every
        // template, so the arena/oracle equivalence must hold for it too.
        hot_first: rng.range_inclusive_usize(0, 1) == 1,
        seed: rng.next_u64(),
    }
}

fn config(resolve: bool) -> SimConfig {
    let mut cfg = SimConfig::with_horizon(2_000);
    cfg.resolve_deadlocks = resolve;
    cfg
}

/// Assert that two runs are observationally identical.
fn assert_identical(arena: &RunResult, oracle: &RunResult, context: &str) {
    assert_eq!(arena.outcome, oracle.outcome, "{context}: outcome");
    assert_eq!(
        arena.final_clock, oracle.final_clock,
        "{context}: final clock"
    );
    assert_eq!(
        arena.history.events(),
        oracle.history.events(),
        "{context}: history events"
    );
    assert_eq!(
        arena.history.commit_order(),
        oracle.history.commit_order(),
        "{context}: commit order"
    );
    assert_eq!(
        arena.trace.events(),
        oracle.trace.events(),
        "{context}: trace events"
    );
    assert_eq!(
        arena.trace.segments(),
        oracle.trace.segments(),
        "{context}: trace segments"
    );
    assert_eq!(
        arena.trace.ceiling_samples(),
        oracle.trace.ceiling_samples(),
        "{context}: ceiling samples"
    );
    assert_eq!(
        arena.db.snapshot(),
        oracle.db.snapshot(),
        "{context}: final database"
    );
    // MetricsReport intentionally has no PartialEq; its Debug output is
    // total over every field, which is exactly what we want to compare.
    assert_eq!(
        format!("{:?}", arena.metrics),
        format!("{:?}", oracle.metrics),
        "{context}: metrics"
    );
}

fn check_set(set: &TransactionSet, resolve_deadlocks: bool) {
    for &kind in ProtocolKind::ALL.iter() {
        let resolve = kind.may_deadlock() && resolve_deadlocks;
        let engine_a = Engine::new(set, config(resolve));
        let arena = engine_a.run_kind(kind).expect("arena run succeeds");
        let engine_b = Engine::new(set, config(resolve));
        let oracle = engine_b
            .run_kind_map_oracle(kind)
            .expect("oracle run succeeds");
        assert_identical(&arena, &oracle, kind.name());
    }
}

/// Arena and oracle agree on every observable, for every registry
/// protocol, on random workloads (deadlock-capable protocols run with
/// resolution on).
#[test]
fn slot_arena_matches_map_oracle() {
    forall(CASES, |rng| {
        let set = arb_params(rng).generate().unwrap().set;
        check_set(&set, true);
    });
}

/// Same, with deadlocks left unresolved — exercises the
/// `RunOutcome::Deadlock` paths (cycle detection and early stop) in both
/// stores.
#[test]
fn slot_arena_matches_map_oracle_on_deadlock_paths() {
    forall(CASES / 2, |rng| {
        let set = arb_params(rng).generate().unwrap().set;
        check_set(&set, false);
    });
}
