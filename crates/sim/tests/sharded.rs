//! Multi-shard simulator mode.
//!
//! The engine's sharded mode partitions items across per-shard lock
//! tables under the same `ShardRouter` rule the runtime uses; these
//! tests pin down its safety (serializability for every shardable
//! protocol), its degenerate case (a workload confined to one shard is
//! bit-identical to the unsharded engine), its validation (non-shardable
//! kinds are rejected), and its store-differential (slot arena vs map
//! oracle agree under sharding too).

use rtdb_core::ProtocolKind;
use rtdb_sim::{Engine, RunOutcome, SimConfig, WorkloadParams};
use rtdb_types::{Error, ItemId, SetBuilder, Step, TransactionSet, TransactionTemplate};

fn shardable_kinds() -> impl Iterator<Item = ProtocolKind> {
    ProtocolKind::ALL.into_iter().filter(|k| k.shardable())
}

/// A bounded contended workload spanning enough items for 4 shards.
fn bounded_workload(seed: u64) -> TransactionSet {
    let spec = WorkloadParams {
        templates: 4,
        items: 12,
        target_utilization: 0.5,
        hotspot_items: 3,
        hotspot_prob: 0.6,
        seed,
        ..WorkloadParams::default()
    }
    .generate()
    .expect("workload generation");
    let mut b = SetBuilder::new();
    for t in spec.set.templates() {
        let mut t = t.clone();
        t.instances = Some(2);
        b.add(t);
    }
    b.build_rate_monotonic().expect("rebuild")
}

fn config(kind: ProtocolKind, shards: usize) -> SimConfig {
    let mut c = SimConfig::default().with_shards(shards);
    if kind.may_deadlock() {
        c = c.resolving_deadlocks();
    }
    c
}

/// Every shardable protocol completes multi-shard runs with a
/// conflict-serializable history that passes the serial-replay oracle.
#[test]
fn multi_shard_runs_stay_serializable() {
    for kind in shardable_kinds() {
        for shards in [2usize, 4] {
            let set = bounded_workload(0x51AD + kind as u64);
            let r = Engine::new(&set, config(kind, shards))
                .run_kind(kind)
                .expect("sharded sim run");
            assert_eq!(r.outcome, RunOutcome::Completed, "{kind:?}/{shards}");
            assert_eq!(r.shards, shards);
            assert!(
                r.is_conflict_serializable(),
                "{kind:?}/{shards} shards: cyclic serialization graph"
            );
            assert!(
                r.replay_check(&set).is_serializable(),
                "{kind:?}/{shards} shards: replay diverged"
            );
        }
    }
}

/// A workload whose items all live in shard 0 of 4 must produce the
/// bit-identical history, database and clock the unsharded engine
/// produces: the other three tables stay empty and shard 0's local
/// ceiling *is* the system ceiling.
#[test]
fn single_shard_workload_is_bit_identical_to_unsharded() {
    let set = SetBuilder::new()
        .with(
            TransactionTemplate::new(
                "A",
                6,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(4), 1)],
            )
            .with_instances(2),
        )
        .with(
            TransactionTemplate::new(
                "B",
                9,
                vec![Step::write(ItemId(0), 1), Step::write(ItemId(8), 1)],
            )
            .with_instances(2),
        )
        .build()
        .expect("set");
    for kind in shardable_kinds() {
        let base = Engine::new(&set, config(kind, 1))
            .run_kind(kind)
            .expect("unsharded run");
        let sharded = Engine::new(&set, config(kind, 4))
            .run_kind(kind)
            .expect("sharded run");
        assert_eq!(base.history.events(), sharded.history.events(), "{kind:?}");
        assert_eq!(base.db.snapshot(), sharded.db.snapshot(), "{kind:?}");
        assert_eq!(base.final_clock, sharded.final_clock, "{kind:?}");
    }
}

/// Non-shardable kinds are rejected with a config error naming the
/// shardable alternatives.
#[test]
fn non_shardable_kinds_are_rejected() {
    let set = bounded_workload(0xE44);
    for kind in ProtocolKind::ALL.into_iter().filter(|k| !k.shardable()) {
        let err = Engine::new(&set, config(kind, 2))
            .run_kind(kind)
            .expect_err("must reject");
        match err {
            Error::Config(msg) => {
                assert!(msg.contains("cannot run sharded"), "{kind:?}: {msg}");
                assert!(msg.contains("PCP-DA"), "{kind:?}: {msg}");
            }
            other => panic!("{kind:?}: unexpected error {other:?}"),
        }
        // Sharded runs only need clamping above 1; 1 shard always works.
        Engine::new(&set, config(kind, 1))
            .run_kind(kind)
            .expect("single shard is the classic engine");
    }
}

/// The slot-arena and map-oracle stores agree under sharding exactly as
/// they do unsharded. The oracle store only compiles in debug builds or
/// under `oracle-checks`, so this test is gated the same way as
/// `tests/differential.rs`.
#[cfg(any(debug_assertions, feature = "oracle-checks"))]
#[test]
fn sharded_map_oracle_matches_slot_store() {
    for kind in shardable_kinds() {
        let set = bounded_workload(0x0AC1 + kind as u64);
        let slot = Engine::new(&set, config(kind, 4))
            .run_kind(kind)
            .expect("slot run");
        let map = Engine::new(&set, config(kind, 4))
            .run_kind_map_oracle(kind)
            .expect("map run");
        assert_eq!(slot.history.events(), map.history.events(), "{kind:?}");
        assert_eq!(slot.db.snapshot(), map.db.snapshot(), "{kind:?}");
    }
}
