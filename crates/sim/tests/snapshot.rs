//! Simulator-level tests of the multiversion snapshot read path: the
//! exemption gate per protocol kind, snapshot-aware serializability,
//! reader wait-freedom, writer-equivalence of the final state, and the
//! epoch GC's memory-flatness telemetry.

use rtdb_core::ProtocolKind;
use rtdb_sim::{
    snapshot_serializability_violations, Engine, RunOutcome, SimConfig, WorkloadParams,
};
use rtdb_types::{Duration, SetBuilder, TransactionSet};

/// Read-heavy contended workload, bounded to a few instances per
/// template so an unhorizoned run completes for every protocol.
fn read_heavy_set(seed: u64, instances: u32) -> TransactionSet {
    let spec = WorkloadParams {
        templates: 6,
        items: 12,
        target_utilization: 0.5,
        hotspot_items: 0,
        hotspot_prob: 0.0,
        zipf_theta: Some(0.6),
        read_only_templates: 3,
        write_fraction: 0.7,
        seed,
        ..WorkloadParams::default()
    }
    .generate()
    .expect("workload generation");
    let mut b = SetBuilder::new();
    for t in spec.set.templates() {
        let mut t = t.clone();
        t.instances = Some(instances);
        b.add(t);
    }
    b.build_rate_monotonic().expect("rebuild")
}

fn config_for(kind: ProtocolKind) -> SimConfig {
    let mut config = SimConfig::default().with_snapshot_reads();
    if kind.may_deadlock() {
        config = config.resolving_deadlocks();
    }
    config
}

#[test]
fn snapshot_gate_and_oracle_for_all_kinds() {
    for kind in ProtocolKind::ALL {
        let set = read_heavy_set(0xA11 + kind as u64, 2);
        let run = Engine::new(&set, config_for(kind))
            .run_kind(kind)
            .expect("sim run");
        assert_eq!(run.outcome, RunOutcome::Completed, "{kind:?} stalled");
        assert_eq!(
            run.snapshot_reads,
            kind.snapshot_exempt(),
            "{kind:?}: engine gate disagrees with the registry"
        );
        let stamps = run.snapshot_stamps();
        if kind.snapshot_exempt() {
            assert!(!stamps.is_empty(), "{kind:?}: no reader took the path");
        } else {
            // CCP installs at early release, so commit stamps cannot
            // name consistent states; its readers must stay on locks.
            assert!(stamps.is_empty(), "{kind:?}: must decline the path");
        }
        let violations = snapshot_serializability_violations(
            &set,
            &run.history,
            &run.db,
            kind != ProtocolKind::Ccp,
            &stamps,
        );
        assert!(violations.is_empty(), "{kind:?}: {violations:?}");
    }
}

#[test]
fn snapshot_readers_never_block_or_restart() {
    let set = read_heavy_set(0xB10C, 3);
    let run = Engine::new(&set, config_for(ProtocolKind::PcpDa))
        .run_kind(ProtocolKind::PcpDa)
        .expect("sim run");
    let stamps = run.snapshot_stamps();
    assert!(!stamps.is_empty());
    for (id, _) in &stamps {
        let m = run.metrics.instance(*id).expect("metrics");
        assert_eq!(m.blocking, Duration(0), "{id:?}: snapshot reader blocked");
        assert_eq!(m.restarts, 0, "{id:?}: snapshot reader restarted");
        assert!(
            m.distinct_lower_blockers.is_empty(),
            "{id:?}: snapshot reader recorded a blocker"
        );
    }
}

#[test]
fn snapshot_path_leaves_writers_unchanged() {
    // Readers are invisible to writers: flipping the path on must not
    // change the final database or the set of committed instances.
    for kind in ProtocolKind::ALL {
        let set = read_heavy_set(0xD0D0 + kind as u64, 2);
        let mut plain_config = SimConfig::default();
        if kind.may_deadlock() {
            plain_config = plain_config.resolving_deadlocks();
        }
        let plain = Engine::new(&set, plain_config)
            .run_kind(kind)
            .expect("sim run");
        let snap = Engine::new(&set, config_for(kind))
            .run_kind(kind)
            .expect("sim run");
        assert_eq!(
            snap.db.snapshot(),
            plain.db.snapshot(),
            "{kind:?}: snapshot path changed the final database"
        );
        assert_eq!(
            snap.history.commit_order().len(),
            plain.history.commit_order().len(),
            "{kind:?}: snapshot path changed the committed count"
        );
    }
}

#[test]
fn snapshot_runs_are_deterministic() {
    let a = Engine::new(&read_heavy_set(0x5A5A, 3), config_for(ProtocolKind::RwPcp))
        .run_kind(ProtocolKind::RwPcp)
        .expect("sim run");
    let b = Engine::new(&read_heavy_set(0x5A5A, 3), config_for(ProtocolKind::RwPcp))
        .run_kind(ProtocolKind::RwPcp)
        .expect("sim run");
    assert_eq!(a.db.snapshot(), b.db.snapshot());
    assert_eq!(a.history.commit_order(), b.history.commit_order());
    assert_eq!(a.snapshot_stamps(), b.snapshot_stamps());
    assert_eq!(a.mv_high_water, b.mv_high_water);
}

#[test]
fn mv_high_water_stays_bounded_over_long_horizon() {
    // Many writer commits over a long horizon; pruning at every reader
    // retirement must keep the longest chain far below the commit count.
    let set = read_heavy_set(0xF1A7, 40);
    let run = Engine::new(&set, config_for(ProtocolKind::PcpDa))
        .run_kind(ProtocolKind::PcpDa)
        .expect("sim run");
    assert_eq!(run.outcome, RunOutcome::Completed);
    let lock_commits = run.history.commit_order().len() - run.snapshot_stamps().len();
    assert!(lock_commits > 60, "soak too small: {lock_commits} commits");
    assert!(run.mv_high_water > 0, "writers never published");
    assert!(
        run.mv_high_water < lock_commits / 2,
        "chains not pruned: high water {} vs {lock_commits} lock-path commits",
        run.mv_high_water
    );
}
