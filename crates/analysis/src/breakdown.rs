//! Breakdown utilization: how far can a transaction set be loaded before
//! the protocol's schedulability condition fails?
//!
//! Every execution time is scaled by a common factor `λ`; blocking terms
//! scale with it (they are maxima over scaled execution times). The
//! breakdown utilization is the total utilization at the largest `λ` for
//! which the set passes exact response-time analysis. Because PCP-DA's
//! `BTS_i ⊆ BTS_i(RW-PCP)`, its breakdown utilization is never lower —
//! experiment E11 quantifies the gap on random workloads.

use crate::blocking::{bts, AnalysisProtocol};
use crate::rm::{response_times_f64, tasks_of};
use rtdb_types::TransactionSet;

/// Binary-search the breakdown utilization of `set` under `protocol`.
///
/// Returns `(lambda, utilization)` — the largest feasible scaling factor
/// (relative to the set's current execution times) and the total CPU
/// utilization at that point. Resolution: `1e-4` on `λ`.
pub fn breakdown_utilization(set: &TransactionSet, protocol: AnalysisProtocol) -> (f64, f64) {
    let tasks = tasks_of(set);
    let base_util: f64 = tasks.iter().map(|t| t.c / t.period).sum();

    // Blocking sets are scale-invariant; precompute the max-C structure.
    let bts_all: Vec<Vec<usize>> = set
        .templates()
        .iter()
        .map(|t| {
            bts(set, protocol, t.id)
                .into_iter()
                .map(|id| id.index())
                .collect()
        })
        .collect();

    let feasible = |lambda: f64| -> bool {
        let scaled: Vec<_> = tasks
            .iter()
            .map(|t| crate::rm::AnalysisTask {
                c: t.c * lambda,
                period: t.period,
                rank: t.rank,
            })
            .collect();
        let blocking: Vec<f64> = bts_all
            .iter()
            .map(|b| b.iter().map(|&j| scaled[j].c).fold(0.0f64, f64::max))
            .collect();
        response_times_f64(&scaled, &blocking)
            .iter()
            .all(|r| r.is_some())
    };

    // Bracket: grow until infeasible (or cap), then bisect.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    if feasible(hi) {
        while feasible(hi) && hi < 1024.0 {
            lo = hi;
            hi *= 2.0;
        }
    }
    if !feasible(f64::MIN_POSITIVE) && !feasible(1e-6) {
        return (0.0, 0.0);
    }
    while hi - lo > 1e-4 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, base_util * lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate};

    #[test]
    fn independent_tasks_break_at_full_utilization_or_ll() {
        // Two independent harmonic tasks: breakdown = 1.0 utilization.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new("A", 10, vec![Step::compute(2)]))
            .with(TransactionTemplate::new("B", 20, vec![Step::compute(4)]))
            .build()
            .unwrap();
        let (_, util) = breakdown_utilization(&set, AnalysisProtocol::PcpDa);
        assert!((util - 1.0).abs() < 1e-2, "harmonic breakdown {util}");
    }

    #[test]
    fn pcpda_breakdown_at_least_rwpcp() {
        // Example 3 structure: the writer's blocking burdens RW-PCP only.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                5,
                vec![Step::read(ItemId(0), 1), Step::read(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![
                    Step::write(ItemId(0), 1),
                    Step::compute(2),
                    Step::write(ItemId(1), 1),
                    Step::compute(1),
                ],
            ))
            .build()
            .unwrap();
        let (l_da, u_da) = breakdown_utilization(&set, AnalysisProtocol::PcpDa);
        let (l_rw, u_rw) = breakdown_utilization(&set, AnalysisProtocol::RwPcp);
        assert!(l_da >= l_rw, "PCP-DA λ {l_da} < RW-PCP λ {l_rw}");
        assert!(u_da > u_rw, "expected a strict gap: {u_da} vs {u_rw}");
    }

    #[test]
    fn infeasible_at_any_scale_reports_zero() {
        // A reader blocked by an equal-length lower-priority reader whose
        // blocking scales as fast as the budget: still feasible at small
        // λ — so construct direct infeasibility instead: zero isn't
        // reachable for valid sets, so check monotonicity instead.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new("A", 10, vec![Step::compute(9)]))
            .with(TransactionTemplate::new("B", 11, vec![Step::compute(9)]))
            .build()
            .unwrap();
        let (lambda, util) = breakdown_utilization(&set, AnalysisProtocol::PcpDa);
        assert!(lambda > 0.0 && lambda < 1.0);
        assert!(util < 1.72); // two tasks can't beat ~LL for this shape
    }
}
