//! Blocking transaction sets `BTS_i` and worst-case blocking times `B_i`.

use rtdb_types::{Duration, LockMode, TransactionSet, TxnId};

/// Which protocol's blocking-set formula to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AnalysisProtocol {
    /// PCP-DA: only lower-priority *readers* of items with `Wceil ≥ P_i`.
    PcpDa,
    /// RW-PCP: lower-priority readers of items with `Wceil ≥ P_i` *or*
    /// writers of items with `Aceil ≥ P_i`.
    RwPcp,
    /// Original PCP (and, conservatively, CCP): lower-priority transactions
    /// accessing any item with `Aceil ≥ P_i`.
    Pcp,
}

impl AnalysisProtocol {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AnalysisProtocol::PcpDa => "PCP-DA",
            AnalysisProtocol::RwPcp => "RW-PCP",
            AnalysisProtocol::Pcp => "PCP",
        }
    }

    /// All variants.
    pub fn all() -> [AnalysisProtocol; 3] {
        [
            AnalysisProtocol::PcpDa,
            AnalysisProtocol::RwPcp,
            AnalysisProtocol::Pcp,
        ]
    }

    /// The registry kind whose worst-case blocking this analysis models.
    pub fn kind(self) -> rtdb_core::ProtocolKind {
        match self {
            AnalysisProtocol::PcpDa => rtdb_core::ProtocolKind::PcpDa,
            AnalysisProtocol::RwPcp => rtdb_core::ProtocolKind::RwPcp,
            AnalysisProtocol::Pcp => rtdb_core::ProtocolKind::Pcp,
        }
    }

    /// The analysis modelling `kind`'s worst-case blocking, if the §9
    /// theory covers it. CCP maps to the PCP bound (conservative, see
    /// [`AnalysisProtocol::Pcp`]); abort-based and deliberately
    /// defective kinds have no blocking-term analysis.
    pub fn for_kind(kind: rtdb_core::ProtocolKind) -> Option<AnalysisProtocol> {
        match kind {
            rtdb_core::ProtocolKind::PcpDa => Some(AnalysisProtocol::PcpDa),
            rtdb_core::ProtocolKind::RwPcp => Some(AnalysisProtocol::RwPcp),
            rtdb_core::ProtocolKind::Pcp | rtdb_core::ProtocolKind::Ccp => {
                Some(AnalysisProtocol::Pcp)
            }
            _ => None,
        }
    }
}

/// `BTS_i`: the lower-priority templates that may block `txn` under
/// `protocol` (paper §9).
pub fn bts(set: &TransactionSet, protocol: AnalysisProtocol, txn: TxnId) -> Vec<TxnId> {
    let p_i = set.priority_of(txn);
    set.templates()
        .iter()
        .filter(|t| set.priority_of(t.id) < p_i)
        .filter(|t| match protocol {
            AnalysisProtocol::PcpDa => t.read_set().iter().any(|&x| !set.wceil(x).cleared_by(p_i)),
            AnalysisProtocol::RwPcp => {
                t.read_set().iter().any(|&x| !set.wceil(x).cleared_by(p_i))
                    || t.write_set().iter().any(|&x| !set.aceil(x).cleared_by(p_i))
            }
            AnalysisProtocol::Pcp => t
                .access_set()
                .iter()
                .any(|&x| !set.aceil(x).cleared_by(p_i)),
        })
        .map(|t| t.id)
        .collect()
}

/// `B_i`: worst-case blocking time of `txn` — the largest WCET in
/// `BTS_i` ([`Duration::ZERO`] when the set is empty).
pub fn worst_blocking(set: &TransactionSet, protocol: AnalysisProtocol, txn: TxnId) -> Duration {
    bts(set, protocol, txn)
        .into_iter()
        .map(|id| set.template(id).wcet())
        .max()
        .unwrap_or(Duration::ZERO)
}

/// `B_i` for every template, indexed by `TxnId`.
pub fn blocking_terms(set: &TransactionSet, protocol: AnalysisProtocol) -> Vec<Duration> {
    set.templates()
        .iter()
        .map(|t| worst_blocking(set, protocol, t.id))
        .collect()
}

/// The lower-priority templates that can participate in a *blocking
/// chain* below `txn` under the **repaired** PCP-DA (the default
/// `PcpDa::new` with erratum clauses A–D).
///
/// The paper's single-blocking bound `B_i = max C_L` relies on the direct
/// blocker never itself waiting on another lower-priority transaction.
/// The erratum repairs introduce exactly such waits — e.g. the
/// commit-order guard (D) makes a low-priority reader wait for a
/// mid-priority write holder — so while `T_i` is blocked (still by a
/// single *direct* blocker, Theorem 1 survives), a **chain** of
/// lower-priority transactions can execute, one after another, before the
/// direct blocker finishes. This function computes a conservative closure
/// of the templates reachable through such chains:
///
/// * seed: `BTS_i` (the possible direct blockers);
/// * grow: any lower-priority template `W` that a chain member `L` could
///   wait on — `W` shares a data item with `L`, or `W` reads an item
///   whose `Wceil` reaches `P_L` (so `W`'s read lock can ceiling-block
///   `L`).
pub fn chain_set(set: &TransactionSet, txn: TxnId) -> Vec<TxnId> {
    let p_i = set.priority_of(txn);
    let lower: Vec<TxnId> = set
        .templates()
        .iter()
        .filter(|t| set.priority_of(t.id) < p_i)
        .map(|t| t.id)
        .collect();
    let mut members: std::collections::BTreeSet<TxnId> =
        bts(set, AnalysisProtocol::PcpDa, txn).into_iter().collect();
    loop {
        let mut grew = false;
        for &w in &lower {
            if members.contains(&w) {
                continue;
            }
            let tw = set.template(w);
            let reachable = members.iter().any(|&l| {
                let tl = set.template(l);
                let p_l = set.priority_of(l);
                !tl.access_set().is_disjoint(&tw.access_set())
                    || tw.read_set().iter().any(|&x| !set.wceil(x).cleared_by(p_l))
            });
            if reachable {
                members.insert(w);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    members.into_iter().collect()
}

/// Worst-case blocking of `txn` under the repaired PCP-DA: the sum of the
/// execution times over [`chain_set`] (each chain member executes at most
/// once per blocking episode, and Theorem 1 still limits `T_i` to one
/// episode per direct blocker).
pub fn repaired_worst_blocking(set: &TransactionSet, txn: TxnId) -> Duration {
    chain_set(set, txn)
        .into_iter()
        .map(|id| set.template(id).wcet())
        .sum()
}

/// [`repaired_worst_blocking`] for every template, indexed by `TxnId`.
pub fn repaired_blocking_terms(set: &TransactionSet) -> Vec<Duration> {
    set.templates()
        .iter()
        .map(|t| repaired_worst_blocking(set, t.id))
        .collect()
}

/// CCP's shortened worst-case blocking of `txn` by one lower-priority
/// template `blocker` — the paper's §2 claim that CCP "reduces the worst
/// case blocking time for some high priority transactions", made
/// concrete against this repository's (lock-point) CCP:
///
/// a blocker stops obstructing `txn` the moment it has *early-released*
/// every item whose `Aceil ≥ P_i`. Walking the blocker's program with the
/// same release rule CCP uses (all locks acquired, item not needed again,
/// remaining ceilings strictly lower), the blocking duration is the
/// prefix length until that release point; if the rule never fires, the
/// whole WCET blocks, exactly like PCP.
pub fn ccp_blocking_of(set: &TransactionSet, blocker: TxnId, txn: TxnId) -> Duration {
    use rtdb_types::Operation;
    let p_i = set.priority_of(txn);
    let t = set.template(blocker);
    let steps = &t.steps;

    // Which prefix still holds a >= P_i ceiling item after step k?
    // Track, per completed step index, the set of items still locked
    // under CCP's rule.
    let mut elapsed = Duration::ZERO;
    let mut held: std::collections::BTreeSet<rtdb_types::ItemId> = Default::default();
    let mut read_locked: std::collections::BTreeSet<rtdb_types::ItemId> = Default::default();
    let mut write_locked: std::collections::BTreeSet<rtdb_types::ItemId> = Default::default();
    // Blocking lasts from the first acquisition of a >=P_i-ceiling item
    // (locks are taken at step start) to the release point.
    let mut first_acquire: Option<Duration> = None;
    let mut release_at: Option<Duration> = None;

    for (k, step) in steps.iter().enumerate() {
        match step.op {
            Operation::Read(item) | Operation::Write(item)
                if first_acquire.is_none() && !set.aceil(item).cleared_by(p_i) =>
            {
                first_acquire = Some(elapsed);
            }
            _ => {}
        }
        match step.op {
            Operation::Read(item) => {
                held.insert(item);
                read_locked.insert(item);
            }
            Operation::Write(item) => {
                held.insert(item);
                write_locked.insert(item);
            }
            Operation::Compute => {}
        }
        elapsed += step.duration;

        let remaining = &steps[k + 1..];
        // Lock point: every remaining access is covered by an
        // already-held lock of a sufficient mode (a write lock covers
        // reads of the same item).
        let at_lock_point = remaining.iter().all(|s| match s.op {
            Operation::Compute => true,
            Operation::Read(x) => read_locked.contains(&x) || write_locked.contains(&x),
            Operation::Write(x) => write_locked.contains(&x),
        });
        if at_lock_point {
            let future_ceiling = remaining
                .iter()
                .filter_map(|s| s.op.item())
                .map(|x| set.aceil(x))
                .max()
                .unwrap_or(rtdb_types::Ceiling::Dummy);
            let no_future_data = remaining.iter().all(|s| matches!(s.op, Operation::Compute));
            held.retain(|&x| {
                let needed = remaining.iter().any(|s| s.op.item() == Some(x));
                let releasable = !needed && (set.aceil(x) > future_ceiling || no_future_data);
                !releasable
            });
        }
        // Once no held item can block txn (measured only after the first
        // relevant acquisition), the obstruction ends here.
        if first_acquire.is_some() && release_at.is_none() {
            let still_blocks = held.iter().any(|&x| !set.aceil(x).cleared_by(p_i));
            if !still_blocks {
                release_at = Some(elapsed);
            }
        }
    }
    let Some(start) = first_acquire else {
        return Duration::ZERO; // never holds a relevant item
    };
    release_at.unwrap_or_else(|| t.wcet()) - start
}

/// CCP's `B_i`: the largest [`ccp_blocking_of`] over `BTS_i` (the PCP
/// blocking set — CCP keeps PCP's ceiling discipline, so the *set* of
/// possible blockers is unchanged; only the duration shrinks).
pub fn ccp_worst_blocking(set: &TransactionSet, txn: TxnId) -> Duration {
    bts(set, AnalysisProtocol::Pcp, txn)
        .into_iter()
        .map(|id| ccp_blocking_of(set, id, txn))
        .max()
        .unwrap_or(Duration::ZERO)
}

/// [`ccp_worst_blocking`] for every template, indexed by `TxnId`.
pub fn ccp_blocking_terms(set: &TransactionSet) -> Vec<Duration> {
    set.templates()
        .iter()
        .map(|t| ccp_worst_blocking(set, t.id))
        .collect()
}

/// Convenience used by reports: which lock modes of a template can block
/// `txn` under the protocol (for explanatory output).
pub fn blocking_modes(
    set: &TransactionSet,
    protocol: AnalysisProtocol,
    blocker: TxnId,
    txn: TxnId,
) -> Vec<LockMode> {
    let p_i = set.priority_of(txn);
    let t = set.template(blocker);
    let mut modes = Vec::new();
    let reads_block = t.read_set().iter().any(|&x| !set.wceil(x).cleared_by(p_i));
    let writes_block = t.write_set().iter().any(|&x| !set.aceil(x).cleared_by(p_i));
    match protocol {
        AnalysisProtocol::PcpDa => {
            if reads_block {
                modes.push(LockMode::Read);
            }
        }
        AnalysisProtocol::RwPcp => {
            if reads_block {
                modes.push(LockMode::Read);
            }
            if writes_block {
                modes.push(LockMode::Write);
            }
        }
        AnalysisProtocol::Pcp => {
            let any = t
                .access_set()
                .iter()
                .any(|&x| !set.aceil(x).cleared_by(p_i));
            if any {
                modes.push(LockMode::Read);
                modes.push(LockMode::Write);
            }
        }
    }
    modes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate};

    /// Example 3: T1 reads x,y; T2 writes x,y.
    fn example3() -> TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                5,
                vec![Step::read(ItemId(0), 1), Step::read(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![
                    Step::write(ItemId(0), 1),
                    Step::compute(2),
                    Step::write(ItemId(1), 1),
                    Step::compute(1),
                ],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn example3_bts_shrinks_under_pcpda() {
        let set = example3();
        let t1 = TxnId(0);
        // Under RW-PCP, T2 (writer of x with Aceil(x) = P1) blocks T1.
        assert_eq!(bts(&set, AnalysisProtocol::RwPcp, t1), vec![TxnId(1)]);
        assert_eq!(
            worst_blocking(&set, AnalysisProtocol::RwPcp, t1),
            Duration(5)
        );
        // Under PCP-DA, T2 only writes — it can never block T1.
        assert!(bts(&set, AnalysisProtocol::PcpDa, t1).is_empty());
        assert_eq!(
            worst_blocking(&set, AnalysisProtocol::PcpDa, t1),
            Duration::ZERO
        );
    }

    #[test]
    fn readers_block_under_both() {
        // L reads x which H writes: Wceil(x) = P_H >= P_H, so L ∈ BTS_H
        // under both protocols.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                10,
                vec![Step::write(ItemId(0), 2)],
            ))
            .with(TransactionTemplate::new(
                "L",
                20,
                vec![Step::read(ItemId(0), 3)],
            ))
            .build()
            .unwrap();
        let h = TxnId(0);
        for p in [AnalysisProtocol::PcpDa, AnalysisProtocol::RwPcp] {
            assert_eq!(bts(&set, p, h), vec![TxnId(1)], "{}", p.name());
            assert_eq!(worst_blocking(&set, p, h), Duration(3));
        }
    }

    #[test]
    fn lowest_priority_transaction_is_never_blocked() {
        let set = example3();
        let lowest = TxnId(1);
        for p in AnalysisProtocol::all() {
            assert!(bts(&set, p, lowest).is_empty(), "{}", p.name());
        }
    }

    #[test]
    fn pcpda_bts_is_subset_of_rwpcp() {
        // Structural property on a mixed workload.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                10,
                vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                20,
                vec![Step::read(ItemId(1), 2), Step::write(ItemId(2), 1)],
            ))
            .with(TransactionTemplate::new(
                "C",
                40,
                vec![Step::write(ItemId(0), 2), Step::read(ItemId(2), 2)],
            ))
            .build()
            .unwrap();
        for t in set.templates() {
            let da: std::collections::BTreeSet<TxnId> = bts(&set, AnalysisProtocol::PcpDa, t.id)
                .into_iter()
                .collect();
            let rw: std::collections::BTreeSet<TxnId> = bts(&set, AnalysisProtocol::RwPcp, t.id)
                .into_iter()
                .collect();
            assert!(da.is_subset(&rw), "BTS_{:?} not a subset", t.id);
            assert!(
                worst_blocking(&set, AnalysisProtocol::PcpDa, t.id)
                    <= worst_blocking(&set, AnalysisProtocol::RwPcp, t.id)
            );
        }
    }

    #[test]
    fn chain_set_contains_bts_and_grows_through_shared_items() {
        // T1 (high) reads z; T5 (lowest) reads z (in BTS_1); T2 (mid)
        // writes an item T5 reads -> T5 can D-wait on T2 -> T2 joins the
        // chain although it never blocks T1 directly under PCP-DA.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                40,
                vec![Step::write(ItemId(2), 2)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                80,
                vec![Step::write(ItemId(0), 5), Step::compute(5)],
            ))
            .with(TransactionTemplate::new(
                "T5",
                160,
                vec![Step::read(ItemId(2), 5), Step::read(ItemId(0), 5)],
            ))
            .build()
            .unwrap();
        let t1 = TxnId(0);
        let bts: std::collections::BTreeSet<TxnId> =
            bts(&set, AnalysisProtocol::PcpDa, t1).into_iter().collect();
        assert!(bts.contains(&TxnId(2)), "T5 reads z with Wceil(z)=P1");
        assert!(!bts.contains(&TxnId(1)), "T2 only writes -> not in BTS");

        let chain: std::collections::BTreeSet<TxnId> = chain_set(&set, t1).into_iter().collect();
        assert!(chain.contains(&TxnId(2)));
        assert!(
            chain.contains(&TxnId(1)),
            "T2 reachable through T5's read of x"
        );

        // The repaired bound sums the chain.
        assert_eq!(
            repaired_worst_blocking(&set, t1),
            set.template(TxnId(1)).wcet() + set.template(TxnId(2)).wcet()
        );
    }

    #[test]
    fn repaired_bound_dominates_paper_bound() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "A",
                20,
                vec![Step::write(ItemId(0), 1), Step::read(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "B",
                40,
                vec![Step::read(ItemId(0), 2), Step::write(ItemId(2), 1)],
            ))
            .with(TransactionTemplate::new(
                "C",
                80,
                vec![Step::read(ItemId(2), 3), Step::read(ItemId(1), 1)],
            ))
            .build()
            .unwrap();
        for t in set.templates() {
            assert!(
                repaired_worst_blocking(&set, t.id)
                    >= worst_blocking(&set, AnalysisProtocol::PcpDa, t.id),
                "{:?}",
                t.id
            );
        }
        // Lowest-priority template is never blocked under either bound.
        assert_eq!(repaired_worst_blocking(&set, TxnId(2)), Duration::ZERO);
    }

    #[test]
    fn ccp_blocking_shortens_when_high_item_is_released_early() {
        // L: R(hot) then long low-ceiling tail. `hot` is touched by H, so
        // Aceil(hot) = P_H; under PCP, L blocks H for its whole WCET; under
        // CCP, hot is released right after the (single-step lock point).
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                50,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "L",
                100,
                vec![Step::read(ItemId(0), 2), Step::compute(8)],
            ))
            .build()
            .unwrap();
        let h = TxnId(0);
        assert_eq!(worst_blocking(&set, AnalysisProtocol::Pcp, h), Duration(10));
        assert_eq!(ccp_worst_blocking(&set, h), Duration(2));
    }

    #[test]
    fn ccp_blocking_is_the_hold_duration() {
        // L acquires the hot item late: blocking spans only the hold
        // (from acquisition to commit), not L's whole WCET.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                50,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "L",
                100,
                vec![Step::compute(8), Step::read(ItemId(0), 2)],
            ))
            .build()
            .unwrap();
        let h = TxnId(0);
        assert_eq!(ccp_worst_blocking(&set, h), Duration(2));
        // The paper-style PCP bound charges the whole WCET.
        assert_eq!(worst_blocking(&set, AnalysisProtocol::Pcp, h), Duration(10));
    }

    #[test]
    fn ccp_blocking_respects_mode_aware_lock_point() {
        // L reads x then writes x later: the read does NOT reach the lock
        // point (the write lock is still to come), so no early release
        // until after the write step.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "H",
                50,
                vec![Step::read(ItemId(0), 1)],
            ))
            .with(TransactionTemplate::new(
                "L",
                100,
                vec![
                    Step::read(ItemId(0), 2),
                    Step::compute(5),
                    Step::write(ItemId(0), 1),
                    Step::compute(2),
                ],
            ))
            .build()
            .unwrap();
        let h = TxnId(0);
        // Release happens after the write step (elapsed 8), not after the
        // read (elapsed 2).
        assert_eq!(ccp_worst_blocking(&set, h), Duration(8));
    }

    #[test]
    fn ccp_bound_never_exceeds_pcp_bound() {
        for seed_shape in 0..4u32 {
            // A few structured shapes rather than RNG (analysis crate has
            // no rand dependency): rotate which step touches the hot item.
            let hot = ItemId(0);
            let mut steps = vec![
                Step::compute(2),
                Step::compute(3),
                Step::compute(2),
                Step::compute(1),
            ];
            steps[seed_shape as usize] = Step::read(hot, 2);
            let set = SetBuilder::new()
                .with(TransactionTemplate::new("H", 50, vec![Step::write(hot, 1)]))
                .with(TransactionTemplate::new("L", 100, steps))
                .build()
                .unwrap();
            let h = TxnId(0);
            assert!(
                ccp_worst_blocking(&set, h) <= worst_blocking(&set, AnalysisProtocol::Pcp, h),
                "shape {seed_shape}"
            );
        }
    }

    #[test]
    fn blocking_modes_explain_membership() {
        let set = example3();
        let modes = blocking_modes(&set, AnalysisProtocol::RwPcp, TxnId(1), TxnId(0));
        assert_eq!(modes, vec![LockMode::Write]);
        let modes = blocking_modes(&set, AnalysisProtocol::PcpDa, TxnId(1), TxnId(0));
        assert!(modes.is_empty());
    }
}
