//! Rate-monotonic admission tests with blocking.

use crate::blocking::{blocking_terms, AnalysisProtocol};
use rtdb_types::{Duration, TransactionSet, TxnId};

/// The Liu–Layland bound `n(2^{1/n} − 1)`.
pub fn liu_layland_bound(n: usize) -> f64 {
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Per-transaction Liu–Layland test with blocking (the schedulability
/// condition the paper quotes in §9): transaction `i` (1-based rank in
/// descending priority order) passes iff
/// `Σ_{j≤i} C_j/Pd_j + B_i/Pd_i ≤ i (2^{1/i} − 1)`.
///
/// `blocking[k]` is `B` of template `TxnId(k)`. Returns pass/fail per
/// template, indexed by `TxnId`.
pub fn liu_layland_with_blocking(set: &TransactionSet, blocking: &[Duration]) -> Vec<bool> {
    let order = set.by_descending_priority();
    let mut pass = vec![false; set.len()];
    let mut util_sum = 0.0;
    for (rank0, &id) in order.iter().enumerate() {
        let t = set.template(id);
        util_sum += t.utilization();
        let b = blocking[id.index()].raw() as f64 / t.period.raw() as f64;
        pass[id.index()] = util_sum + b <= liu_layland_bound(rank0 + 1) + 1e-12;
    }
    pass
}

/// Exact response-time analysis with blocking: iterate
/// `R_i = C_i + B_i + Σ_{j<i} ⌈R_i/Pd_j⌉ C_j` to a fixpoint. Returns the
/// response time per template (indexed by `TxnId`), or `None` where the
/// iteration diverges past the period (unschedulable).
pub fn response_times(set: &TransactionSet, blocking: &[Duration]) -> Vec<Option<Duration>> {
    response_times_f64(
        &tasks_of(set),
        &blocking.iter().map(|b| b.raw() as f64).collect::<Vec<_>>(),
    )
    .into_iter()
    .map(|r| r.map(|v| Duration(v.ceil() as u64)))
    .collect()
}

/// A task for the floating-point analysis core (used by breakdown search,
/// where execution times are scaled by non-integral factors).
#[derive(Clone, Copy, Debug)]
pub struct AnalysisTask {
    /// Execution time.
    pub c: f64,
    /// Period (= relative deadline).
    pub period: f64,
    /// Priority rank: 0 = highest.
    pub rank: usize,
}

pub(crate) fn tasks_of(set: &TransactionSet) -> Vec<AnalysisTask> {
    let order = set.by_descending_priority();
    let mut tasks = vec![
        AnalysisTask {
            c: 0.0,
            period: 0.0,
            rank: 0
        };
        set.len()
    ];
    for (rank, &id) in order.iter().enumerate() {
        let t = set.template(id);
        tasks[id.index()] = AnalysisTask {
            c: t.wcet().raw() as f64,
            period: t.period.raw() as f64,
            rank,
        };
    }
    tasks
}

/// Floating-point response-time analysis. `tasks[k]`/`blocking[k]` belong
/// to template `TxnId(k)`.
pub(crate) fn response_times_f64(tasks: &[AnalysisTask], blocking: &[f64]) -> Vec<Option<f64>> {
    let mut by_rank: Vec<usize> = (0..tasks.len()).collect();
    by_rank.sort_by_key(|&k| tasks[k].rank);

    let mut out = vec![None; tasks.len()];
    for (pos, &k) in by_rank.iter().enumerate() {
        let t = tasks[k];
        let mut r = t.c + blocking[k];
        let result = loop {
            let interference: f64 = by_rank[..pos]
                .iter()
                .map(|&j| (r / tasks[j].period).ceil() * tasks[j].c)
                .sum();
            let next = t.c + blocking[k] + interference;
            if next > t.period + 1e-9 {
                break None; // diverged past the deadline
            }
            if (next - r).abs() < 1e-9 {
                break Some(next);
            }
            r = next;
        };
        out[k] = result;
    }
    out
}

/// Full admission report for a set under one protocol's blocking formula.
#[derive(Clone, Debug)]
pub struct SchedReport {
    /// Protocol analysed.
    pub protocol: AnalysisProtocol,
    /// `B_i` per template.
    pub blocking: Vec<Duration>,
    /// Liu–Layland pass per template.
    pub liu_layland: Vec<bool>,
    /// Response time per template (`None` = unschedulable).
    pub response: Vec<Option<Duration>>,
}

impl SchedReport {
    /// Whole set passes the (sufficient) Liu–Layland condition.
    pub fn liu_layland_schedulable(&self) -> bool {
        self.liu_layland.iter().all(|&b| b)
    }

    /// Whole set passes exact response-time analysis.
    pub fn rta_schedulable(&self) -> bool {
        self.response.iter().all(|r| r.is_some())
    }

    /// Response time of one template.
    pub fn response_of(&self, id: TxnId) -> Option<Duration> {
        self.response[id.index()]
    }
}

/// Run both admission tests for `set` under `protocol`.
pub fn schedulable(set: &TransactionSet, protocol: AnalysisProtocol) -> SchedReport {
    let blocking = blocking_terms(set, protocol);
    schedulable_with_blocking(set, protocol, blocking)
}

/// Run both admission tests with explicit blocking terms.
pub fn schedulable_with_blocking(
    set: &TransactionSet,
    protocol: AnalysisProtocol,
    blocking: Vec<Duration>,
) -> SchedReport {
    let liu_layland = liu_layland_with_blocking(set, &blocking);
    let response = response_times(set, &blocking);
    SchedReport {
        protocol,
        blocking,
        liu_layland,
        response,
    }
}

/// Admission test for the **repaired** PCP-DA (`PcpDa::new`), using the
/// chain-closure blocking bound of
/// [`crate::blocking::repaired_blocking_terms`] — sound for the protocol
/// with erratum clauses (A)–(D), at the price of pessimism relative to
/// the paper's (unsound for its printed rules) single-`C_L` bound.
pub fn schedulable_repaired_pcpda(set: &TransactionSet) -> SchedReport {
    schedulable_with_blocking(
        set,
        AnalysisProtocol::PcpDa,
        crate::blocking::repaired_blocking_terms(set),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate};

    #[test]
    fn liu_layland_bound_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284271247461903).abs() < 1e-12);
        // n -> ln 2 as n grows.
        assert!((liu_layland_bound(1000) - std::f64::consts::LN_2).abs() < 1e-3);
    }

    /// Example 3 as the paper tells it: under RW-PCP, T1 (C=2, Pd=5) with
    /// B=4 fails; under PCP-DA, B=0 passes.
    #[test]
    fn example3_schedulability_flips_between_protocols() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new(
                "T1",
                5,
                vec![Step::read(ItemId(0), 1), Step::read(ItemId(1), 1)],
            ))
            .with(TransactionTemplate::new(
                "T2",
                10,
                vec![
                    Step::write(ItemId(0), 1),
                    Step::compute(2),
                    Step::write(ItemId(1), 1),
                    Step::compute(1),
                ],
            ))
            .build()
            .unwrap();

        let da = schedulable(&set, AnalysisProtocol::PcpDa);
        assert_eq!(da.blocking, vec![Duration(0), Duration(0)]);
        assert!(da.rta_schedulable());
        // T1: R = 2 <= 5; T2: R = 5 + interference(1 release of T1 in 5:
        // ceil(9/5)*2=4 -> R=9 <= 10).
        assert_eq!(da.response_of(TxnId(0)), Some(Duration(2)));
        assert_eq!(da.response_of(TxnId(1)), Some(Duration(9)));

        let rw = schedulable(&set, AnalysisProtocol::RwPcp);
        assert_eq!(rw.blocking[0], Duration(5)); // B_1 = C_2 = 5
                                                 // T1: R = 2 + 5 = 7 > 5 -> unschedulable.
        assert_eq!(rw.response_of(TxnId(0)), None);
        assert!(!rw.rta_schedulable());
        assert!(!rw.liu_layland_schedulable());
    }

    #[test]
    fn response_times_account_for_interference() {
        // Independent tasks (no data): classical RTA.
        let set = SetBuilder::new()
            .with(TransactionTemplate::new("A", 10, vec![Step::compute(3)]))
            .with(TransactionTemplate::new("B", 20, vec![Step::compute(6)]))
            .build()
            .unwrap();
        let r = response_times(&set, &[Duration::ZERO, Duration::ZERO]);
        assert_eq!(r[0], Some(Duration(3)));
        // B: 6 + ceil(R/10)*3 -> R=9? 6+3=9; ceil(9/10)=1 -> 9 stable.
        assert_eq!(r[1], Some(Duration(9)));
    }

    #[test]
    fn overloaded_set_is_unschedulable() {
        let set = SetBuilder::new()
            .with(TransactionTemplate::new("A", 10, vec![Step::compute(6)]))
            .with(TransactionTemplate::new("B", 10, vec![Step::compute(6)]))
            .build()
            .unwrap();
        let r = response_times(&set, &[Duration::ZERO, Duration::ZERO]);
        assert_eq!(r[0], Some(Duration(6)));
        assert_eq!(r[1], None);
    }

    #[test]
    fn liu_layland_is_conservative_wrt_rta() {
        // A set that passes LL must pass RTA (LL is sufficient).
        let set = SetBuilder::new()
            .with(TransactionTemplate::new("A", 10, vec![Step::compute(2)]))
            .with(TransactionTemplate::new("B", 20, vec![Step::compute(4)]))
            .with(TransactionTemplate::new("C", 40, vec![Step::compute(8)]))
            .build()
            .unwrap();
        let b = vec![Duration::ZERO; 3];
        let ll = liu_layland_with_blocking(&set, &b);
        assert!(ll.iter().all(|&x| x));
        assert!(response_times(&set, &b).iter().all(|r| r.is_some()));
    }
}
