//! Worst-case schedulability analysis for priority ceiling protocols
//! (paper §9).
//!
//! The paper's analysis rests on the single-blocking property: under
//! PCP-DA (and RW-PCP) a transaction `T_i` can be blocked by at most one
//! lower-priority transaction, so its worst-case blocking time `B_i` is the
//! largest execution time among the transactions in its *blocking
//! transaction set* `BTS_i`:
//!
//! * **PCP-DA**: `BTS_i = { T_L | P_L < P_i ∧ T_L reads x ∧ Wceil(x) ≥ P_i }`
//!   — only *read* operations of lower-priority transactions can block,
//!   because write locks raise no ceiling;
//! * **RW-PCP**: additionally `T_L writes x ∧ Aceil(x) ≥ P_i` — a strict
//!   superset, which is the paper's headline analytical result: `B_i`
//!   under PCP-DA is never larger, and often smaller, than under RW-PCP;
//! * **PCP / CCP**: any access to `x` with `Aceil(x) ≥ P_i` (CCP shortens
//!   the blocking *duration* via early unlock but not the set; we use the
//!   conservative PCP set for both).
//!
//! With `B_i` in hand, two admission tests are provided:
//!
//! * the Liu–Layland utilization bound with blocking (the condition the
//!   paper quotes): for every `i`,
//!   `C_1/Pd_1 + … + C_i/Pd_i + B_i/Pd_i ≤ i(2^{1/i} − 1)`;
//! * exact response-time analysis (sufficient and necessary for this task
//!   model): `R_i = C_i + B_i + Σ_{j<i} ⌈R_i/Pd_j⌉ C_j` iterated to a
//!   fixpoint, schedulable iff `R_i ≤ Pd_i`.
//!
//! [`breakdown_utilization`] scales every execution time by a common
//! factor and binary-searches the largest total utilization at which the
//! set remains schedulable — the classical way to compare protocols'
//! schedulability conditions (experiment E11).

#![forbid(unsafe_code)]

pub mod blocking;
pub mod breakdown;
pub mod rm;

pub use blocking::{
    blocking_terms, bts, ccp_blocking_terms, ccp_worst_blocking, chain_set,
    repaired_blocking_terms, repaired_worst_blocking, worst_blocking, AnalysisProtocol,
};
pub use breakdown::breakdown_utilization;
pub use rm::{
    liu_layland_bound, liu_layland_with_blocking, response_times, schedulable,
    schedulable_repaired_pcpda, schedulable_with_blocking, SchedReport,
};
