//! Snapshot read path validation: zero-lock execution for read-only
//! jobs, snapshot-aware serializability for every protocol kind under
//! both lock managers, sim-differential agreement with the path enabled,
//! and memory-flatness of the epoch-GC'd version chains under a soak.

use rtdb_core::ProtocolKind;
use rtdb_rt::{run, run_jobs, ManagerKind, RtConfig};
use rtdb_sim::{
    snapshot_serializability_violations, Engine, RunOutcome, SimConfig, WorkloadParams,
};
use rtdb_types::{InstanceId, SetBuilder, TransactionSet};

/// A read-heavy contended workload: the first `read_only` of `templates`
/// templates are pure readers; the rest write under Zipfian skew.
fn read_heavy_workload(seed: u64, templates: usize, read_only: usize) -> TransactionSet {
    WorkloadParams {
        templates,
        items: 12,
        target_utilization: 0.5,
        hotspot_items: 0,
        hotspot_prob: 0.0,
        zipf_theta: Some(0.6),
        read_only_templates: read_only,
        write_fraction: 0.7,
        seed,
        ..WorkloadParams::default()
    }
    .generate()
    .expect("workload generation")
    .set
}

/// The same workload bounded to two instances per template, so an
/// unhorizoned sim run completes (the sim-differential test needs it).
fn bounded(set: &TransactionSet) -> TransactionSet {
    let mut b = SetBuilder::new();
    for t in set.templates() {
        let mut t = t.clone();
        t.instances = Some(2);
        b.add(t);
    }
    b.build_rate_monotonic().expect("rebuild")
}

#[test]
fn read_only_workload_takes_zero_locks() {
    // Every template is read-only, so with the snapshot path on the lock
    // table must never transition — not one grant, release or conversion.
    let set = read_heavy_workload(0x51AB, 5, 5);
    for manager in ManagerKind::ALL {
        let config = RtConfig::new(ProtocolKind::PcpDa)
            .with_manager(manager)
            .with_threads(4)
            .with_snapshot_reads(true);
        let rt = run_jobs(&set, 200, 7, config);
        assert!(rt.snapshot_reads, "{manager}: path should be active");
        assert_eq!(rt.committed, 200, "{manager}: dropped jobs");
        assert_eq!(rt.snapshots, 200, "{manager}: jobs leaked onto locks");
        assert_eq!(
            rt.lock_transitions, 0,
            "{manager}: read-only workload touched the lock table"
        );
        assert_eq!(rt.restarts, 0, "{manager}: snapshot readers never abort");
        // Every read resolves at stamp 0 (no writers ever sealed).
        assert!(rt.jobs.iter().all(|j| j.snapshot == Some(0)));

        // Control: the same workload through the lock managers does
        // transition the lock table.
        let off = run_jobs(&set, 200, 7, config.with_snapshot_reads(false));
        assert!(!off.snapshot_reads);
        assert_eq!(off.snapshots, 0);
        assert!(off.lock_transitions > 0, "{manager}: control took no locks");
    }
}

#[test]
fn snapshot_runs_are_serializable_for_all_kinds_and_managers() {
    let set = read_heavy_workload(0x5EED, 6, 3);
    for manager in ManagerKind::ALL {
        for kind in ProtocolKind::ALL {
            let config = RtConfig::new(kind)
                .with_manager(manager)
                .with_threads(4)
                .with_snapshot_reads(true);
            let rt = run_jobs(&set, 240, 11, config);
            assert_eq!(rt.committed, 240, "{manager}/{kind:?}: dropped jobs");
            assert_eq!(
                rt.snapshot_reads,
                kind.snapshot_exempt(),
                "{manager}/{kind:?}: exemption gate disagrees with the registry"
            );
            if kind.snapshot_exempt() {
                assert!(rt.snapshots > 0, "{manager}/{kind:?}: no snapshot commits");
                assert_eq!(
                    rt.snapshot_stamps().len() as u64,
                    rt.snapshots,
                    "{manager}/{kind:?}: stamps out of step with reader commits"
                );
            } else {
                // CCP's early installs disqualify it: its read-only jobs
                // keep taking locks and the run behaves as before.
                assert_eq!(rt.snapshots, 0, "{manager}/{kind:?}: CCP must decline");
            }
            let commit_order_serialization = kind != ProtocolKind::Ccp;
            let violations = snapshot_serializability_violations(
                &set,
                &rt.history,
                &rt.db,
                commit_order_serialization,
                &rt.snapshot_stamps(),
            );
            assert!(violations.is_empty(), "{manager}/{kind:?}: {violations:?}");
        }
    }
}

#[test]
fn single_thread_replay_with_snapshots_matches_sim() {
    for manager in ManagerKind::ALL {
        for kind in ProtocolKind::ALL {
            let set = bounded(&read_heavy_workload(0xD1FF + kind as u64, 4, 2));
            let mut sim_config = SimConfig::default().with_snapshot_reads();
            if kind.may_deadlock() {
                sim_config = sim_config.resolving_deadlocks();
            }
            let sim = Engine::new(&set, sim_config)
                .run_kind(kind)
                .expect("sim run");
            assert_eq!(sim.outcome, RunOutcome::Completed, "{kind:?} sim stalled");
            let jobs: Vec<InstanceId> = if kind == ProtocolKind::Ccp {
                sim.serialization_graph()
                    .topological_order()
                    .expect("sim history is acyclic")
            } else {
                sim.history.commit_order().to_vec()
            };
            let rt = run(
                &set,
                &jobs,
                RtConfig::new(kind)
                    .with_threads(1)
                    .with_manager(manager)
                    .with_snapshot_reads(true)
                    .without_backoff(),
            );
            assert_eq!(rt.committed, jobs.len() as u64, "{manager}/{kind:?}");
            assert_eq!(
                rt.db.snapshot(),
                sim.db.snapshot(),
                "{manager}/{kind:?}: final database diverged from the simulator"
            );
            let violations = snapshot_serializability_violations(
                &set,
                &rt.history,
                &rt.db,
                true,
                &rt.snapshot_stamps(),
            );
            assert!(violations.is_empty(), "{manager}/{kind:?}: {violations:?}");
        }
    }
}

#[test]
fn snapshot_soak_stays_memory_flat() {
    // Writers continuously republish two hot items while readers pin and
    // release snapshots; the epoch GC must keep every chain bounded by
    // the sweep interval, far below the total number of sealed commits.
    let set = read_heavy_workload(0xF10A, 6, 4);
    let config = RtConfig::new(ProtocolKind::PcpDa)
        .with_threads(4)
        .with_snapshot_reads(true);
    let rt = run_jobs(&set, 6_000, 23, config);
    assert_eq!(rt.committed, 6_000);
    let sealed = rt.committed - rt.snapshots;
    assert!(sealed > 1_000, "soak sealed only {sealed} commits");
    assert!(rt.mv_high_water > 0, "writers never published");
    assert!(
        rt.mv_high_water <= 600,
        "version chains grew unbounded: high water {} across {sealed} commits",
        rt.mv_high_water
    );
}
