//! Validation of the sharded lock-manager architecture.
//!
//! The unsharded mutex manager is the repo's runtime oracle; these tests
//! require sharded runs (1, 2 and 4 shards, both manager kinds, every
//! shardable protocol) to produce serializable histories and — for
//! serial executions — the identical final database the oracle produces.
//! Shard isolation is asserted through the per-shard state-lock
//! acquisition counters: a workload whose items all live in one shard
//! must leave every other shard's counter at zero.

use rtdb_core::{ProtocolKind, ShardRouter};
use rtdb_rt::{job_list, run, ManagerKind, RtConfig};
use rtdb_sim::{serializability_violations, Engine, RunOutcome, SimConfig, WorkloadParams};
use rtdb_types::{
    InstanceId, ItemId, SetBuilder, Step, TransactionSet, TransactionTemplate, TxnId,
};
use rtdb_util::prop;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn shardable_kinds() -> impl Iterator<Item = ProtocolKind> {
    ProtocolKind::ALL.into_iter().filter(|k| k.shardable())
}

/// A contended workload over enough items that 4 shards all own some.
fn workload(seed: u64) -> TransactionSet {
    WorkloadParams {
        templates: 4,
        items: 12,
        target_utilization: 0.5,
        hotspot_items: 3,
        hotspot_prob: 0.6,
        seed,
        ..WorkloadParams::default()
    }
    .generate()
    .expect("workload generation")
    .set
}

/// Serial (1-thread) sharded runs are real serial executions, so every
/// shard count and manager kind must land on the byte-identical final
/// database the unsharded mutex oracle produces — and pass the
/// serializability oracle along the way.
#[test]
fn serial_sharded_runs_match_the_unsharded_oracle() {
    for kind in shardable_kinds() {
        let set = workload(0x5A4D + kind as u64);
        let jobs = job_list(&set, 24, 13);
        let oracle = run(&set, &jobs, RtConfig::new(kind).with_threads(1));
        assert_eq!(oracle.committed, jobs.len() as u64);
        let expected = oracle.db.snapshot();

        for manager in ManagerKind::ALL {
            for shards in SHARD_COUNTS {
                let rt = run(
                    &set,
                    &jobs,
                    RtConfig::new(kind)
                        .with_threads(1)
                        .with_manager(manager)
                        .with_shards(shards)
                        .without_backoff(),
                );
                assert_eq!(
                    rt.committed,
                    jobs.len() as u64,
                    "{manager}/{kind:?}/{shards} shards: dropped jobs"
                );
                assert_eq!(rt.shards, shards);
                assert_eq!(
                    rt.db.snapshot(),
                    expected,
                    "{manager}/{kind:?}/{shards} shards: final db diverged from oracle"
                );
                let violations = serializability_violations(&set, &rt.history, &rt.db, true);
                assert!(
                    violations.is_empty(),
                    "{manager}/{kind:?}/{shards} shards: {violations:?}"
                );
                // Commit accounting: every commit lands at exactly one
                // home shard.
                assert_eq!(rt.per_shard.len(), shards);
                assert_eq!(
                    rt.per_shard.iter().map(|s| s.commits).sum::<u64>(),
                    rt.committed,
                    "{manager}/{kind:?}/{shards} shards: per-shard commits disagree"
                );
            }
        }
    }
}

/// Multi-threaded sharded runs lose no committed work and stay
/// conflict-serializable for every shardable protocol, both managers,
/// at 2 and 4 shards.
#[test]
fn multithreaded_sharded_runs_are_serializable() {
    for kind in shardable_kinds() {
        for manager in ManagerKind::ALL {
            for shards in [2, 4] {
                let set = workload(0xCAFE + kind as u64);
                let jobs = job_list(&set, 32, 17);
                let rt = run(
                    &set,
                    &jobs,
                    RtConfig::new(kind)
                        .with_threads(4)
                        .with_manager(manager)
                        .with_shards(shards),
                );
                assert_eq!(
                    rt.committed,
                    jobs.len() as u64,
                    "{manager}/{kind:?}/{shards} shards: dropped jobs"
                );
                let violations = serializability_violations(&set, &rt.history, &rt.db, true);
                assert!(
                    violations.is_empty(),
                    "{manager}/{kind:?}/{shards} shards: {violations:?}"
                );
            }
        }
    }
}

/// Seeded random sweep of the sharded differential: serial sharded runs
/// equal the unsharded oracle's database; threaded sharded runs are
/// serializable. One random (kind, manager, shards) point per case keeps
/// the sweep broad and the suite fast.
#[test]
fn sharded_differential_property() {
    let kinds: Vec<ProtocolKind> = shardable_kinds().collect();
    prop::forall(16, |rng| {
        let set = WorkloadParams {
            templates: rng.range_usize(3..6),
            items: rng.range_usize(6..14),
            target_utilization: 0.5,
            hotspot_items: 3,
            hotspot_prob: 0.5 + 0.3 * rng.f64(),
            seed: rng.next_u64(),
            ..WorkloadParams::default()
        }
        .generate()
        .expect("workload generation")
        .set;
        let kind = kinds[rng.range_usize(0..kinds.len())];
        let manager = ManagerKind::ALL[rng.range_usize(0..2)];
        let shards = SHARD_COUNTS[rng.range_usize(0..SHARD_COUNTS.len())];
        let jobs = job_list(&set, 20, rng.next_u64());

        let oracle = run(&set, &jobs, RtConfig::new(kind).with_threads(1));
        let serial = run(
            &set,
            &jobs,
            RtConfig::new(kind)
                .with_threads(1)
                .with_manager(manager)
                .with_shards(shards)
                .without_backoff(),
        );
        assert_eq!(
            serial.db.snapshot(),
            oracle.db.snapshot(),
            "{manager}/{kind:?}/{shards} shards: serial differential diverged"
        );

        let threaded = run(
            &set,
            &jobs,
            RtConfig::new(kind)
                .with_threads(4)
                .with_manager(manager)
                .with_shards(shards),
        );
        assert_eq!(threaded.committed, jobs.len() as u64);
        let violations = serializability_violations(&set, &threaded.history, &threaded.db, true);
        assert!(
            violations.is_empty(),
            "{manager}/{kind:?}/{shards} shards: {violations:?}"
        );
    });
}

/// The shard-isolation acceptance assertion: when every item a workload
/// touches lives in shard 0 (all indices ≡ 0 mod 4), a 4-shard run must
/// never acquire any other shard's state lock, and no transaction is
/// cross-shard.
#[test]
fn single_shard_jobs_never_touch_other_shards() {
    let set = SetBuilder::new()
        .with(TransactionTemplate::new(
            "A",
            10,
            vec![Step::read(ItemId(0), 1), Step::write(ItemId(4), 1)],
        ))
        .with(TransactionTemplate::new(
            "B",
            20,
            vec![Step::read(ItemId(4), 1), Step::write(ItemId(8), 1)],
        ))
        .build()
        .expect("set");
    for manager in ManagerKind::ALL {
        let jobs = job_list(&set, 16, 7);
        let rt = run(
            &set,
            &jobs,
            RtConfig::new(ProtocolKind::PcpDa)
                .with_threads(4)
                .with_manager(manager)
                .with_shards(4),
        );
        assert_eq!(rt.committed, jobs.len() as u64);
        assert_eq!(rt.cross_shard_txns, 0, "{manager}: nothing spans shards");
        assert!(
            rt.per_shard[0].state_lock_acquires > 0,
            "{manager}: shard 0 ran the whole workload"
        );
        for s in &rt.per_shard[1..] {
            assert_eq!(
                s.state_lock_acquires, 0,
                "{manager}: idle shard {} acquired its state lock",
                s.shard
            );
            assert_eq!(s.ops, 0, "{manager}: idle shard {} saw ops", s.shard);
            assert_eq!(s.commits, 0, "{manager}: idle shard {} committed", s.shard);
        }
    }
}

/// Cross-shard transactions are recognized by the router, counted once
/// each, and still commit with a serializable history.
#[test]
fn cross_shard_transactions_commit_and_are_counted() {
    // Items 0 and 1 land in different shards of 2; template "X" spans
    // both, template "S" stays inside shard 0.
    let set = SetBuilder::new()
        .with(TransactionTemplate::new(
            "X",
            10,
            vec![Step::read(ItemId(0), 1), Step::write(ItemId(1), 1)],
        ))
        .with(TransactionTemplate::new(
            "S",
            20,
            vec![Step::write(ItemId(2), 1)],
        ))
        .build()
        .expect("set");
    let router = ShardRouter::new(2);
    assert!(router.shards_of(&set, TxnId(0)).is_cross_shard());
    assert!(!router.shards_of(&set, TxnId(1)).is_cross_shard());

    for manager in ManagerKind::ALL {
        let jobs: Vec<InstanceId> = (0..8)
            .flat_map(|seq| {
                [
                    InstanceId::new(TxnId(0), seq),
                    InstanceId::new(TxnId(1), seq),
                ]
            })
            .collect();
        let rt = run(
            &set,
            &jobs,
            RtConfig::new(ProtocolKind::PcpDa)
                .with_threads(4)
                .with_manager(manager)
                .with_shards(2),
        );
        assert_eq!(rt.committed, jobs.len() as u64, "{manager}: dropped jobs");
        assert_eq!(
            rt.cross_shard_txns, 8,
            "{manager}: every X instance is cross-shard"
        );
        let violations = serializability_violations(&set, &rt.history, &rt.db, true);
        assert!(violations.is_empty(), "{manager}: {violations:?}");
        // Commits home at the lowest touched shard — shard 0 for both
        // templates here — but X's writes to item 1 still route data
        // operations (and state-lock traffic) to shard 1.
        assert_eq!(rt.per_shard[0].commits, rt.committed);
        assert_eq!(rt.per_shard[1].commits, 0);
        assert!(
            rt.per_shard[1].ops > 0,
            "{manager}: item 1 lives in shard 1"
        );
        assert!(rt.per_shard[1].state_lock_acquires > 0);
    }
}

/// Multi-shard replay agreement between the two execution layers: the
/// simulator's multi-shard mode and the runtime's sharded manager, fed
/// the same conflict-free burst (each template confined to its own shard
/// of 4), must land on the identical final database — and the runtime
/// must classify every transaction as single-shard.
#[test]
fn sim_and_rt_sharded_agree_on_a_conflict_free_burst() {
    // Template i writes items {i, i+4}: both ≡ i (mod 4), so template i
    // lives entirely in shard i and no two templates share an item.
    let mut b = SetBuilder::new();
    for i in 0..4u32 {
        b.add(
            TransactionTemplate::new(
                format!("T{i}"),
                10 * (u64::from(i) + 1),
                vec![
                    Step::write(ItemId(i), 1),
                    Step::read(ItemId(i), 1),
                    Step::write(ItemId(i + 4), 1),
                ],
            )
            .with_instances(3),
        );
    }
    let set = b.build_rate_monotonic().expect("set");
    let router = ShardRouter::new(4);
    for txn in 0..4 {
        assert!(!router.shards_of(&set, TxnId(txn)).is_cross_shard());
    }

    for kind in shardable_kinds() {
        let sim = Engine::new(&set, SimConfig::default().with_shards(4))
            .run_kind(kind)
            .expect("sharded sim run");
        assert_eq!(sim.outcome, RunOutcome::Completed, "{kind:?}");
        assert_eq!(sim.shards, 4);
        let jobs = sim.history.commit_order().to_vec();

        for manager in ManagerKind::ALL {
            let rt = run(
                &set,
                &jobs,
                RtConfig::new(kind)
                    .with_threads(1)
                    .with_manager(manager)
                    .with_shards(4),
            );
            assert_eq!(rt.committed, jobs.len() as u64, "{manager}/{kind:?}");
            assert_eq!(rt.cross_shard_txns, 0, "{manager}/{kind:?}");
            assert_eq!(
                rt.db.snapshot(),
                sim.db.snapshot(),
                "{manager}/{kind:?}: sharded sim and rt diverged"
            );
        }
    }
}

/// Non-shardable protocols refuse multi-shard configurations loudly.
#[test]
#[should_panic(expected = "cannot run sharded")]
fn non_shardable_kind_panics_at_two_shards() {
    let set = SetBuilder::new()
        .with(TransactionTemplate::new(
            "A",
            10,
            vec![Step::write(ItemId(0), 1)],
        ))
        .build()
        .expect("set");
    let jobs = job_list(&set, 2, 1);
    let _ = run(&set, &jobs, RtConfig::new(ProtocolKind::Ccp).with_shards(2));
}
