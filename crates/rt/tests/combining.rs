//! Combiner-vs-mutex differential property tests.
//!
//! The mutex manager is the semantic oracle for the flat-combining
//! manager: random contended workloads run through both managers under
//! every protocol at 4–8 threads, and the runs must agree on everything
//! schedule-independent — commit multiplicities per template, install
//! multiplicities per item, conflict-serializability of each history,
//! and (through the admission front door) exact conservation of
//! submissions: committed + shed + rejected == offered.
//!
//! Interleavings are real, so histories are *not* required to match
//! event-for-event; the invariants are the schedule-independent ones the
//! protocols guarantee.

use rtdb_core::ProtocolKind;
use rtdb_rt::{
    job_list, run, run_front, AdmissionPolicy, FrontConfig, JobRequest, ManagerKind, RtConfig,
    RtResult, SubmitOutcome,
};
use rtdb_sim::{serializability_violations, WorkloadParams};
use rtdb_storage::EventKind;
use rtdb_types::{InstanceId, TransactionSet, TxnId};
use rtdb_util::prop;
use std::collections::BTreeMap;

fn random_set(rng: &mut rtdb_util::rng::Rng) -> TransactionSet {
    WorkloadParams {
        templates: rng.range_usize(3..6),
        items: rng.range_usize(6..14),
        target_utilization: 0.5,
        hotspot_items: 3,
        hotspot_prob: 0.5 + 0.3 * rng.f64(),
        seed: rng.next_u64(),
        ..WorkloadParams::default()
    }
    .generate()
    .expect("workload generation")
    .set
}

fn commit_multiplicities(rt: &RtResult) -> BTreeMap<TxnId, u64> {
    let mut commits: BTreeMap<TxnId, u64> = BTreeMap::new();
    for job in &rt.jobs {
        *commits.entry(job.id.txn).or_default() += 1;
    }
    commits
}

fn install_multiplicities(rt: &RtResult) -> BTreeMap<rtdb_types::ItemId, u64> {
    let mut installs: BTreeMap<_, u64> = BTreeMap::new();
    for e in rt.history.events() {
        if let EventKind::Install { item, .. } = e.kind {
            *installs.entry(item).or_default() += 1;
        }
    }
    installs
}

/// Closed loop: the same job list through both managers must commit the
/// same multiset of templates, install the same multiset of items, and
/// produce serializable histories.
#[test]
fn combiner_matches_mutex_on_random_workloads() {
    prop::forall(24, |rng| {
        let set = random_set(rng);
        let kind = ProtocolKind::ALL[rng.bounded(ProtocolKind::ALL.len() as u64) as usize];
        let threads = 4 + rng.bounded(5) as usize; // 4..=8
        let jobs = job_list(&set, 24, rng.next_u64());

        let run_with = |manager: ManagerKind| {
            let rt = run(
                &set,
                &jobs,
                RtConfig::new(kind)
                    .with_threads(threads)
                    .with_manager(manager),
            );
            assert_eq!(
                rt.committed,
                jobs.len() as u64,
                "{manager}/{kind:?} dropped jobs"
            );
            let commit_order_serialization = kind != ProtocolKind::Ccp;
            let violations =
                serializability_violations(&set, &rt.history, &rt.db, commit_order_serialization);
            assert!(violations.is_empty(), "{manager}/{kind:?}: {violations:?}");
            rt
        };

        let mutex = run_with(ManagerKind::Mutex);
        let combining = run_with(ManagerKind::Combining);

        assert_eq!(
            commit_multiplicities(&mutex),
            commit_multiplicities(&combining),
            "{kind:?}@{threads}t: commit multiplicities diverged"
        );
        assert_eq!(
            install_multiplicities(&mutex),
            install_multiplicities(&combining),
            "{kind:?}@{threads}t: install multiplicities diverged"
        );
        assert!(
            combining.combiner.passes > 0,
            "combining run recorded no passes"
        );
        // Every manager call publishes exactly one op: begin + commit per
        // job attempt plus one acquire per lock step, so at minimum
        // 2 × jobs ops must have been combined.
        assert!(
            combining.combiner.ops_combined >= 2 * jobs.len() as u64,
            "implausibly few combined ops: {}",
            combining.combiner.ops_combined
        );
    });
}

/// Open loop: submissions through the admission front door are conserved
/// under both managers — committed + shed + rejected == offered — and
/// deterministic accounting identities hold per job.
#[test]
fn front_door_conserves_submissions_under_both_managers() {
    prop::forall(12, |rng| {
        let set = random_set(rng);
        let kind = if rng.bounded(2) == 0 {
            ProtocolKind::PcpDa
        } else {
            ProtocolKind::TwoPlHp
        };
        let policy = match rng.bounded(3) {
            0 => AdmissionPolicy::Reject,
            1 => AdmissionPolicy::ShedOldest,
            _ => AdmissionPolicy::Block,
        };
        let threads = 4 + rng.bounded(5) as usize;
        let capacity = 1 + rng.bounded(8) as usize;
        let offered: Vec<TxnId> = (0..24)
            .map(|_| TxnId(rng.bounded(set.len() as u64) as u32))
            .collect();

        for manager in ManagerKind::ALL {
            let config = FrontConfig::new(kind)
                .with_policy(policy)
                .with_capacity(capacity)
                .with_rt(
                    RtConfig::new(kind)
                        .with_threads(threads)
                        .with_manager(manager),
                );
            let (rt, ()) = run_front(&set, config, |front| {
                let (sub, _rx) = front.submitter();
                for &txn in &offered {
                    let release = front.elapsed_ns();
                    let out = sub.submit(JobRequest::periodic(&set, txn, release, 1_000));
                    assert!(!matches!(out, SubmitOutcome::Closed));
                }
            });

            assert_eq!(
                rt.committed + rt.shed + rt.rejected,
                offered.len() as u64,
                "{manager}/{policy}/{kind:?}: submissions leaked"
            );
            assert_eq!(rt.jobs.len() as u64, rt.committed);
            let violations = serializability_violations(&set, &rt.history, &rt.db, true);
            assert!(violations.is_empty(), "{manager}/{kind:?}: {violations:?}");
        }
    });
}

/// The combining manager re-grants parked acquires combiner-side; this
/// pins the blocking path specifically: a workload guaranteed to park
/// (every template hammers one item) drains completely and stays
/// serializable at high thread counts.
#[test]
fn single_item_hammer_drains_under_combining() {
    use rtdb_types::{ItemId, SetBuilder, Step, TransactionTemplate};
    let x = ItemId(0);
    let mut b = SetBuilder::new();
    for (name, period) in [("a", 10), ("b", 20), ("c", 40), ("d", 80)] {
        b.add(TransactionTemplate::new(
            name,
            period,
            vec![Step::read(x, 1), Step::write(x, 1)],
        ));
    }
    let set = b.build().expect("set");
    let jobs: Vec<InstanceId> = job_list(&set, 64, 3);
    for kind in [ProtocolKind::PcpDa, ProtocolKind::TwoPlHp] {
        let rt = run(
            &set,
            &jobs,
            RtConfig::new(kind)
                .with_threads(8)
                .with_manager(ManagerKind::Combining),
        );
        assert_eq!(rt.committed, jobs.len() as u64, "{kind:?} dropped jobs");
        let violations = serializability_violations(&set, &rt.history, &rt.db, true);
        assert!(violations.is_empty(), "{kind:?}: {violations:?}");
    }
}
