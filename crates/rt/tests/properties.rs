//! Property tests: runtime histories are conflict-serializable.
//!
//! 32 seeded random workloads through 4 worker threads each, for the
//! paper's protocol (PCP-DA) and the abort-based baseline (2PL-HP, which
//! exercises the wound/restart path). The oracle is the same
//! `serialization_graph()` checker the simulator's battery uses, via the
//! shared `serializability_violations` entry point.

use rtdb_core::ProtocolKind;
use rtdb_rt::{job_list, run, RtConfig};
use rtdb_sim::{serializability_violations, WorkloadParams};
use rtdb_util::prop;

const CASES: usize = 32;

fn check_kind(kind: ProtocolKind) {
    prop::forall(CASES, |rng| {
        let set = WorkloadParams {
            templates: rng.range_usize(3..6),
            items: rng.range_usize(6..14),
            target_utilization: 0.5,
            hotspot_items: 3,
            hotspot_prob: 0.5 + 0.3 * rng.f64(),
            seed: rng.next_u64(),
            ..WorkloadParams::default()
        }
        .generate()
        .expect("workload generation")
        .set;

        let jobs = job_list(&set, 20, rng.next_u64());
        let rt = run(&set, &jobs, RtConfig::new(kind).with_threads(4));
        assert_eq!(rt.committed, jobs.len() as u64, "{kind:?} dropped jobs");
        let violations = serializability_violations(&set, &rt.history, &rt.db, true);
        assert!(violations.is_empty(), "{kind:?}: {violations:?}");
    });
}

#[test]
fn pcp_da_runtime_histories_are_conflict_serializable() {
    check_kind(ProtocolKind::PcpDa);
}

#[test]
fn two_pl_hp_runtime_histories_are_conflict_serializable() {
    check_kind(ProtocolKind::TwoPlHp);
}
