//! Property tests: runtime histories are conflict-serializable.
//!
//! 32 seeded random workloads through 4 worker threads each, for the
//! paper's protocol (PCP-DA) and the abort-based baseline (2PL-HP, which
//! exercises the wound/restart path). The oracle is the same
//! `serialization_graph()` checker the simulator's battery uses, via the
//! shared `serializability_violations` entry point.

use rtdb_core::ProtocolKind;
use rtdb_rt::{
    job_list, run, run_front, shed_victim, AdmissionPolicy, FairnessConfig, FrontConfig,
    JobRequest, RtConfig, ShedCandidate, SubmitOutcome,
};
use rtdb_sim::{serializability_violations, WorkloadParams};
use rtdb_types::TxnId;
use rtdb_util::prop;

const CASES: usize = 32;

fn check_kind(kind: ProtocolKind) {
    prop::forall(CASES, |rng| {
        let set = WorkloadParams {
            templates: rng.range_usize(3..6),
            items: rng.range_usize(6..14),
            target_utilization: 0.5,
            hotspot_items: 3,
            hotspot_prob: 0.5 + 0.3 * rng.f64(),
            seed: rng.next_u64(),
            ..WorkloadParams::default()
        }
        .generate()
        .expect("workload generation")
        .set;

        let jobs = job_list(&set, 20, rng.next_u64());
        let rt = run(&set, &jobs, RtConfig::new(kind).with_threads(4));
        assert_eq!(rt.committed, jobs.len() as u64, "{kind:?} dropped jobs");
        let violations = serializability_violations(&set, &rt.history, &rt.db, true);
        assert!(violations.is_empty(), "{kind:?}: {violations:?}");
    });
}

#[test]
fn pcp_da_runtime_histories_are_conflict_serializable() {
    check_kind(ProtocolKind::PcpDa);
}

#[test]
fn two_pl_hp_runtime_histories_are_conflict_serializable() {
    check_kind(ProtocolKind::TwoPlHp);
}

#[test]
fn bamboo_runtime_histories_are_conflict_serializable() {
    check_kind(ProtocolKind::Bamboo);
}

/// Brook-2PL never needs a deadlock victim: all its wait edges — lock
/// waits *and* commit-gate edges — point senior → junior, so the
/// wait-for graph is acyclic by construction. Hammer hotspot workloads
/// through 4–8 threads and assert the runtime's cycle breaker stayed
/// idle (and every job still committed, serializably).
#[test]
fn brook_2pl_never_resolves_a_deadlock() {
    prop::forall(CASES, |rng| {
        let set = WorkloadParams {
            templates: rng.range_usize(4..8),
            items: rng.range_usize(4..10),
            target_utilization: 0.5,
            hotspot_items: 2,
            hotspot_prob: 0.7 + 0.3 * rng.f64(),
            write_fraction: 0.6,
            seed: rng.next_u64(),
            ..WorkloadParams::default()
        }
        .generate()
        .expect("workload generation")
        .set;

        let threads = rng.range_usize(4..9);
        let jobs = job_list(&set, 24, rng.next_u64());
        let rt = run(
            &set,
            &jobs,
            RtConfig::new(ProtocolKind::Brook2Pl).with_threads(threads),
        );
        assert_eq!(rt.committed, jobs.len() as u64, "dropped jobs");
        assert_eq!(
            rt.deadlocks_resolved, 0,
            "Brook-2PL should be deadlock-free by static order"
        );
        assert_eq!(rt.abort_reasons.deadlock_victim, 0);
        assert_eq!(
            rt.abort_reasons.total(),
            rt.restarts,
            "every restart must carry a recorded reason"
        );
        let violations = serializability_violations(&set, &rt.history, &rt.db, true);
        assert!(violations.is_empty(), "{violations:?}");
    });
}

/// Deadline-accounting invariant of the admission front-end: for *every*
/// committed job, queueing delay plus service time equals total latency
/// exactly — all three are derived from the same three `Instant`s
/// (admission, worker start, commit), so the identity must hold to the
/// nanosecond, under every policy, thread count and queue bound.
#[test]
fn front_queueing_plus_service_equals_latency_for_every_committed_job() {
    prop::forall(16, |rng| {
        let set = WorkloadParams {
            templates: rng.range_usize(3..6),
            items: rng.range_usize(6..14),
            target_utilization: 0.5,
            hotspot_items: 3,
            hotspot_prob: 0.5 + 0.3 * rng.f64(),
            seed: rng.next_u64(),
            ..WorkloadParams::default()
        }
        .generate()
        .expect("workload generation")
        .set;

        let policy = match rng.bounded(3) {
            0 => AdmissionPolicy::Reject,
            1 => AdmissionPolicy::ShedOldest,
            _ => AdmissionPolicy::Block,
        };
        let kind = if rng.bounded(2) == 0 {
            ProtocolKind::PcpDa
        } else {
            ProtocolKind::TwoPlHp
        };
        let threads = 1 + rng.bounded(3) as usize;
        let capacity = 1 + rng.bounded(8) as usize;
        let offered: Vec<TxnId> = (0..24)
            .map(|_| TxnId(rng.bounded(set.len() as u64) as u32))
            .collect();

        let config = FrontConfig::new(kind)
            .with_policy(policy)
            .with_capacity(capacity)
            .with_rt(RtConfig::new(kind).with_threads(threads));
        let (rt, ()) = run_front(&set, config, |front| {
            let (sub, _rx) = front.submitter();
            for &txn in &offered {
                let release = front.elapsed_ns();
                let out = sub.submit(JobRequest::periodic(&set, txn, release, 1_000));
                assert!(!matches!(out, SubmitOutcome::Closed));
            }
        });

        assert_eq!(
            rt.committed + rt.shed + rt.rejected,
            offered.len() as u64,
            "{policy}/{kind:?}: submissions leaked"
        );
        assert_eq!(rt.jobs.len() as u64, rt.committed);
        for job in &rt.jobs {
            assert_eq!(
                job.queue_ns + job.service_ns,
                job.latency_ns,
                "decomposition broke for {job:?}"
            );
            assert!(job.commit_ns >= job.release_ns, "{job:?}");
            assert!(
                job.deadline_ns.is_some(),
                "periodic request lost its deadline"
            );
        }
    });
}

/// Per-tenant conservation under `least-slack` shedding: for *every*
/// tenant, `committed + shed + rejected == offered` — no submission is
/// double-counted or lost, whatever mix of queued sheds, self-sheds and
/// commits the race produces, with and without fairness budgets.
#[test]
fn least_slack_conserves_every_tenants_offered_load() {
    prop::forall(16, |rng| {
        let set = WorkloadParams {
            templates: rng.range_usize(3..6),
            items: rng.range_usize(6..14),
            target_utilization: 0.5,
            hotspot_items: 3,
            hotspot_prob: 0.5 + 0.3 * rng.f64(),
            seed: rng.next_u64(),
            ..WorkloadParams::default()
        }
        .generate()
        .expect("workload generation")
        .set;

        let tenants = 1 + rng.bounded(4) as u32;
        let threads = 1 + rng.bounded(3) as usize;
        let capacity = 1 + rng.bounded(4) as usize;
        let mut config = FrontConfig::new(ProtocolKind::PcpDa)
            .with_policy(AdmissionPolicy::LeastSlack)
            .with_capacity(capacity)
            .with_rt(RtConfig::new(ProtocolKind::PcpDa).with_threads(threads));
        if rng.bounded(2) == 0 {
            config = config.with_fairness(FairnessConfig::fair_share(threads, tenants as usize));
        }
        // Deadlines vary from already-past to comfortable, so shed
        // victims come from both queued entries and incoming requests.
        let offered: Vec<(TxnId, u32, Option<u64>)> = (0..32)
            .map(|_| {
                let txn = TxnId(rng.bounded(set.len() as u64) as u32);
                let tenant = rng.bounded(tenants as u64) as u32;
                let deadline = match rng.bounded(3) {
                    0 => None,
                    1 => Some(1),
                    _ => Some(1_000_000 + rng.bounded(50_000_000)),
                };
                (txn, tenant, deadline)
            })
            .collect();
        let mut offered_by_tenant = vec![0u64; tenants as usize];
        for &(_, tenant, _) in &offered {
            offered_by_tenant[tenant as usize] += 1;
        }

        let (rt, ()) = run_front(&set, config, |front| {
            let (sub, _rx) = front.submitter();
            for &(txn, tenant, deadline) in &offered {
                let mut req = JobRequest::new(txn).for_tenant(tenant);
                req.deadline_ns = deadline;
                let out = sub.submit(req);
                assert!(!matches!(out, SubmitOutcome::Closed));
            }
        });

        assert_eq!(
            rt.committed + rt.shed + rt.rejected,
            offered.len() as u64,
            "global conservation broke"
        );
        let mut seen = 0u64;
        for row in &rt.tenants {
            assert_eq!(
                row.offered(),
                offered_by_tenant[row.tenant as usize],
                "tenant {} conservation broke: {row:?}",
                row.tenant
            );
            seen += row.offered();
        }
        assert_eq!(seen, offered.len() as u64, "tenant rows miss submissions");
        assert_eq!(
            rt.shed_by_txn.iter().sum::<u64>(),
            rt.shed,
            "per-template shed telemetry out of balance"
        );
    });
}

/// The shed-victim rule itself: when no tenant is over budget, a
/// positive-slack candidate is never shed while a negative-slack
/// candidate sits in the pool; with debtors present, the victim always
/// comes from the debtor class, least slack first.
#[test]
fn shed_victim_never_prefers_positive_slack_over_negative() {
    prop::forall(256, |rng| {
        let n = 1 + rng.bounded(12) as usize;
        let any_fairness = rng.bounded(2) == 0;
        let candidates: Vec<ShedCandidate> = (0..n)
            .map(|_| ShedCandidate {
                // Mix of negative, small-positive and infinite slack.
                slack_ns: match rng.bounded(4) {
                    0 => -(rng.bounded(1_000_000) as i64) - 1,
                    1 => rng.bounded(1_000_000) as i64,
                    2 => rng.bounded(1_000_000_000) as i64,
                    _ => i64::MAX,
                },
                over_budget: any_fairness && rng.bounded(3) == 0,
            })
            .collect();

        let victim = shed_victim(&candidates);
        let v = candidates[victim];
        if candidates.iter().any(|c| c.over_budget) {
            // Fairness outranks slack: the victim is a debtor, with the
            // least slack among debtors.
            assert!(v.over_budget, "victim {v:?} not over budget");
            let min_debtor = candidates
                .iter()
                .filter(|c| c.over_budget)
                .map(|c| c.slack_ns)
                .min()
                .expect("some debtor");
            assert_eq!(v.slack_ns, min_debtor);
        } else {
            // The satellite property: no positive-slack candidate sheds
            // while a negative-slack one is available.
            let min_slack = candidates
                .iter()
                .map(|c| c.slack_ns)
                .min()
                .expect("non-empty");
            assert_eq!(v.slack_ns, min_slack);
            if v.slack_ns > 0 {
                assert!(
                    candidates.iter().all(|c| c.slack_ns > 0),
                    "positive-slack victim {v:?} with negative-slack candidate queued"
                );
            }
        }
    });
}
