//! Property tests: runtime histories are conflict-serializable.
//!
//! 32 seeded random workloads through 4 worker threads each, for the
//! paper's protocol (PCP-DA) and the abort-based baseline (2PL-HP, which
//! exercises the wound/restart path). The oracle is the same
//! `serialization_graph()` checker the simulator's battery uses, via the
//! shared `serializability_violations` entry point.

use rtdb_core::ProtocolKind;
use rtdb_rt::{
    job_list, run, run_front, AdmissionPolicy, FrontConfig, JobRequest, RtConfig, SubmitOutcome,
};
use rtdb_sim::{serializability_violations, WorkloadParams};
use rtdb_types::TxnId;
use rtdb_util::prop;

const CASES: usize = 32;

fn check_kind(kind: ProtocolKind) {
    prop::forall(CASES, |rng| {
        let set = WorkloadParams {
            templates: rng.range_usize(3..6),
            items: rng.range_usize(6..14),
            target_utilization: 0.5,
            hotspot_items: 3,
            hotspot_prob: 0.5 + 0.3 * rng.f64(),
            seed: rng.next_u64(),
            ..WorkloadParams::default()
        }
        .generate()
        .expect("workload generation")
        .set;

        let jobs = job_list(&set, 20, rng.next_u64());
        let rt = run(&set, &jobs, RtConfig::new(kind).with_threads(4));
        assert_eq!(rt.committed, jobs.len() as u64, "{kind:?} dropped jobs");
        let violations = serializability_violations(&set, &rt.history, &rt.db, true);
        assert!(violations.is_empty(), "{kind:?}: {violations:?}");
    });
}

#[test]
fn pcp_da_runtime_histories_are_conflict_serializable() {
    check_kind(ProtocolKind::PcpDa);
}

#[test]
fn two_pl_hp_runtime_histories_are_conflict_serializable() {
    check_kind(ProtocolKind::TwoPlHp);
}

/// Deadline-accounting invariant of the admission front-end: for *every*
/// committed job, queueing delay plus service time equals total latency
/// exactly — all three are derived from the same three `Instant`s
/// (admission, worker start, commit), so the identity must hold to the
/// nanosecond, under every policy, thread count and queue bound.
#[test]
fn front_queueing_plus_service_equals_latency_for_every_committed_job() {
    prop::forall(16, |rng| {
        let set = WorkloadParams {
            templates: rng.range_usize(3..6),
            items: rng.range_usize(6..14),
            target_utilization: 0.5,
            hotspot_items: 3,
            hotspot_prob: 0.5 + 0.3 * rng.f64(),
            seed: rng.next_u64(),
            ..WorkloadParams::default()
        }
        .generate()
        .expect("workload generation")
        .set;

        let policy = match rng.bounded(3) {
            0 => AdmissionPolicy::Reject,
            1 => AdmissionPolicy::ShedOldest,
            _ => AdmissionPolicy::Block,
        };
        let kind = if rng.bounded(2) == 0 {
            ProtocolKind::PcpDa
        } else {
            ProtocolKind::TwoPlHp
        };
        let threads = 1 + rng.bounded(3) as usize;
        let capacity = 1 + rng.bounded(8) as usize;
        let offered: Vec<TxnId> = (0..24)
            .map(|_| TxnId(rng.bounded(set.len() as u64) as u32))
            .collect();

        let config = FrontConfig::new(kind)
            .with_policy(policy)
            .with_capacity(capacity)
            .with_rt(RtConfig::new(kind).with_threads(threads));
        let (rt, ()) = run_front(&set, config, |front| {
            let (sub, _rx) = front.submitter();
            for &txn in &offered {
                let release = front.elapsed_ns();
                let out = sub.submit(JobRequest::periodic(&set, txn, release, 1_000));
                assert!(!matches!(out, SubmitOutcome::Closed));
            }
        });

        assert_eq!(
            rt.committed + rt.shed + rt.rejected,
            offered.len() as u64,
            "{policy}/{kind:?}: submissions leaked"
        );
        assert_eq!(rt.jobs.len() as u64, rt.committed);
        for job in &rt.jobs {
            assert_eq!(
                job.queue_ns + job.service_ns,
                job.latency_ns,
                "decomposition broke for {job:?}"
            );
            assert!(job.commit_ns >= job.release_ns, "{job:?}");
            assert!(
                job.deadline_ns.is_some(),
                "periodic request lost its deadline"
            );
        }
    });
}
