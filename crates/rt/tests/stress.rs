//! 8-thread × 9-protocol stress smoke run.
//!
//! Fixed seeds, short job queues, maximum contention churn (`tick_ns = 0`
//! means a worker's whole life is lock traffic). Asserts the run drains
//! (no hang, no panic) and — the classic concurrency bug — that no
//! update is lost: every committed write step must have bumped its item's
//! version exactly once, so per item the final database version equals
//! the number of Install events in the history, which in turn equals the
//! number of committed instances whose template writes the item.
//!
//! Gated to release builds: 9 protocols × 8 threads × 160 jobs of pure
//! mutex churn is a wasteful crawl under an unoptimized build, and CI
//! runs the release suite anyway.

use rtdb_core::ProtocolKind;
use rtdb_rt::{job_list, run, ManagerKind, RtConfig};
use rtdb_sim::WorkloadParams;
use rtdb_storage::EventKind;
use rtdb_types::TransactionSet;
use std::collections::BTreeMap;

fn workload(seed: u64) -> TransactionSet {
    WorkloadParams {
        templates: 5,
        items: 10,
        target_utilization: 0.5,
        hotspot_items: 3,
        hotspot_prob: 0.6,
        seed,
        ..WorkloadParams::default()
    }
    .generate()
    .expect("workload generation")
    .set
}

fn no_lost_updates_under(manager: ManagerKind) {
    for kind in ProtocolKind::ALL {
        let set = workload(0x57E5 + kind as u64);
        let jobs = job_list(&set, 160, 23 + kind as u64);
        let rt = run(
            &set,
            &jobs,
            RtConfig::new(kind).with_threads(8).with_manager(manager),
        );

        assert_eq!(
            rt.committed,
            jobs.len() as u64,
            "{manager}/{kind:?}: dropped jobs"
        );

        // Expected installs per item: each committed job writes each item
        // of its template's write set exactly once (the workspace stages
        // at most one value per item, and CCP's early installs are
        // deduplicated against the commit-time install).
        let mut expected: BTreeMap<_, u64> = BTreeMap::new();
        for job in &jobs {
            for item in set.template(job.txn).write_set() {
                *expected.entry(item).or_default() += 1;
            }
        }

        let mut installs: BTreeMap<_, u64> = BTreeMap::new();
        for e in rt.history.events() {
            if let EventKind::Install { item, .. } = e.kind {
                *installs.entry(item).or_default() += 1;
            }
        }
        assert_eq!(
            installs, expected,
            "{manager}/{kind:?}: lost or duplicated install"
        );

        for (&item, &count) in &expected {
            assert_eq!(
                rt.db.read(item).version,
                count,
                "{manager}/{kind:?}: final version of {item:?} disagrees with its install count"
            );
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-gated: run with `cargo test --release -p rtdb-rt`"
)]
fn eight_threads_nine_protocols_no_lost_updates() {
    no_lost_updates_under(ManagerKind::Mutex);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-gated: run with `cargo test --release -p rtdb-rt`"
)]
fn eight_threads_nine_protocols_no_lost_updates_combining() {
    no_lost_updates_under(ManagerKind::Combining);
}
