//! Admission front-end validation: deterministic deadline accounting and
//! sim-vs-rt open-loop differentials.
//!
//! Deadline verdicts in the runtime are wall-clock observations, so every
//! assertion here is built on *margins*: schedules are staged so that each
//! met/missed verdict has tens of milliseconds of slack against scheduler
//! noise, while the logical structure (who queues behind whom) is forced
//! by a single worker and the FIFO admission path.

use rtdb_core::ProtocolKind;
use rtdb_rt::{run_front, AdmissionPolicy, FrontConfig, JobRequest, RtConfig, SubmitOutcome};
use rtdb_sim::{serializability_violations, Engine, RunOutcome, SimConfig, WorkloadParams};
use rtdb_types::{
    InstanceId, ItemId, SetBuilder, Step, TransactionSet, TransactionTemplate, TxnId,
};

/// Milliseconds in nanoseconds.
const MS: u64 = 1_000_000;

/// A known schedule forcing exactly K = 2 misses: one long job owns the
/// single worker while two short jobs with tight deadlines queue behind
/// it. The misses are *queueing* misses — each short job's own service is
/// ~1 ms against a 10 ms deadline, but it cannot start for ~50 ms.
#[test]
fn forced_schedule_misses_exactly_k() {
    let set = SetBuilder::new()
        .with(TransactionTemplate::new(
            "long",
            1_000,
            vec![Step::compute(50)],
        ))
        .with(TransactionTemplate::new(
            "tight",
            1_000,
            vec![Step::compute(1)],
        ))
        .build()
        .expect("set");
    let config = FrontConfig::new(ProtocolKind::PcpDa)
        .with_policy(AdmissionPolicy::Block)
        .with_rt(
            RtConfig::new(ProtocolKind::PcpDa)
                .with_threads(1)
                .with_tick_ns(MS),
        );
    let (result, ()) = run_front(&set, config, |front| {
        let (sub, _rx) = front.submitter();
        // J0: 50 ms of service against a 10 s deadline — meets.
        sub.submit(JobRequest::new(TxnId(0)).with_deadline(10_000 * MS));
        // J1, J2: ~1 ms of service against 10 ms deadlines, queued behind
        // 50 ms of J0 — both miss, by ≥ 40 ms of margin.
        sub.submit(JobRequest::new(TxnId(1)).with_deadline(10 * MS));
        sub.submit(JobRequest::new(TxnId(1)).with_deadline(10 * MS));
    });

    assert_eq!(result.committed, 3);
    assert_eq!(result.deadline_misses(), 2, "exactly K = 2 forced misses");
    assert_eq!((result.shed, result.rejected), (0, 0));

    // The misses are the two tight jobs, and they are queueing misses:
    // time spent waiting for the worker dominates their own service.
    for job in &result.jobs {
        if job.id.txn == TxnId(1) {
            assert!(job.missed_deadline(), "tight job met: {job:?}");
            assert!(
                job.queue_ns > 30 * MS,
                "miss was not queueing-dominated: {job:?}"
            );
            assert!(job.queue_ns > job.service_ns, "{job:?}");
        } else {
            assert!(!job.missed_deadline(), "long job missed: {job:?}");
        }
    }

    // Per-priority accounting: "long" was added first, so it has the
    // higher base priority under SetBuilder::build.
    let bands = result.misses_by_priority();
    assert_eq!(bands.len(), 2);
    assert_eq!((bands[0].committed, bands[0].missed), (1, 0));
    assert_eq!((bands[1].committed, bands[1].missed), (2, 2));
    assert!((bands[1].ratio() - 1.0).abs() < f64::EPSILON);
    assert!((result.miss_ratio() - 2.0 / 3.0).abs() < 1e-9);
}

/// A conflict-free burst workload whose miss pattern is forced by pure
/// arithmetic: five templates, all released together, executed in
/// priority order by both the simulator (single CPU, nothing ever
/// preempts because nothing arrives later) and the single-worker
/// front-end (FIFO over a priority-ordered submission sequence).
/// Template k has service 10 ticks and cumulative completion 10·(k+1);
/// its period (= relative deadline) is chosen so the met/missed verdict
/// has ≥ 3 ticks of margin.
fn burst_set() -> TransactionSet {
    let periods = [16u64, 17, 40, 45, 46];
    let mut b = SetBuilder::new();
    for (k, &p) in periods.iter().enumerate() {
        b.add(
            TransactionTemplate::new(format!("T{k}"), p, vec![Step::write(ItemId(k as u32), 10)])
                .with_instances(1),
        );
    }
    b.build().expect("burst set")
}

/// The single-thread open-loop run reproduces the simulator's miss and
/// commit ordering (acceptance criterion; PCP-DA and 2PL-HP). The burst
/// workload is conflict-free, so both protocols must agree with their own
/// simulator runs *and* with each other.
#[test]
fn open_loop_single_thread_reproduces_sim_miss_and_commit_ordering() {
    const TICK: u64 = 2 * MS;
    for kind in [ProtocolKind::PcpDa, ProtocolKind::TwoPlHp] {
        let set = burst_set();

        // Ground truth: the simulator's commit order and miss verdicts.
        let sim = Engine::new(&set, SimConfig::default())
            .run_kind(kind)
            .expect("sim run");
        assert_eq!(sim.outcome, RunOutcome::Completed, "{kind:?}");
        let sim_order: Vec<InstanceId> = sim.history.commit_order().to_vec();
        assert_eq!(sim_order.len(), 5);
        let sim_missed: Vec<bool> = sim_order
            .iter()
            .map(|id| {
                !sim.metrics
                    .instance(*id)
                    .expect("sim metrics")
                    .met_deadline()
            })
            .collect();
        // The arithmetic above promises this exact pattern; assert it so
        // the test cannot silently degenerate into "no misses anywhere".
        assert_eq!(sim_missed, [false, true, false, false, true], "{kind:?}");

        // Open-loop run: submit the burst in priority order at t≈0 with
        // deadline = release + period scaled by the same tick the worker
        // uses for computation.
        let config = FrontConfig::new(kind)
            .with_policy(AdmissionPolicy::Block)
            .with_rt(RtConfig::new(kind).with_threads(1).with_tick_ns(TICK));
        let (rt, ()) = run_front(&set, config, |front| {
            let (sub, _rx) = front.submitter();
            for k in 0..5 {
                let req = JobRequest::periodic(&set, TxnId(k), 0, TICK);
                assert!(matches!(sub.submit(req), SubmitOutcome::Admitted { .. }));
            }
        });

        assert_eq!(rt.committed, 5, "{kind:?}");
        let rt_order: Vec<InstanceId> = rt.jobs.iter().map(|j| j.id).collect();
        assert_eq!(rt_order, sim_order, "{kind:?}: commit order diverged");
        let rt_missed: Vec<bool> = rt.jobs.iter().map(|j| j.missed_deadline()).collect();
        assert_eq!(rt_missed, sim_missed, "{kind:?}: miss pattern diverged");
        assert_eq!(
            rt.db.snapshot(),
            sim.db.snapshot(),
            "{kind:?}: final database diverged"
        );

        // Per-priority ratios line up with the simulator's per-template
        // miss counts (every template is its own priority level here).
        for band in rt.misses_by_priority() {
            let expect = sim
                .metrics
                .instances()
                .filter(|m| set.priority_of(m.id.txn).level() == band.priority)
                .filter(|m| !m.met_deadline())
                .count() as u64;
            assert_eq!(band.missed, expect, "{kind:?} priority {}", band.priority);
        }
    }
}

/// A small contended workload with every template bounded to two
/// instances (mirrors `tests/differential.rs`).
fn bounded_workload(seed: u64) -> TransactionSet {
    let spec = WorkloadParams {
        templates: 4,
        items: 8,
        target_utilization: 0.5,
        hotspot_items: 3,
        hotspot_prob: 0.6,
        seed,
        ..WorkloadParams::default()
    }
    .generate()
    .expect("workload generation");
    let mut b = SetBuilder::new();
    for t in spec.set.templates() {
        let mut t = t.clone();
        t.instances = Some(2);
        b.add(t);
    }
    b.build_rate_monotonic().expect("rebuild")
}

/// Replaying the simulator's serialization order through the *front door*
/// (instead of a prebuilt job list) on one worker still reproduces the
/// final database under real contention: the dispatcher's
/// admission-order sequence numbering is exactly the replay the
/// closed-loop differential performs.
#[test]
fn open_loop_replay_through_front_matches_sim_under_contention() {
    for kind in [ProtocolKind::PcpDa, ProtocolKind::TwoPlHp] {
        let set = bounded_workload(0xF407 + kind as u64);
        let mut config = SimConfig::default();
        if kind.may_deadlock() {
            config = config.resolving_deadlocks();
        }
        let sim = Engine::new(&set, config).run_kind(kind).expect("sim run");
        assert_eq!(sim.outcome, RunOutcome::Completed, "{kind:?}");
        let order: Vec<InstanceId> = sim.history.commit_order().to_vec();
        assert!(!order.is_empty());

        // The dispatcher assigns per-template sequence numbers in
        // admission order, so the replay below reproduces these exact
        // instance ids only if the sim committed each template's
        // instances in sequence order. Check that premise explicitly.
        for t in set.templates() {
            let seqs: Vec<u32> = order
                .iter()
                .filter(|id| id.txn == t.id)
                .map(|id| id.seq)
                .collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{kind:?} {seqs:?}");
        }

        let front_config = FrontConfig::new(kind)
            .with_policy(AdmissionPolicy::Block)
            .with_capacity(order.len())
            .with_rt(RtConfig::new(kind).with_threads(1));
        let (rt, ()) = run_front(&set, front_config, |front| {
            let (sub, _rx) = front.submitter();
            for id in &order {
                assert!(matches!(
                    sub.submit(JobRequest::new(id.txn)),
                    SubmitOutcome::Admitted { .. }
                ));
            }
        });

        assert_eq!(rt.committed, order.len() as u64, "{kind:?}");
        let rt_order: Vec<InstanceId> = rt.jobs.iter().map(|j| j.id).collect();
        assert_eq!(rt_order, order, "{kind:?}: replay order diverged");
        assert_eq!(
            rt.db.snapshot(),
            sim.db.snapshot(),
            "{kind:?}: final database diverged from the simulator"
        );
        let violations = serializability_violations(&set, &rt.history, &rt.db, true);
        assert!(violations.is_empty(), "{kind:?}: {violations:?}");
    }
}

/// Multi-worker open-loop runs stay serializable and account for every
/// submission: committed + shed + rejected == offered, under each policy.
#[test]
fn open_loop_accounts_for_every_submission_under_each_policy() {
    for policy in AdmissionPolicy::ALL {
        let set = bounded_workload(0xACC0);
        let config = FrontConfig::new(ProtocolKind::PcpDa)
            .with_policy(policy)
            .with_capacity(2)
            .with_rt(RtConfig::new(ProtocolKind::PcpDa).with_threads(4));
        let offered = 40u64;
        let (rt, (admitted, self_shed)) = run_front(&set, config, |front| {
            let (sub, _rx) = front.submitter();
            let (mut admitted, mut self_shed) = (0u64, 0u64);
            for i in 0..offered {
                let txn = TxnId((i % set.len() as u64) as u32);
                match sub.submit(JobRequest::new(txn)) {
                    SubmitOutcome::Admitted { .. } => admitted += 1,
                    SubmitOutcome::Shed { .. } => self_shed += 1,
                    _ => {}
                }
            }
            (admitted, self_shed)
        });
        assert_eq!(
            rt.committed + rt.shed + rt.rejected,
            offered,
            "{policy}: submissions leaked"
        );
        assert_eq!(rt.committed + rt.shed, admitted + self_shed, "{policy}");
        assert_eq!(rt.jobs.len() as u64, rt.committed, "{policy}");
        let violations = serializability_violations(&set, &rt.history, &rt.db, true);
        assert!(violations.is_empty(), "{policy}: {violations:?}");
    }
}
