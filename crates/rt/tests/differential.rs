//! Sim-differential validation of the threaded runtime.
//!
//! The simulator is this repository's ground truth: every sim run passes
//! the serial-replay oracle. These tests execute the *same* committed
//! workload through the runtime on one thread, in the simulator's
//! serialization order, and require bit-identical final database state —
//! plus conflict-serializability of the runtime's own history, which is
//! checked by the same shared oracle (`serializability_violations`).
//!
//! A single-threaded runtime run is a genuinely serial execution, so any
//! divergence from the simulator isolates a defect in the runtime's lock
//! manager / commit path rather than a scheduling difference.

use rtdb_core::ProtocolKind;
use rtdb_rt::{run, ManagerKind, RtConfig};
use rtdb_sim::{serializability_violations, Engine, RunOutcome, SimConfig, WorkloadParams};
use rtdb_types::{
    Duration, InstanceId, ItemId, SetBuilder, Step, TransactionSet, TransactionTemplate, TxnId,
};

/// A small contended workload with every template bounded to two
/// instances, so an unhorizoned sim run completes quickly.
fn bounded_workload(seed: u64) -> TransactionSet {
    let spec = WorkloadParams {
        templates: 4,
        items: 8,
        target_utilization: 0.5,
        hotspot_items: 3,
        hotspot_prob: 0.6,
        seed,
        ..WorkloadParams::default()
    }
    .generate()
    .expect("workload generation");
    let mut b = SetBuilder::new();
    for t in spec.set.templates() {
        let mut t = t.clone();
        t.instances = Some(2);
        b.add(t);
    }
    b.build_rate_monotonic().expect("rebuild")
}

/// Run the simulator to completion and return its serialization order:
/// commit order for the commit-order protocols, a topological order of
/// the conflict graph for CCP (whose serialization order may deviate).
fn sim_serial_order(set: &TransactionSet, kind: ProtocolKind) -> Vec<InstanceId> {
    let mut config = SimConfig::default();
    if kind.may_deadlock() {
        config = config.resolving_deadlocks();
    }
    let sim = Engine::new(set, config).run_kind(kind).expect("sim run");
    assert_eq!(
        sim.outcome,
        RunOutcome::Completed,
        "{kind:?} sim deadlocked"
    );
    assert!(
        !sim.history.commit_order().is_empty(),
        "{kind:?} sim committed nothing"
    );
    if kind == ProtocolKind::Ccp {
        sim.serialization_graph()
            .topological_order()
            .expect("sim history is acyclic")
    } else {
        sim.history.commit_order().to_vec()
    }
}

/// Final database snapshot of the sim run for the same workload.
fn sim_final_db(
    set: &TransactionSet,
    kind: ProtocolKind,
) -> std::collections::BTreeMap<ItemId, rtdb_types::Value> {
    let mut config = SimConfig::default();
    if kind.may_deadlock() {
        config = config.resolving_deadlocks();
    }
    let sim = Engine::new(set, config).run_kind(kind).expect("sim run");
    sim.db.snapshot()
}

#[test]
fn single_thread_replay_matches_sim_for_all_kinds() {
    for manager in ManagerKind::ALL {
        for kind in ProtocolKind::ALL {
            let set = bounded_workload(0xD1FF + kind as u64);
            let jobs = sim_serial_order(&set, kind);
            let rt = run(
                &set,
                &jobs,
                RtConfig::new(kind).with_threads(1).with_manager(manager),
            );

            assert_eq!(
                rt.committed,
                jobs.len() as u64,
                "{manager}/{kind:?}: runtime dropped jobs"
            );
            assert_eq!(
                rt.db.snapshot(),
                sim_final_db(&set, kind),
                "{manager}/{kind:?}: final database diverged from the simulator"
            );
            // A serial replay never parks, so the park-timeout safety net
            // must never fire; a nonzero count would reveal a lost
            // wake-up (or, under the combiner, a dropped slot response)
            // silently healed by the net.
            assert_eq!(
                rt.park_timeout_wakeups, 0,
                "{manager}/{kind:?}: park-timeout safety net fired in a serial replay"
            );
            if manager == ManagerKind::Combining {
                // Every manager call is one published op; the publisher
                // always self-elects on one thread.
                assert!(rt.combiner.passes > 0, "{kind:?}: no combining passes");
                assert_eq!(
                    rt.combiner.pass_len.count(),
                    rt.combiner.passes,
                    "{kind:?}: pass histogram disagrees with pass count"
                );
            }
            // A 1-thread run is serial, so commit order is a valid
            // serialization order for every protocol.
            let violations = serializability_violations(&set, &rt.history, &rt.db, true);
            assert!(violations.is_empty(), "{manager}/{kind:?}: {violations:?}");
        }
    }
}

/// Theorem 1 spot check on real threads: under PCP-DA a high-priority
/// transaction is blocked by at most one lower-priority transaction.
///
/// TL (low priority) grabs a read lock on `x` and then computes for ~20ms
/// of wall-clock busy-work; TH (high priority) starts on another thread,
/// computes ~5ms, then requests the write lock on `x` — LC1 blocks a
/// writer while another reader holds `x`, so TH parks behind TL alone.
/// The assertion is timing-robust: if the race never materialises TH
/// simply records no lower blockers, which also passes.
#[test]
fn pcp_da_single_blocking_spot_check() {
    let x = ItemId(0);
    let set = SetBuilder::new()
        .with(TransactionTemplate::new(
            "TH",
            100,
            vec![Step::compute(5), Step::write(x, 1)],
        ))
        .with(TransactionTemplate::new(
            "TL",
            1_000,
            vec![Step::read(x, 1), Step::compute(20)],
        ))
        .build()
        .expect("set");
    let th = InstanceId::first(TxnId(0));
    let tl = InstanceId::first(TxnId(1));

    for attempt in 0..8u32 {
        // TL first in the queue so it wins the read lock; 1ms per tick
        // keeps TL inside its compute step while TH requests the lock.
        let jobs = [tl, th];
        let rt = run(
            &set,
            &jobs,
            RtConfig::new(ProtocolKind::PcpDa)
                .with_threads(2)
                .with_tick_ns(1_000_000),
        );
        assert_eq!(rt.committed, 2);
        assert_eq!(rt.restarts, 0, "PCP-DA must not abort");
        let th_report = rt.jobs.iter().find(|j| j.id == th).expect("TH committed");
        assert!(
            th_report.lower_blockers.len() <= 1,
            "TH blocked by multiple lower-priority transactions: {:?}",
            th_report.lower_blockers
        );
        assert!(
            th_report.lower_blockers.iter().all(|&t| t == tl.txn),
            "unexpected blocker set {:?}",
            th_report.lower_blockers
        );
        let violations = serializability_violations(&set, &rt.history, &rt.db, true);
        assert!(violations.is_empty(), "attempt {attempt}: {violations:?}");
        if !th_report.lower_blockers.is_empty() {
            return; // observed the intended block at least once
        }
    }
    // Never observing the block is legal (scheduling is real), but with
    // 20ms of lock-holding per attempt it is practically unreachable;
    // don't fail the suite over scheduler luck.
}

/// Multi-threaded runs stay serializable and lose no committed work, for
/// every protocol in the registry, under both lock managers.
#[test]
fn multi_thread_runs_are_serializable_for_all_kinds() {
    for manager in ManagerKind::ALL {
        for kind in ProtocolKind::ALL {
            let set = bounded_workload(0xBEEF + kind as u64);
            let jobs = rtdb_rt::job_list(&set, 24, 11);
            let rt = run(
                &set,
                &jobs,
                RtConfig::new(kind).with_threads(4).with_manager(manager),
            );
            assert_eq!(
                rt.committed,
                jobs.len() as u64,
                "{manager}/{kind:?} dropped jobs"
            );
            let commit_order_serialization = kind != ProtocolKind::Ccp;
            let violations =
                serializability_violations(&set, &rt.history, &rt.db, commit_order_serialization);
            assert!(violations.is_empty(), "{manager}/{kind:?}: {violations:?}");
        }
    }
}

/// `Duration` sanity for the spot check: the templates above rely on
/// compute steps being measured in ticks.
#[test]
fn spot_check_template_durations() {
    let t = TransactionTemplate::new("t", 10, vec![Step::compute(5)]);
    assert_eq!(t.steps[0].duration, Duration(5));
}
