//! Deterministic job lists for the closed-loop runtime.
//!
//! The runtime does not simulate periodic arrivals — it is a *closed-loop*
//! executor: a fixed queue of jobs is drained by a fixed pool of worker
//! threads, each thread picking the next job the moment it finishes its
//! current one. What *is* deterministic is the queue itself: given the
//! same set, count and seed, every run (and the sim-differential oracle)
//! sees the same sequence of instances.

use rtdb_types::{InstanceId, TransactionSet, TxnId};
use rtdb_util::Rng;

/// Build a deterministic, shuffled job list: `total` instances drawn
/// round-robin from the set's templates, shuffled by `seed`, with each
/// template's sequence numbers assigned in queue order (so instance
/// `(txn, 0)` always enters the queue before `(txn, 1)`).
pub fn job_list(set: &TransactionSet, total: usize, seed: u64) -> Vec<InstanceId> {
    let n = set.len();
    let mut txns: Vec<TxnId> = (0..total).map(|i| TxnId((i % n) as u32)).collect();
    let mut rng = Rng::seed(seed);
    rng.shuffle(&mut txns);
    let mut next_seq = vec![0u32; n];
    txns.into_iter()
        .map(|txn| {
            let seq = next_seq[txn.index()];
            next_seq[txn.index()] += 1;
            InstanceId::new(txn, seq)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb_types::{SetBuilder, Step, TransactionTemplate};

    fn set() -> TransactionSet {
        SetBuilder::new()
            .with(TransactionTemplate::new("a", 10, vec![Step::compute(1)]))
            .with(TransactionTemplate::new("b", 20, vec![Step::compute(1)]))
            .with(TransactionTemplate::new("c", 30, vec![Step::compute(1)]))
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_for_a_seed() {
        let s = set();
        assert_eq!(job_list(&s, 12, 7), job_list(&s, 12, 7));
        assert_ne!(job_list(&s, 12, 7), job_list(&s, 12, 8));
    }

    #[test]
    fn round_robin_balance_and_ordered_seqs() {
        let s = set();
        let jobs = job_list(&s, 10, 42);
        assert_eq!(jobs.len(), 10);
        // 10 jobs over 3 templates: counts 4/3/3.
        let count = |t: u32| jobs.iter().filter(|j| j.txn == TxnId(t)).count();
        assert_eq!(count(0), 4);
        assert_eq!(count(1), 3);
        assert_eq!(count(2), 3);
        // Sequence numbers appear in queue order per template.
        for t in 0..3 {
            let seqs: Vec<u32> = jobs
                .iter()
                .filter(|j| j.txn == TxnId(t))
                .map(|j| j.seq)
                .collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
