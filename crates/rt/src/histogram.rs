//! Log-bucketed latency histogram (no external dependencies).
//!
//! Values 0–15 ns get exact buckets; above that each power-of-two octave
//! is split into four sub-buckets (~±12.5% relative error), the classic
//! HdrHistogram-style layout collapsed to two significant bits. 256
//! buckets cover the full `u64` range, so recording never saturates; the
//! exact maximum is tracked on the side.

/// A fixed-size log-bucketed histogram of nanosecond latencies.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 256],
    count: u64,
    max: u64,
    min: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; 256],
            count: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value < 16 {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros() as usize; // >= 4
            let sub = ((value >> (msb - 2)) & 0b11) as usize;
            16 + (msb - 4) * 4 + sub
        }
    }

    /// Inclusive value range covered by a bucket.
    fn bucket_range(idx: usize) -> (u64, u64) {
        if idx < 16 {
            (idx as u64, idx as u64)
        } else {
            let octave = (idx - 16) / 4 + 4;
            let sub = ((idx - 16) % 4) as u64;
            let width = 1u64 << (octave - 2);
            let low = (1u64 << octave) + sub * width;
            // `low + width` overflows u64 for the topmost bucket; adding
            // the already-decremented width stays in range.
            (low, low + (width - 1))
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let b = &mut self.buckets[Self::bucket_of(value)];
        *b = b.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Fold `other` into `self`, bucket by bucket, so per-worker
    /// histograms can be combined after the threads join without any
    /// locking during recording. The sharded runtime leans on the same
    /// property along its other axis: each shard's lock manager keeps its
    /// own histograms, and the run-level latency report is the merge of
    /// the per-shard ones — merge order never matters because bucket
    /// addition commutes, so "per worker, then per shard" and "per
    /// shard, then per worker" aggregate identically. Counts saturate at
    /// `u64::MAX` (the same semantics as [`LatencyHistogram::record`]),
    /// so merging can never wrap; min/max stay exact.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        if other.count > 0 {
            self.max = self.max.max(other.max);
            self.min = self.min.min(other.min);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), interpolated by rank within the
    /// bucket holding it. The bucket's value span is first clipped to the
    /// exact observed min/max, so the top bucket interpolates toward the
    /// true maximum instead of reporting the bucket's upper bound (the
    /// old midpoint-and-clamp scheme collapsed every tail quantile that
    /// landed in the max's bucket onto `max` itself). Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        // Nearest-rank (1-based): the smallest value with at least
        // ceil(q * count) observations at or below it.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if seen >= rank {
                let (low, high) = Self::bucket_range(idx);
                let lo = low.max(self.min);
                let hi = high.min(self.max);
                if lo >= hi {
                    return lo;
                }
                // Position of the rank among this bucket's occupants.
                let frac = (rank - before) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * frac).round() as u64;
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_sixteen() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn buckets_partition_the_range() {
        // Every value maps into a bucket whose range contains it, and
        // bucket ranges tile contiguously.
        for v in [0, 1, 15, 16, 17, 31, 32, 100, 1_000, 123_456, u64::MAX / 2] {
            let idx = LatencyHistogram::bucket_of(v);
            let (low, high) = LatencyHistogram::bucket_range(idx);
            assert!(low <= v && v <= high, "value {v} outside bucket {idx}");
        }
        for idx in 0..255 {
            let (_, high) = LatencyHistogram::bucket_range(idx);
            let (next_low, _) = LatencyHistogram::bucket_range(idx + 1);
            assert_eq!(high + 1, next_low, "gap after bucket {idx}");
        }
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // Sub-bucket resolution bounds relative error by ~±12.5%.
        assert!((4_200..=5_800).contains(&p50), "p50 = {p50}");
        assert!((8_700..=10_000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let xs: Vec<u64> = (0..400u64).map(|i| i * i * 37 % 90_001).collect();
        let ys: Vec<u64> = (0..300u64).map(|i| i * 13 + 5).collect();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for &x in &xs {
            a.record(x);
            union.record(x);
        }
        for &y in &ys {
            b.record(y);
            union.record(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), union.count());
        assert_eq!(a.min(), union.min());
        assert_eq!(a.max(), union.max());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), union.quantile(q), "quantile {q} diverged");
        }
    }

    #[test]
    fn tail_quantile_in_top_bucket_interpolates_below_max() {
        // Regression for the p99 == max artifact: when the p99 rank lands
        // in the same bucket as the maximum and the bucket midpoint sits
        // above the true max, the old midpoint-and-clamp scheme collapsed
        // the quantile onto `max` exactly. Rank interpolation keeps it
        // inside the bucket's observed span.
        let mut h = LatencyHistogram::new();
        for _ in 0..98 {
            h.record(100);
        }
        h.record(8_192);
        h.record(8_300);
        let p99 = h.quantile(0.99);
        assert!(p99 >= 8_192, "p99 {p99} fell below its bucket");
        assert!(p99 < h.max(), "p99 {p99} collapsed onto max {}", h.max());
        assert_eq!(h.quantile(1.0), 8_300);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LatencyHistogram::new();
        a.record(7);
        a.record(1_000);
        let before = (a.count(), a.min(), a.max(), a.quantile(0.5));
        a.merge(&LatencyHistogram::new());
        assert_eq!(before, (a.count(), a.min(), a.max(), a.quantile(0.5)));

        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), a.count());
        assert_eq!(empty.min(), a.min());
        assert_eq!(empty.max(), a.max());
    }

    #[test]
    fn merge_counts_saturate() {
        let mut a = LatencyHistogram::new();
        a.record(42);
        a.count = u64::MAX - 1;
        a.buckets[LatencyHistogram::bucket_of(42)] = u64::MAX - 1;
        let mut b = LatencyHistogram::new();
        for _ in 0..3 {
            b.record(42);
        }
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "count saturates instead of wrapping");
        assert_eq!(a.buckets[LatencyHistogram::bucket_of(42)], u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }
}
