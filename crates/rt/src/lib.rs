//! Multi-threaded real-time transaction runtime.
//!
//! Where `rtdb-sim` *simulates* the paper's single-processor system —
//! deterministic discrete time, a modelled scheduler — this crate
//! *executes* the same transaction workloads on real OS threads, driving
//! the identical protocol decision logic from `rtdb-core` through a
//! parking lock manager:
//!
//! * `manager` (internal) — the protocol state core (lock table,
//!   ceilings, priority inheritance, history, database) behind one of two
//!   runtime-selectable lock managers ([`ManagerKind`]): the original
//!   global mutex with per-waiter condvar parking, or
//! * `combining` (internal) — the flat-combining delegation manager:
//!   workers publish operations into publication slots and a single
//!   combiner executes everyone's grant/deny/reevaluate decisions in one
//!   cache-hot pass, in descending running-priority order (telemetry in
//!   [`CombinerStats`]);
//! * `sharded` (internal) — the partitioned architecture: a static
//!   router spreads items across `N` independent per-shard lock managers
//!   (each its own [`ManagerKind`] instance) coordinated by a lock-free
//!   published-per-shard global ceiling; cross-shard transactions
//!   acquire shards in canonical order under a no-wait rule (DESIGN.md
//!   §6e, per-shard telemetry in [`ShardStats`]);
//! * [`runtime`] — the closed-loop executor: a pool of worker threads
//!   drains a job queue, each job running one transaction instance to
//!   commit (with abort/restart for the wound/validate protocols);
//! * [`front`] — the asynchronous admission front-end: submitters
//!   enqueue [`JobRequest`]s (release time, deadline) on a bounded
//!   admission queue, a dispatcher feeds the worker pool, completions
//!   return over per-submitter channels — open-loop arrivals with
//!   runtime deadline tracking;
//! * [`admission`] — the bounded MPSC admission queue, its overload
//!   policies (reject / shed-oldest / least-slack / block-submitter) and
//!   the per-tenant token-bucket fairness budgets ([`FairnessConfig`]);
//! * [`jobs`] — deterministic seeded job queues;
//! * [`histogram`] — a dependency-free log-bucketed latency histogram for
//!   the `rtload` load generator.
//!
//! The runtime intentionally shares every correctness-relevant component
//! with the simulator — [`rtdb_core::ProtocolFor`] decisions,
//! [`rtdb_storage::Workspace`] deferred updates, [`rtdb_storage::History`]
//! logging — so its executions can be validated by the same oracles:
//! conflict-serializability of the history and serial-replay equivalence.
//! Scheduling, by contrast, is real: the OS decides who runs, so a run's
//! interleaving (and therefore its history) is *not* deterministic; only
//! the safety properties are.

#![forbid(unsafe_code)]

pub mod admission;
mod combining;
pub mod front;
pub mod histogram;
pub mod jobs;
mod manager;
pub mod runtime;
mod sharded;
mod snapshot;

pub use admission::{shed_victim, AdmissionPolicy, FairnessConfig, ShedCandidate};
pub use combining::CombinerStats;
pub use front::{
    run_front, Completion, FrontConfig, FrontHandle, JobRequest, SubmitOutcome, Submitter,
};
pub use histogram::LatencyHistogram;
pub use jobs::job_list;
pub use manager::ManagerKind;
pub use runtime::{
    run, run_jobs, JobReport, PriorityMisses, RestartBackoff, RtConfig, RtResult, TenantStats,
};
pub use sharded::ShardStats;
