//! Flat-combining delegation manager (DESIGN.md §6c, "Delegation
//! instead of sharding").
//!
//! The ceiling protocols' `Sysceil` is a global predicate, so the lock
//! table cannot be sharded per item; the alternative to a contended
//! global mutex is *delegation*: a worker publishes its operation into a
//! publication slot, and whichever thread holds the combiner role drains
//! all pending operations in one cache-hot pass — in **descending
//! running-priority order**, the same order the reevaluate rule already
//! mandates, so delegation preserves the real-time semantics instead of
//! merely approximating them.
//!
//! ## Fast path
//!
//! Delegation is worth a slot round-trip only when the protocol state is
//! actually contended. A worker therefore first `try_lock`s the state:
//! if the lock is free it executes its operation inline — byte-for-byte
//! what the mutex manager would do, plus draining any wakes the
//! operation produced — and never touches the publication machinery.
//! Only when the state lock is busy (someone is executing or combining)
//! does the worker publish, and the sitting lock holder then serves the
//! whole backlog in one cache-hot pass. Uncontended runs thus match the
//! mutex manager's cost profile, while contention bursts get batched.
//!
//! ## Slot protocol and combiner handoff
//!
//! Publication uses an intake queue rather than the classic scan-over-
//! slots design: a worker pushes `(op, slot)` into `intake.queue` and, in
//! the *same* critical section, checks `intake.combiner`. If the flag is
//! clear the publisher sets it and becomes the combiner itself; if not,
//! the sitting combiner is guaranteed to see the op, because the combiner
//! only steps down after observing an empty queue — also under the intake
//! lock. Either way exactly one thread is responsible for every published
//! op: the classic flat-combining lost-wakeup window (combiner scans,
//! finds nothing, releases the role just as a slot fills) cannot occur.
//!
//! The combiner executes each operation against the [`Shared`] protocol
//! core (the identical state machine the mutex manager guards) and posts
//! the result into the operation's slot. Operations carry the worker's
//! private [`Workspace`] *by value* — a `Workspace` is three `Vec`s and
//! two words, moving it is pointer-width copies and the buffers keep
//! their capacity — so the grant-time data operation happens inside the
//! combiner pass exactly as it happens inside the mutex critical
//! section.
//!
//! A denied acquire does not occupy the combiner: it is recorded as a
//! [`ParkedOp`] in the instance's bookkeeping and the waiting worker
//! blocks on its own slot. When a re-evaluation would grant the request,
//! the combiner posts [`Response::Retry`] — an *advisory* wake, exactly
//! the mutex manager's semantics: the woken worker re-presents its
//! acquire and competes for the freed capacity on equal terms with every
//! running thread. Binding the grant to the sleeper instead (executing
//! the parked acquire inline on wake) looks cheaper on paper but puts an
//! OS context switch on the critical path of every lock handoff: the
//! freed capacity sits reserved while the sleeper schedules in, and on
//! an oversubscribed box the blocked pile then drains serially at
//! wake-up latency. Advisory wakes keep the manager work-conserving.
//!
//! ## Safety nets
//!
//! Deadlock cycles that form without a new block event are caught by the
//! combiner's end-of-drain sweep: before stepping down with blocked
//! instances outstanding it runs `resolve_deadlocks` once. Waiting
//! workers additionally keep the mutex manager's park-timeout net: a
//! worker whose slot stays empty past the timeout publishes a `Nudge`
//! operation (and self-elects if no combiner sits), which re-presents
//! every pending request. Each firing is counted in
//! [`crate::RtResult::park_timeout_wakeups`]; deterministic replays
//! assert the count is zero.

use crate::histogram::LatencyHistogram;
use crate::manager::{
    CommitOutcome, JobStats, ManagerReport, ManagerTuning, Outcome, ShardCtx, Shared, TryAcquire,
    WorkerCtx,
};
use rtdb_core::ProtocolKind;
use rtdb_storage::Workspace;
use rtdb_types::{InstanceId, ItemId, LockMode, TransactionSet};
use std::cmp::Reverse;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Default for [`crate::RtConfig::park_grace`]: how long a parked acquire
/// stays hot (yield-polling its slot) before falling back to the condvar
/// sleep. Sized to cover a few commit intervals at closed-loop rates,
/// where Retry wakes arrive; catching one while still runnable skips the
/// condvar sleep/wake pair entirely.
pub(crate) const DEFAULT_PARK_GRACE: Duration = Duration::from_micros(200);

/// Bounded slot wait while our op rides in another server's in-flight
/// batch; the response posts as soon as that server re-takes the state
/// lock, so this only bounds against a missed race, not real work.
const IN_FLIGHT_WAIT: Duration = Duration::from_micros(200);

/// Default for [`crate::RtConfig::fast_retries`]: fast-path retries (with
/// a `yield_now` between each) before an op is published for delegation.
/// See `fast_lock`.
pub(crate) const DEFAULT_FAST_RETRIES: u32 = 3;

/// Telemetry of the combining passes, exposed via
/// [`crate::RtResult::combiner`] (all-zero under the mutex manager).
#[derive(Clone, Debug, Default)]
pub struct CombinerStats {
    /// Combining passes executed (batches drained from the intake).
    pub passes: u64,
    /// Published operations executed across all passes.
    pub ops_combined: u64,
    /// Longest single pass, in operations.
    pub max_pass_len: u64,
    /// Distribution of pass lengths (operations per pass).
    pub pass_len: LatencyHistogram,
    /// Time-in-slot (publish → response, ns) per base-priority level,
    /// sorted ascending by level. A parked acquire contributes one entry
    /// per presentation (each Retry wake re-presents it), so the
    /// per-priority asymmetry of slot waits is directly readable.
    pub slot_wait_by_priority: Vec<(u32, LatencyHistogram)>,
}

impl CombinerStats {
    /// Mean operations combined per pass (0 when no pass ran).
    pub fn ops_per_pass(&self) -> f64 {
        if self.passes == 0 {
            0.0
        } else {
            self.ops_combined as f64 / self.passes as f64
        }
    }

    /// All slot waits folded across priority levels.
    pub fn slot_wait_overall(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::new();
        for (_, h) in &self.slot_wait_by_priority {
            all.merge(h);
        }
        all
    }

    pub(crate) fn record_pass(&mut self, len: usize) {
        self.passes += 1;
        self.ops_combined += len as u64;
        self.max_pass_len = self.max_pass_len.max(len as u64);
        self.pass_len.record(len as u64);
    }

    pub(crate) fn record_slot_wait(&mut self, level: u32, wait: Duration) {
        let i = match self
            .slot_wait_by_priority
            .binary_search_by_key(&level, |&(l, _)| l)
        {
            Ok(i) => i,
            Err(i) => {
                self.slot_wait_by_priority
                    .insert(i, (level, LatencyHistogram::new()));
                i
            }
        };
        self.slot_wait_by_priority[i]
            .1
            .record(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Fold another run's stats into this one (used by rtload sweeps).
    pub fn merge(&mut self, other: &CombinerStats) {
        self.passes += other.passes;
        self.ops_combined += other.ops_combined;
        self.max_pass_len = self.max_pass_len.max(other.max_pass_len);
        self.pass_len.merge(&other.pass_len);
        for (level, h) in &other.slot_wait_by_priority {
            let i = match self
                .slot_wait_by_priority
                .binary_search_by_key(level, |&(l, _)| l)
            {
                Ok(i) => i,
                Err(i) => {
                    self.slot_wait_by_priority
                        .insert(i, (*level, LatencyHistogram::new()));
                    i
                }
            };
            self.slot_wait_by_priority[i].1.merge(h);
        }
    }
}

/// A worker's publication slot: the single-use response mailbox for the
/// operation it currently has in flight. One per worker thread, reused
/// across operations (each response is consumed before the next publish).
pub(crate) struct OpSlot {
    resp: Mutex<Option<Response>>,
    cv: Condvar,
}

impl OpSlot {
    pub(crate) fn new() -> Self {
        OpSlot {
            resp: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Deliver the response and wake the waiting publisher.
    pub(crate) fn post(&self, r: Response) {
        let mut g = self
            .resp
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        debug_assert!(g.is_none(), "slot response overwritten");
        *g = Some(r);
        self.cv.notify_one();
    }

    /// Wait up to `timeout` for a response; `None` on timeout.
    fn wait(&self, timeout: Duration) -> Option<Response> {
        let deadline = Instant::now() + timeout;
        let mut g = self
            .resp
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(r) = g.take() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g2, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g = g2;
        }
    }

    /// Non-blocking probe (used after an elected combine pass).
    fn try_take(&self) -> Option<Response> {
        self.resp
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

/// What the combiner posts back through a slot.
pub(crate) enum Response {
    /// The operation completed; the workspace travels back if the
    /// operation carried one.
    Done(Option<Workspace>),
    /// The instance was aborted; restart the job.
    Restart(Workspace),
    /// Commit succeeded.
    Committed(Box<JobStats>, Workspace),
    /// A parked acquire was woken by a re-evaluation: re-present it.
    /// Mirrors the mutex manager's advisory wake — the grant is *not*
    /// reserved for the sleeper, so a running thread can consume the
    /// freed capacity first. Binding the grant to a descheduled thread
    /// (the previous design: re-execute the parked acquire inline and
    /// post the grant) serialized every lock handoff behind an OS
    /// context switch; on an oversubscribed machine the blocked pile
    /// then drains one wake-up at a time while runnable threads spin.
    Retry(Workspace),
}

/// A denied acquire waiting for a re-evaluation to grant it, stored in
/// the instance's [`crate::manager::Meta`]. A wake answers it with
/// [`Response::Retry`] (the worker re-presents the acquire);
/// `abort_victim` answers it with `Restart` directly.
pub(crate) struct ParkedOp {
    pub(crate) ws: Workspace,
    pub(crate) slot: Arc<OpSlot>,
    pub(crate) published: Instant,
}

/// A published operation awaiting a combiner.
enum Op {
    Begin {
        id: InstanceId,
    },
    Acquire {
        id: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ws: Workspace,
    },
    StepDone {
        id: InstanceId,
        completed_step: usize,
        ws: Workspace,
    },
    Commit {
        id: InstanceId,
        ws: Workspace,
    },
    /// Park-timeout safety net: re-present every pending request and run
    /// the deadlock sweep if the nudger is still blocked.
    Nudge {
        id: InstanceId,
    },
}

impl Op {
    fn id(&self) -> InstanceId {
        match *self {
            Op::Begin { id }
            | Op::Acquire { id, .. }
            | Op::StepDone { id, .. }
            | Op::Commit { id, .. }
            | Op::Nudge { id } => id,
        }
    }
}

struct Published {
    op: Op,
    slot: Arc<OpSlot>,
    published: Instant,
}

/// The publication intake. Push-and-check-flag and empty-check-and-clear
/// both happen under this one lock, which makes the combiner handoff
/// race-free: every published op is either seen by the sitting combiner
/// or its publisher self-elects.
struct Intake {
    queue: Vec<Published>,
    combiner: bool,
}

/// The flat-combining lock manager (see module docs for the protocol).
///
/// Lock ordering: `state` → `intake` and `state` → slot mutexes; workers
/// take `intake` alone or their own slot alone. No cycles, hence no
/// manager-level deadlock.
pub(crate) struct CombiningManager<'a> {
    state: Mutex<Shared<'a>>,
    intake: Mutex<Intake>,
    park_timeout: Duration,
    /// Fast-path `try_lock` retries before delegating (see `fast_lock`).
    fast_retries: u32,
    /// Hot-poll window of a parked acquire before the condvar sleep.
    park_grace: Duration,
    /// Worker-side park-timeout firings (merged into the report).
    timeout_wakeups: AtomicU64,
}

impl<'a> CombiningManager<'a> {
    pub(crate) fn new(
        set: &'a TransactionSet,
        kind: ProtocolKind,
        tuning: ManagerTuning,
        snap: Option<Arc<crate::snapshot::SnapshotSide>>,
        shard_ctx: ShardCtx,
    ) -> Self {
        CombiningManager {
            state: Mutex::new(Shared::new(set, kind, true, snap, shard_ctx)),
            intake: Mutex::new(Intake {
                queue: Vec::new(),
                combiner: false,
            }),
            park_timeout: tuning.park_timeout,
            fast_retries: tuning.fast_retries,
            park_grace: tuning.park_grace,
            timeout_wakeups: AtomicU64::new(0),
        }
    }

    fn lock_intake(&self) -> MutexGuard<'_, Intake> {
        self.intake
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_state(&self) -> MutexGuard<'_, Shared<'a>> {
        let mut g = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.state_lock_acquires += 1;
        g
    }

    /// The raw state mutex — the sharded manager's direct cross-shard
    /// access path (see [`crate::manager::LockManager::lock_shared`]).
    pub(crate) fn state_mutex(&self) -> &Mutex<Shared<'a>> {
        &self.state
    }

    /// Drain the woken queue on behalf of an external state-lock holder
    /// (the sharded manager's cross-shard path): every parked op a
    /// re-evaluation woke is answered with `Retry` through its own slot.
    pub(crate) fn drain_woken_external(&self, g: &mut Shared<'a>) {
        let no_slot = Arc::new(OpSlot::new());
        let mut none = None;
        self.drain_woken(g, &no_slot, &mut none);
        debug_assert!(none.is_none());
    }

    /// Publish `op`; returns true if the caller became the combiner.
    fn publish(&self, op: Op, slot: &Arc<OpSlot>, published: Instant) -> bool {
        let mut intake = self.lock_intake();
        intake.queue.push(Published {
            op,
            slot: Arc::clone(slot),
            published,
        });
        if intake.combiner {
            false
        } else {
            intake.combiner = true;
            true
        }
    }

    /// The uncontended fast path's lock attempt: spin-then-delegate.
    /// Try the state lock, and on failure yield-retry a few times
    /// before giving up. State critical sections are microseconds long,
    /// so when the box is oversubscribed the holder usually just needs
    /// the yielded timeslice to finish, and the retry converts a slot
    /// round-trip (a sleep/wake pair) into an inline execution.
    /// Bounded, so a combiner running a long pass still gets the op by
    /// delegation.
    fn fast_lock(&self) -> Option<MutexGuard<'_, Shared<'a>>> {
        use std::sync::TryLockError;
        let mut spins = 0;
        loop {
            let got = match self.state.try_lock() {
                Ok(g) => Some(g),
                Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(TryLockError::WouldBlock) if spins < self.fast_retries => {
                    spins += 1;
                    thread::yield_now();
                    continue;
                }
                Err(TryLockError::WouldBlock) => return None,
            };
            return got.map(|mut g| {
                g.state_lock_acquires += 1;
                g
            });
        }
    }

    /// Fast-path epilogue: count the degenerate length-one pass (keeps
    /// `ops_per_pass` honest — near 1.0 means the manager ran mostly
    /// uncontended) and serve the wakes the inline operation produced.
    /// Returns the response captured for our own slot, which is only
    /// possible when the operation itself parked and a same-pass
    /// re-evaluation answered it.
    fn fast_epilogue(&self, g: &mut Shared<'a>, slot: &Arc<OpSlot>) -> Option<Response> {
        g.combiner.record_pass(1);
        let mut mine = None;
        self.drain_woken(g, slot, &mut mine);
        mine
    }

    /// Delegate an operation the fast path could not run (state lock
    /// busy) and block until its response arrives: publish it, then
    /// either run the combiner ourselves, collect the response a
    /// sitting combiner posted, or serve the backlog when we beat the
    /// combiner to the state lock.
    fn call_slow(&self, id: InstanceId, op: Op, slot: &Arc<OpSlot>) -> Response {
        if self.publish(op, slot, Instant::now()) {
            if let Some(r) = self.combine(slot) {
                return r;
            }
            // Our own op parked and we stepped down; its response
            // arrives through the slot (possibly already posted by
            // `abort_victim` during our own pass).
            if let Some(r) = slot.try_take() {
                return r;
            }
        } else if let Some(r) = self.await_session(id, slot) {
            return r;
        }
        self.parked_wait(id, slot)
    }

    /// A combiner session is active and our op is queued for it. Sleep on
    /// the *state futex* — the same wait the mutex manager's contended
    /// path performs — not on the slot: a condvar round-trip per op is
    /// exactly the oversubscription tax delegation is meant to avoid. On
    /// wake either the sitting combiner already served us (response
    /// waiting in the slot) or we hold the state lock with the session
    /// over — then we serve the whole backlog ourselves, cache-hot.
    /// Returns `None` if the op parked (caller falls through to the slot
    /// wait).
    fn await_session(&self, id: InstanceId, slot: &Arc<OpSlot>) -> Option<Response> {
        let mut batch: Vec<Published> = Vec::new();
        loop {
            if let Some(r) = slot.try_take() {
                return Some(r);
            }
            let mut g = self.lock_state();
            if let Some(r) = slot.try_take() {
                drop(g);
                return Some(r);
            }
            // No response and the state lock is ours: the session that
            // held it executed its ops before releasing (responses post
            // under the state lock), so our op is still in the intake.
            // Serve the backlog — we are a combiner in all but the flag.
            let mut my_resp = None;
            self.serve_backlog(&mut g, &mut batch, slot, &mut my_resp);
            match my_resp {
                Some(r) => return Some(r),
                None if g.view.is_active(id) && g.view.meta(id).parked.is_some() => {
                    return None; // genuinely blocked: park on the slot
                }
                // Raced another server that took our op into its batch
                // mid-swap; its response is imminent — but it needs the
                // state lock we hold to finish executing. Release it and
                // wait on the slot (bounded, in case the response landed
                // between our check and the wait); looping straight back
                // to `lock_state` would barge the lock away from that
                // server and spin a whole scheduler quantum against it.
                None => {
                    drop(g);
                    if let Some(r) = slot.wait(IN_FLIGHT_WAIT) {
                        return Some(r);
                    }
                }
            }
        }
    }

    /// Slot wait for a parked acquire, with the park-timeout safety net.
    ///
    /// Yields before sleeping: the Retry wake is posted inline by
    /// whichever thread runs the releasing commit, so under load it
    /// typically lands within a few scheduler turns. Catching it while
    /// still runnable turns wake → re-present into two queue operations;
    /// taking the condvar sleep immediately would add a full sleep/wake
    /// pair to every block, which is the dominant cost when the box is
    /// oversubscribed. The yield loop keeps the thread hot through that
    /// window at zero cost to others.
    fn parked_wait(&self, id: InstanceId, slot: &Arc<OpSlot>) -> Response {
        let grace = Instant::now() + self.park_grace;
        loop {
            if let Some(r) = slot.try_take() {
                return r;
            }
            if Instant::now() >= grace {
                break;
            }
            thread::yield_now();
        }
        loop {
            match slot.wait(self.park_timeout) {
                Some(r) => return r,
                None => {
                    // Safety net: heal lost wake-ups and cycles that
                    // formed without a block event. The nudge's own
                    // response goes to a throwaway slot.
                    self.timeout_wakeups.fetch_add(1, Ordering::Relaxed);
                    let nudge_slot = Arc::new(OpSlot::new());
                    if self.publish(Op::Nudge { id }, &nudge_slot, Instant::now()) {
                        if let Some(r) = self.combine(slot) {
                            return r;
                        }
                    }
                }
            }
        }
    }

    /// Run the combiner until the intake drains. Returns the response to
    /// the caller's own operation if it completed during the run (`None`
    /// if it parked — the caller then waits on its slot like everyone
    /// else).
    fn combine(&self, my_slot: &Arc<OpSlot>) -> Option<Response> {
        let mut my_resp = None;
        let mut batch: Vec<Published> = Vec::new();
        let mut swept = false;
        let mut g = self.lock_state();
        loop {
            if self.serve_backlog(&mut g, &mut batch, my_slot, &mut my_resp) {
                swept = false;
                continue;
            }
            // Before stepping down with blocked instances outstanding,
            // sweep once for wait-for cycles that formed without a
            // fresh block event (the mutex manager relies on the park
            // timeout for these; here detection is deterministic).
            if !swept && g.has_blocked() {
                swept = true;
                g.resolve_deadlocks();
                self.drain_woken(&mut g, my_slot, &mut my_resp);
                continue;
            }
            let mut intake = self.lock_intake();
            if intake.queue.is_empty() {
                intake.combiner = false;
                return my_resp;
            }
            // New arrivals raced the sweep; keep combining.
        }
    }

    /// Swap out the intake backlog and serve it in one pass. Returns
    /// false when the backlog was empty. Requires the state lock; any
    /// holder may serve, combiner flag or not — the flag only guarantees
    /// *someone* is responsible for the queue, not who.
    fn serve_backlog(
        &self,
        g: &mut Shared<'a>,
        batch: &mut Vec<Published>,
        my_slot: &Arc<OpSlot>,
        my_resp: &mut Option<Response>,
    ) -> bool {
        {
            let mut intake = self.lock_intake();
            debug_assert!(intake.combiner);
            mem::swap(&mut intake.queue, batch);
        }
        if batch.is_empty() {
            return false;
        }
        // Serve in descending running-priority order — the order the
        // reevaluate rule mandates — with the simulator's tie-break
        // (base priority, then earliest instance). Begin ops have no
        // registered running priority yet; their base stands in.
        batch.sort_by_key(|p| {
            let id = p.op.id();
            let base = g.view.set.priority_of(id.txn);
            let running = if g.view.is_active(id) {
                g.view.pm.running(id)
            } else {
                base
            };
            Reverse((running, base, Reverse(id.seq)))
        });
        g.combiner.record_pass(batch.len());
        for p in batch.drain(..) {
            let Published {
                op,
                slot,
                published,
            } = p;
            self.exec_op(g, op, &slot, Some(published), my_slot, my_resp);
            self.drain_woken(g, my_slot, my_resp);
        }
        true
    }

    /// Execute one operation against the shared core and answer its
    /// slot. `published` is the publication timestamp for delegated ops
    /// (`None` on the fast path, which never sits in a slot).
    fn exec_op(
        &self,
        g: &mut Shared<'a>,
        op: Op,
        slot: &Arc<OpSlot>,
        published: Option<Instant>,
        my_slot: &Arc<OpSlot>,
        my_resp: &mut Option<Response>,
    ) {
        match op {
            Op::Begin { id } => {
                g.begin(id);
                respond(
                    g,
                    id,
                    slot,
                    published,
                    Response::Done(None),
                    my_slot,
                    my_resp,
                );
            }
            Op::Acquire {
                id,
                step_index,
                item,
                mode,
                ws,
            } => {
                self.exec_acquire(
                    g, id, step_index, item, mode, ws, slot, published, my_slot, my_resp,
                );
            }
            Op::StepDone {
                id,
                completed_step,
                ws,
            } => {
                let r = if g.take_abort(id) {
                    Response::Restart(ws)
                } else {
                    g.step_done_inner(id, completed_step, &ws);
                    Response::Done(Some(ws))
                };
                respond(g, id, slot, published, r, my_slot, my_resp);
            }
            Op::Commit { id, ws } => {
                let r = if g.take_abort(id) {
                    Response::Restart(ws)
                } else if g.gate_commit(id) {
                    if g.take_abort(id) {
                        // The gate's own deadlock sweep picked us.
                        Response::Restart(ws)
                    } else {
                        // Park the commit at the gate; the drain wake of
                        // the last dependency's commit answers `Retry`
                        // and the worker re-presents the commit (a
                        // cascading abort answers `Restart` directly).
                        let m = g.view.meta_mut(id);
                        debug_assert!(m.parked.is_none(), "double park for {id:?}");
                        m.parked = Some(ParkedOp {
                            ws,
                            slot: Arc::clone(slot),
                            published: published.unwrap_or_else(Instant::now),
                        });
                        return;
                    }
                } else {
                    let stats = g.commit_inner(id, &ws);
                    Response::Committed(Box::new(stats), ws)
                };
                respond(g, id, slot, published, r, my_slot, my_resp);
            }
            Op::Nudge { id } => {
                g.reevaluate();
                if g.has_blocked() {
                    // Lock waits *or* gate waits outstanding: sweep for
                    // cycles (the nudger may be parked at the commit
                    // gate, where it has no pending request).
                    g.resolve_deadlocks();
                }
                respond(
                    g,
                    id,
                    slot,
                    published,
                    Response::Done(None),
                    my_slot,
                    my_resp,
                );
            }
        }
    }

    /// Execute an acquire to completion or park it. Mirrors the mutex
    /// manager's `acquire` loop, except a denial records a [`ParkedOp`]
    /// instead of parking the calling thread.
    #[allow(clippy::too_many_arguments)]
    fn exec_acquire(
        &self,
        g: &mut Shared<'a>,
        id: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        mut ws: Workspace,
        slot: &Arc<OpSlot>,
        published: Option<Instant>,
        my_slot: &Arc<OpSlot>,
        my_resp: &mut Option<Response>,
    ) {
        loop {
            if g.take_abort(id) {
                respond(
                    g,
                    id,
                    slot,
                    published,
                    Response::Restart(ws),
                    my_slot,
                    my_resp,
                );
                return;
            }
            match g.try_acquire(id, step_index, item, mode, &mut ws) {
                TryAcquire::Done => {
                    respond(
                        g,
                        id,
                        slot,
                        published,
                        Response::Done(Some(ws)),
                        my_slot,
                        my_resp,
                    );
                    return;
                }
                TryAcquire::Retry => continue,
                TryAcquire::Park(_cv) => {
                    // Delegated parking: the request stays pending in the
                    // shared state; the publisher waits on its slot. A
                    // fast-path park starts its slot wait here, so the
                    // wait clock starts now.
                    let m = g.view.meta_mut(id);
                    debug_assert!(m.parked.is_none(), "double park for {id:?}");
                    m.parked = Some(ParkedOp {
                        ws,
                        slot: Arc::clone(slot),
                        published: published.unwrap_or_else(Instant::now),
                    });
                    return;
                }
            }
        }
    }

    /// Answer every parked acquire a re-evaluation woke with
    /// [`Response::Retry`]: the waiting worker re-presents the request
    /// itself. The wake is advisory, not a reservation — see the
    /// `Retry` variant for why binding the grant to a sleeping thread
    /// collapses throughput under oversubscription.
    fn drain_woken(
        &self,
        g: &mut Shared<'a>,
        my_slot: &Arc<OpSlot>,
        my_resp: &mut Option<Response>,
    ) {
        while !g.woken_queue.is_empty() {
            let woken = mem::take(&mut g.woken_queue);
            for id in woken {
                if !g.view.is_active(id) {
                    continue; // committed after a stale wake
                }
                let Some(p) = g.view.meta_mut(id).parked.take() else {
                    continue; // stale: granted or aborted within its own pass
                };
                respond(
                    g,
                    id,
                    &p.slot,
                    Some(p.published),
                    Response::Retry(p.ws),
                    my_slot,
                    my_resp,
                );
            }
        }
    }

    // The public methods below each try a mutex-style inline fast path
    // first: with the state lock in hand, operate on the borrowed
    // `&mut ctx.ws` exactly as the mutex manager does, so the
    // uncontended case pays no `Op`/`Response` moves and no workspace
    // re-initialisation. The workspace is moved into a delegation `Op`
    // only when the state lock is actually busy (or when an acquire
    // parks and the workspace must outlive our stack frame).

    pub(crate) fn begin(&self, id: InstanceId, ctx: &mut WorkerCtx) {
        if let Some(mut g) = self.fast_lock() {
            g.begin(id);
            let mine = self.fast_epilogue(&mut g, &ctx.slot);
            debug_assert!(mine.is_none(), "begin never parks");
            return;
        }
        match self.call_slow(id, Op::Begin { id }, &ctx.slot) {
            Response::Done(None) => {}
            _ => unreachable!("begin returns a bare Done"),
        }
    }

    pub(crate) fn acquire(
        &self,
        id: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ctx: &mut WorkerCtx,
    ) -> Outcome {
        loop {
            let resp = if let Some(mut g) = self.fast_lock() {
                let granted = loop {
                    if g.take_abort(id) {
                        break Some(Outcome::Restart);
                    }
                    match g.try_acquire(id, step_index, item, mode, &mut ctx.ws) {
                        TryAcquire::Done => break Some(Outcome::Done),
                        TryAcquire::Retry => continue,
                        TryAcquire::Park(_cv) => break None,
                    }
                };
                if let Some(out) = granted {
                    let mine = self.fast_epilogue(&mut g, &ctx.slot);
                    debug_assert!(mine.is_none(), "response for an unparked op");
                    return out;
                }
                // Denied: the request stays pending in the shared state;
                // move the workspace out so it survives while we sleep on
                // the slot. The wait clock starts now — the op never sat
                // in a publication slot.
                let ws = mem::replace(&mut ctx.ws, Workspace::new(id));
                let m = g.view.meta_mut(id);
                debug_assert!(m.parked.is_none(), "double park for {id:?}");
                m.parked = Some(ParkedOp {
                    ws,
                    slot: Arc::clone(&ctx.slot),
                    published: Instant::now(),
                });
                // A same-pass re-evaluation can wake the op we just
                // parked; `fast_epilogue` then answers our own slot.
                let mine = self.fast_epilogue(&mut g, &ctx.slot);
                drop(g);
                mine.unwrap_or_else(|| self.parked_wait(id, &ctx.slot))
            } else {
                let ws = mem::replace(&mut ctx.ws, Workspace::new(id));
                let op = Op::Acquire {
                    id,
                    step_index,
                    item,
                    mode,
                    ws,
                };
                self.call_slow(id, op, &ctx.slot)
            };
            match resp {
                Response::Done(Some(w)) => {
                    ctx.ws = w;
                    return Outcome::Done;
                }
                Response::Restart(w) => {
                    ctx.ws = w;
                    return Outcome::Restart;
                }
                // Advisory wake: the pending request is still registered;
                // re-present it (and race everyone else for the freed
                // capacity, exactly like the mutex manager's wake path).
                Response::Retry(w) => ctx.ws = w,
                _ => unreachable!("acquire returns Done(ws), Restart(ws), or Retry(ws)"),
            }
        }
    }

    pub(crate) fn step_done(
        &self,
        id: InstanceId,
        completed_step: usize,
        ctx: &mut WorkerCtx,
    ) -> Outcome {
        if let Some(mut g) = self.fast_lock() {
            let out = if g.take_abort(id) {
                Outcome::Restart
            } else {
                g.step_done_inner(id, completed_step, &ctx.ws);
                Outcome::Done
            };
            let mine = self.fast_epilogue(&mut g, &ctx.slot);
            debug_assert!(mine.is_none(), "step_done never parks");
            return out;
        }
        let ws = mem::replace(&mut ctx.ws, Workspace::new(id));
        let op = Op::StepDone {
            id,
            completed_step,
            ws,
        };
        match self.call_slow(id, op, &ctx.slot) {
            Response::Done(Some(ws)) => {
                ctx.ws = ws;
                Outcome::Done
            }
            Response::Restart(ws) => {
                ctx.ws = ws;
                Outcome::Restart
            }
            _ => unreachable!("step_done returns Done(ws) or Restart(ws)"),
        }
    }

    pub(crate) fn commit(&self, id: InstanceId, ctx: &mut WorkerCtx) -> CommitOutcome {
        loop {
            let resp = if let Some(mut g) = self.fast_lock() {
                let out = if g.take_abort(id) {
                    Some(CommitOutcome::Restart)
                } else if !g.gate_commit(id) {
                    Some(CommitOutcome::Committed(g.commit_inner(id, &ctx.ws)))
                } else if g.take_abort(id) {
                    // The gate's own deadlock sweep picked us.
                    Some(CommitOutcome::Restart)
                } else {
                    None
                };
                if let Some(out) = out {
                    let mine = self.fast_epilogue(&mut g, &ctx.slot);
                    debug_assert!(mine.is_none(), "response for an unparked op");
                    return out;
                }
                // Gated: park the commit op at the gate; the drain wake
                // answers `Retry` through the slot, a cascading abort
                // answers `Restart`. The workspace moves out so it
                // survives while we sleep.
                let ws = mem::replace(&mut ctx.ws, Workspace::new(id));
                let m = g.view.meta_mut(id);
                debug_assert!(m.parked.is_none(), "double park for {id:?}");
                m.parked = Some(ParkedOp {
                    ws,
                    slot: Arc::clone(&ctx.slot),
                    published: Instant::now(),
                });
                // A same-pass wake can answer the op we just parked.
                let mine = self.fast_epilogue(&mut g, &ctx.slot);
                drop(g);
                mine.unwrap_or_else(|| self.parked_wait(id, &ctx.slot))
            } else {
                let ws = mem::replace(&mut ctx.ws, Workspace::new(id));
                self.call_slow(id, Op::Commit { id, ws }, &ctx.slot)
            };
            match resp {
                Response::Committed(stats, ws) => {
                    ctx.ws = ws;
                    return CommitOutcome::Committed(*stats);
                }
                Response::Restart(ws) => {
                    ctx.ws = ws;
                    return CommitOutcome::Restart;
                }
                // Gate drained (or advisory wake): re-present the commit.
                Response::Retry(ws) => ctx.ws = ws,
                _ => unreachable!("commit returns Committed, Restart, or Retry"),
            }
        }
    }

    pub(crate) fn finish(self) -> ManagerReport {
        let extra = self.timeout_wakeups.load(Ordering::Relaxed);
        self.state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .into_report(extra)
    }
}

/// Post `resp` through `slot`, recording its time-in-slot under the
/// instance's base-priority level. The combiner's own operation short-
/// circuits into `my_resp` instead of a slot round-trip.
fn respond(
    g: &mut Shared<'_>,
    id: InstanceId,
    slot: &Arc<OpSlot>,
    published: Option<Instant>,
    resp: Response,
    my_slot: &Arc<OpSlot>,
    my_resp: &mut Option<Response>,
) {
    if let Some(published) = published {
        let level = g.view.set.priority_of(id.txn).level();
        g.combiner.record_slot_wait(level, published.elapsed());
    }
    if Arc::ptr_eq(slot, my_slot) {
        debug_assert!(my_resp.is_none(), "two responses for one op");
        *my_resp = Some(resp);
    } else {
        slot.post(resp);
    }
}
