//! Runtime side-car for the multiversion snapshot read path.
//!
//! When [`crate::RtConfig::snapshot_reads`] is on and the protocol's
//! update model permits it (see `ProtocolKind::snapshot_exempt`), jobs
//! whose template is read-only bypass the lock manager entirely: they pin
//! a commit stamp on the shared [`SnapshotStore`], resolve every read
//! against the bounded version chains, and commit without a single
//! protocol decision, lock-table transition, block or abort. Writers are
//! untouched — their commits publish installed versions into the store
//! from inside the commit critical section they already hold.
//!
//! Reader events cannot go through the manager's history (that would
//! reintroduce the shared lock the path exists to avoid), so each reader
//! records its events locally and this side-car merges them into the
//! run's [`History`] after the workers join. The serializability oracle
//! places each reader at its commit stamp, not at its history position,
//! so the merge order is immaterial.

use rtdb_storage::{EventKind, History, SnapshotStore, Version};
use rtdb_types::{InstanceId, ItemId, TransactionSet, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One committed snapshot reader's local event log. The reader's stamp
/// travels through its `JobStats`/`JobReport` instead — the history only
/// needs the observed values and versions.
pub(crate) struct ReaderLog {
    pub(crate) id: InstanceId,
    /// `(item, value, version)` per data read, in step order.
    pub(crate) reads: Vec<(ItemId, Value, Version)>,
}

/// Shared state of the snapshot read path: the concurrent version store
/// plus the reader-side commit logs merged into the history at the end
/// of the run. One per run, created only when the path is enabled. Logs
/// are sharded per worker — each worker only ever touches its own slot,
/// so reader commits never contend on a shared collection (the mutexes
/// exist only to keep the type `Sync` for the end-of-run merge).
pub(crate) struct SnapshotSide {
    pub(crate) store: SnapshotStore,
    logs: Vec<Mutex<Vec<ReaderLog>>>,
    committed: AtomicU64,
}

impl SnapshotSide {
    pub(crate) fn new(n_items: usize, n_workers: usize) -> Self {
        SnapshotSide {
            store: SnapshotStore::new(n_items, n_workers),
            logs: (0..n_workers.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            committed: AtomicU64::new(0),
        }
    }

    /// Store sized for every item `set` can touch.
    pub(crate) fn for_set(set: &TransactionSet, n_workers: usize) -> Self {
        let n_items = set
            .items()
            .iter()
            .next_back()
            .map_or(0, |i| i.0 as usize + 1);
        SnapshotSide::new(n_items, n_workers)
    }

    /// Record one reader's commit from worker `worker`; returns its
    /// zero-based ordinal in the reader commit stream (the caller offsets
    /// it past the lock-path commits once their total is known).
    pub(crate) fn commit_reader(&self, worker: usize, log: ReaderLog) -> u64 {
        let ordinal = self.committed.fetch_add(1, Ordering::Relaxed);
        self.logs[worker]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(log);
        ordinal
    }

    /// Readers committed so far.
    pub(crate) fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Append every reader's Begin/Read/Commit events to `history`.
    /// Ticks continue past the manager's clock; they only order the log
    /// for human readers — the oracle positions snapshot readers by
    /// their commit stamp.
    pub(crate) fn merge_into(&self, history: &mut History) {
        let mut at = history.events().last().map_or(0, |e| e.at.0);
        for slot in &self.logs {
            let logs = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for log in logs.iter() {
                at += 1;
                history.push(rtdb_types::Tick(at), log.id, EventKind::Begin);
                for &(item, value, version) in &log.reads {
                    at += 1;
                    history.push(
                        rtdb_types::Tick(at),
                        log.id,
                        EventKind::Read {
                            item,
                            value,
                            version,
                            own: false,
                        },
                    );
                }
                at += 1;
                history.push(rtdb_types::Tick(at), log.id, EventKind::Commit);
            }
        }
    }
}
