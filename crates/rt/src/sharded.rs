//! The sharded lock-manager architecture (DESIGN.md §6e).
//!
//! [`ShardedManager`] partitions the protocol state across `N`
//! independent [`LockManager`]s — one per shard, each its own
//! [`crate::ManagerKind`] instance with local ceilings, wait queues and
//! history — routed by the static [`ShardRouter`] rule shared with the
//! simulator and the workload generator. A thin [`GlobalCeiling`] layer
//! publishes each shard's local system ceiling lock-free, so *single-
//! shard* transactions touch exactly one shard's state mutex (asserted
//! via the per-shard `state_lock_acquires` counter) and scale with the
//! shard count.
//!
//! Cross-shard transactions follow a DPCP-p-style global rule:
//!
//! * **Advisory admission** — before registering anywhere, spin (bounded)
//!   until the transaction's priority clears the published ceiling max of
//!   every shard it will touch. Advisory only: a stale read can delay or
//!   admit early, never corrupt shard state.
//! * **Canonical-order registration** — register in every touched shard
//!   in ascending shard order (the *home* shard — the lowest — logs the
//!   Begin event), carrying one shared abort signal.
//! * **No-wait execution** — a cross-shard transaction never parks inside
//!   any shard. A protocol decision that would block it is undone on the
//!   spot and the transaction self-aborts: it releases everything in
//!   every shard (ascending) and restarts through the normal backoff.
//!   Every wait edge is therefore *intra*-shard, each shard's local
//!   deadlock sweep stays complete, and no global detector is needed.
//! * **Gated commit** — commit locks all touched shards in canonical
//!   order, then serializes {commit tick, per-shard installs, snapshot
//!   publish, commit index} through the run-global commit gate, so
//!   commit-tick order, commit-index order and snapshot-stamp order agree
//!   across shards.
//!
//! Aborts of a cross-shard victim are split: the aborting shard cleans
//! its local slice silently and raises the victim's signal; the victim
//! observes the signal at its next manager call and sweeps its remaining
//! shards itself, logging exactly one Abort + restart-Begin pair in its
//! home shard.
//!
//! With one shard the whole layer is a pass-through: no router, no global
//! ceiling, no gate — the state machine is bit-identical to the
//! pre-sharding manager.

use crate::manager::{
    CommitOutcome, JobStats, LockManager, ManagerReport, ManagerTuning, Outcome, ShardCtx, Shared,
    TryAcquire, WorkerCtx,
};
use crate::runtime::RtConfig;
use crate::snapshot::SnapshotSide;
use rtdb_core::{AbortReason, GlobalCeiling, ShardRouter, ShardSet, MAX_SHARDS};
use rtdb_storage::{Database, Event, EventKind, History, VersionedValue};
use rtdb_types::{InstanceId, ItemId, LockMode, TransactionSet, TxnId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// How long a cross-shard transaction spins on the advisory global-
/// ceiling admission test before proceeding anyway. Bounded because the
/// test is advisory — correctness never depends on it.
const ADMISSION_SPIN: u32 = 64;

/// Cross-shard state of the job currently executing on a worker, carried
/// in [`WorkerCtx`] so the signal poll costs no lock.
#[derive(Clone)]
pub(crate) struct CrossJob {
    /// The shared abort signal, registered in every touched shard's meta.
    pub signal: Arc<AtomicBool>,
    /// The shards this job touches (canonical iteration order).
    pub shards: ShardSet,
    /// Aborts absorbed so far (cross-shard jobs bypass the per-shard
    /// restart counters).
    pub restarts: u32,
    /// Would-block decisions converted to self-aborts.
    pub block_events: u32,
}

/// Per-shard telemetry, reported in [`crate::RtResult::per_shard`].
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// Data operations routed to this shard.
    pub ops: u64,
    /// Commits whose home was this shard (cross-shard commits count once,
    /// at their home shard).
    pub commits: u64,
    /// Times this shard's state mutex was acquired. The shard-isolation
    /// assertion: a run whose transactions all live in shard `s` leaves
    /// every other shard's counter at zero.
    pub state_lock_acquires: u64,
    /// Times this shard published its local ceiling to the global layer.
    pub ceiling_publishes: u64,
}

/// Everything [`ShardedManager::finish`] produced: the merged report plus
/// the shard-level telemetry.
pub(crate) struct ShardedReport {
    pub report: ManagerReport,
    pub per_shard: Vec<ShardStats>,
    pub cross_shard_txns: u64,
}

/// The sharded lock manager: `N` independent per-shard managers plus the
/// cross-shard coordination described in the module docs.
pub(crate) struct ShardedManager<'a> {
    set: &'a TransactionSet,
    shards: Vec<LockManager<'a>>,
    router: ShardRouter,
    /// `Some` exactly when `shards.len() > 1`.
    global: Option<Arc<GlobalCeiling>>,
    gate: Option<Arc<Mutex<u64>>>,
    /// Per-template shard sets, precomputed (index = `TxnId::index`).
    template_shards: Vec<ShardSet>,
    /// Data operations routed to each shard.
    ops: Vec<AtomicU64>,
    /// Cross-shard jobs begun.
    cross_shard_txns: AtomicU64,
    /// Cross-shard self-abort restarts (per-shard counters skip them).
    cross_restarts: AtomicU64,
}

impl<'a> ShardedManager<'a> {
    pub(crate) fn new(
        set: &'a TransactionSet,
        config: &RtConfig,
        snap: Option<Arc<SnapshotSide>>,
    ) -> Self {
        let n = config.shards.clamp(1, MAX_SHARDS);
        if n > 1 {
            assert!(
                config.kind.shardable(),
                "{} cannot run sharded; shardable protocols: {}",
                config.kind.name(),
                rtdb_core::ProtocolKind::ALL
                    .iter()
                    .filter(|k| k.shardable())
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        let tuning = ManagerTuning {
            park_timeout: config.park_timeout,
            fast_retries: config.fast_retries,
            park_grace: config.park_grace,
        };
        let router = ShardRouter::new(n);
        let (global, gate, clock) = if n > 1 {
            (
                Some(Arc::new(GlobalCeiling::new(n))),
                Some(Arc::new(Mutex::new(0u64))),
                Arc::new(AtomicU64::new(0)),
            )
        } else {
            (None, None, Arc::new(AtomicU64::new(0)))
        };
        let shards = (0..n)
            .map(|s| {
                let ctx = if n > 1 {
                    ShardCtx {
                        clock: clock.clone(),
                        shard: s,
                        router: Some(router),
                        global: global.clone(),
                        gate: gate.clone(),
                    }
                } else {
                    ShardCtx::single()
                };
                LockManager::new(set, config.kind, config.manager, tuning, snap.clone(), ctx)
            })
            .collect();
        let template_shards = (0..set.len())
            .map(|t| router.shards_of(set, TxnId(t as u32)))
            .collect();
        ShardedManager {
            set,
            shards,
            router,
            global,
            gate,
            template_shards,
            ops: (0..n).map(|_| AtomicU64::new(0)).collect(),
            cross_shard_txns: AtomicU64::new(0),
            cross_restarts: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shards_of(&self, id: InstanceId) -> ShardSet {
        self.template_shards[id.txn.index()]
    }

    #[inline]
    fn home_of(&self, id: InstanceId) -> usize {
        self.shards_of(id)
            .home()
            .expect("template has a home shard")
    }

    /// Register a released instance. Cross-shard instances register in
    /// every touched shard (canonical order) behind the advisory
    /// admission spin; single-shard instances delegate to their shard.
    pub(crate) fn begin(&self, id: InstanceId, ctx: &mut WorkerCtx) {
        let touched = self.shards_of(id);
        if !touched.is_cross_shard() {
            ctx.cross = None;
            self.shards[self.home_of(id)].begin(id, ctx);
            return;
        }
        self.cross_shard_txns.fetch_add(1, Ordering::Relaxed);
        if let Some(global) = &self.global {
            let prio = self.set.priority_of(id.txn);
            for _ in 0..ADMISSION_SPIN {
                if global.cleared_by(prio, touched) {
                    break;
                }
                std::thread::yield_now();
            }
        }
        let signal = Arc::new(AtomicBool::new(false));
        let home = touched.home().expect("cross-shard set is non-empty");
        for s in touched.iter() {
            let mut g = self.shards[s].lock_shared();
            g.begin_sharded(id, s == home, Some(signal.clone()));
            drop(g);
        }
        ctx.cross = Some(CrossJob {
            signal,
            shards: touched,
            restarts: 0,
            block_events: 0,
        });
    }

    /// Acquire `item` for step `step_index`. Single-shard jobs park in
    /// their shard as usual; cross-shard jobs run no-wait — a would-block
    /// decision is undone and the job self-aborts everywhere.
    pub(crate) fn acquire(
        &self,
        id: InstanceId,
        step_index: usize,
        item: ItemId,
        mode: LockMode,
        ctx: &mut WorkerCtx,
    ) -> Outcome {
        let s = self.router.shard_of(item);
        self.ops[s].fetch_add(1, Ordering::Relaxed);
        let Some(cross) = ctx.cross.clone() else {
            return self.shards[s].acquire(id, step_index, item, mode, ctx);
        };
        debug_assert!(cross.shards.contains(s), "routing disagrees with template");
        loop {
            if cross.signal.load(Ordering::Acquire) {
                self.cleanup_restart(id, ctx);
                return Outcome::Restart;
            }
            let mut g = self.shards[s].lock_shared();
            if cross.signal.load(Ordering::Acquire) {
                drop(g);
                self.cleanup_restart(id, ctx);
                return Outcome::Restart;
            }
            match g.try_acquire(id, step_index, item, mode, &mut ctx.ws) {
                TryAcquire::Done => {
                    self.shards[s].drain_woken_external(&mut g);
                    return Outcome::Done;
                }
                TryAcquire::Retry => {
                    self.shards[s].drain_woken_external(&mut g);
                    drop(g);
                    // The retry may be an abort in disguise (a deadlock
                    // sweep inside try_acquire picked us); the loop head
                    // polls the signal before re-issuing.
                    continue;
                }
                TryAcquire::Park(_) => {
                    // No-wait: undo the blocked registration and
                    // self-abort instead of parking in someone else's
                    // shard.
                    g.view.pm.clear_blocked(id);
                    let m = g.view.meta_mut(id);
                    m.pending = None;
                    m.woken = false;
                    self.shards[s].drain_woken_external(&mut g);
                    drop(g);
                    if let Some(c) = ctx.cross.as_mut() {
                        c.block_events += 1;
                    }
                    self.cleanup_restart(id, ctx);
                    return Outcome::Restart;
                }
            }
        }
    }

    /// Report step `completed_step` finished. Cross-shard jobs only poll
    /// their abort signal: every shardable protocol runs the workspace
    /// update model with no early releases, so there is nothing to apply.
    pub(crate) fn step_done(
        &self,
        id: InstanceId,
        completed_step: usize,
        ctx: &mut WorkerCtx,
    ) -> Outcome {
        let Some(cross) = ctx.cross.clone() else {
            return self.shards[self.home_of(id)].step_done(id, completed_step, ctx);
        };
        if cross.signal.load(Ordering::Acquire) {
            self.cleanup_restart(id, ctx);
            return Outcome::Restart;
        }
        Outcome::Done
    }

    /// Commit `id`. Cross-shard commits lock every touched shard in
    /// canonical order, then run the gated global commit described in the
    /// module docs.
    pub(crate) fn commit(&self, id: InstanceId, ctx: &mut WorkerCtx) -> CommitOutcome {
        let Some(cross) = ctx.cross.clone() else {
            return self.shards[self.home_of(id)].commit(id, ctx);
        };
        if cross.signal.load(Ordering::Acquire) {
            self.cleanup_restart(id, ctx);
            return CommitOutcome::Restart;
        }
        let shard_ids: Vec<usize> = cross.shards.iter().collect();
        let mut guards: Vec<MutexGuard<'_, Shared<'a>>> = shard_ids
            .iter()
            .map(|&s| self.shards[s].lock_shared())
            .collect();
        // All our shards' state is held, and aborting us requires one of
        // those locks — the signal is stable now.
        if cross.signal.load(Ordering::Acquire) {
            drop(guards);
            self.cleanup_restart(id, ctx);
            return CommitOutcome::Restart;
        }

        // Per-shard commit victims (OCC backward validation etc.), on the
        // shard-filtered mirrors each shard maintains.
        for g in guards.iter_mut() {
            let victims = g.protocol_commit_victims(id);
            for v in victims {
                if v != id {
                    g.abort_victim(v, AbortReason::Wound);
                }
            }
        }

        // The gated global commit: one tick, per-shard installs at that
        // tick, one snapshot publish, one commit index.
        let gate = self.gate.as_ref().expect("cross-shard implies a gate");
        let mut gate_guard = gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let at = guards[0].tick();
        guards[0].history.push(at, id, EventKind::Commit);
        let mut batch: Vec<(ItemId, VersionedValue)> = Vec::new();
        for (k, &s) in shard_ids.iter().enumerate() {
            let g = &mut guards[k];
            let publish = g.snap.is_some();
            for &(item, value) in ctx.ws.staged_writes() {
                if self.router.shard_of(item) != s {
                    continue;
                }
                let version = g.db.install(id, item, value, at);
                g.history.push(
                    at,
                    id,
                    EventKind::Install {
                        item,
                        value,
                        version,
                    },
                );
                if publish {
                    batch.push((
                        item,
                        VersionedValue {
                            value,
                            version,
                            writer: Some(id),
                            installed_at: at,
                        },
                    ));
                }
            }
        }
        // Seal this commit's stamp exactly once (even with no writes), as
        // the single-shard path does — the gate serializes publishers.
        if let Some(side) = guards[0].snap.clone() {
            side.store.publish(&batch);
        }
        let commit_index = {
            let next = &mut *gate_guard;
            let i = *next;
            *next += 1;
            i
        };
        drop(gate_guard);
        guards[0].commits += 1;

        // Per-shard teardown, in canonical order.
        let mut lower_blockers: Vec<TxnId> = Vec::new();
        for (k, &s) in shard_ids.iter().enumerate() {
            let g = &mut guards[k];
            let meta = g.remove_instance(id);
            for t in meta.lower_blockers {
                if let Err(i) = lower_blockers.binary_search(&t) {
                    lower_blockers.insert(i, t);
                }
            }
            g.reevaluate();
            g.maybe_publish_ceiling();
            self.shards[s].drain_woken_external(&mut guards[k]);
        }
        drop(guards);

        let stats = JobStats {
            commit_index,
            restarts: cross.restarts,
            block_events: cross.block_events,
            lower_blockers,
            snapshot: None,
        };
        ctx.cross = None;
        CommitOutcome::Committed(stats)
    }

    /// The cross-shard abort sweep: one ascending pass over the job's
    /// shards releasing everything, logging the single Abort +
    /// restart-Begin pair in the home shard, then lowering the signal.
    /// Runs whether the abort was external (signal raised by another
    /// shard's deadlock sweep or commit validation) or a no-wait
    /// self-abort (signal never raised).
    fn cleanup_restart(&self, id: InstanceId, ctx: &mut WorkerCtx) {
        let cross = ctx.cross.as_mut().expect("cross-shard job");
        cross.restarts += 1;
        self.cross_restarts.fetch_add(1, Ordering::Relaxed);
        let home = cross.shards.home().expect("cross-shard set is non-empty");
        for s in cross.shards.iter() {
            let mut g = self.shards[s].lock_shared();
            if s == home {
                let at = g.tick();
                g.history.push(at, id, EventKind::Abort);
            }
            g.abort_local_cross(id);
            if s == home {
                // The restart's Begin lands *after* any stray operations
                // the doomed attempt logged, so position-based oracles
                // (committed reads) see only the committing attempt.
                let at = g.tick();
                g.history.push(at, id, EventKind::Begin);
            }
            g.reevaluate();
            g.maybe_publish_ceiling();
            self.shards[s].drain_woken_external(&mut g);
        }
        cross.signal.store(false, Ordering::Release);
    }

    /// Tear down after every worker joined: merge the per-shard
    /// histories by tick, absorb the per-shard databases and sum the
    /// counters.
    pub(crate) fn finish(self) -> ShardedReport {
        let cross_shard_txns = self.cross_shard_txns.load(Ordering::Relaxed);
        let cross_restarts = self.cross_restarts.load(Ordering::Relaxed);
        let ops: Vec<u64> = self.ops.iter().map(|o| o.load(Ordering::Relaxed)).collect();
        let reports: Vec<ManagerReport> = self.shards.into_iter().map(|m| m.finish()).collect();
        let per_shard: Vec<ShardStats> = reports
            .iter()
            .map(|r| ShardStats {
                shard: r.shard,
                ops: ops[r.shard],
                commits: r.commits,
                state_lock_acquires: r.state_lock_acquires,
                ceiling_publishes: self.global.as_ref().map_or(0, |g| g.publish_count(r.shard)),
            })
            .collect();
        if reports.len() == 1 {
            let report = reports.into_iter().next().expect("one shard");
            return ShardedReport {
                report,
                per_shard,
                cross_shard_txns,
            };
        }

        // Merge: concatenate the shard event streams in ascending shard
        // order and stable-sort by tick. The shared clock makes ticks
        // globally unique except for cross-shard commits, which log their
        // Commit (home shard) and off-home Installs at one tick — the
        // home shard is the lowest touched, so concatenation order
        // already places the Commit first and the stable sort keeps it
        // there.
        let mut events: Vec<Event> =
            Vec::with_capacity(reports.iter().map(|r| r.history.events().len()).sum());
        for r in &reports {
            events.extend_from_slice(r.history.events());
        }
        events.sort_by_key(|e| e.at);
        let mut history = History::new();
        history.reserve_events(events.len());
        for e in events {
            history.push(e.at, e.instance, e.kind);
        }

        let mut db = Database::new();
        let mut merged = ShardedReport {
            report: ManagerReport {
                history,
                db: Database::new(),
                commits: 0,
                restarts: cross_restarts,
                abort_reasons: Default::default(),
                deadlocks_resolved: 0,
                park_timeout_wakeups: 0,
                combiner: Default::default(),
                lock_transitions: 0,
                state_lock_acquires: 0,
                shard: 0,
            },
            per_shard,
            cross_shard_txns,
        };
        for r in reports {
            db.absorb(r.db);
            merged.report.commits += r.commits;
            merged.report.restarts += r.restarts;
            merged.report.deadlocks_resolved += r.deadlocks_resolved;
            merged.report.park_timeout_wakeups += r.park_timeout_wakeups;
            merged.report.lock_transitions += r.lock_transitions;
            merged.report.state_lock_acquires += r.state_lock_acquires;
            merged.report.combiner.merge(&r.combiner);
            merged.report.abort_reasons.merge(&r.abort_reasons);
        }
        merged.report.db = db;
        merged
    }
}
