//! The closed-loop runtime: worker threads draining a job queue through
//! the internal `LockManager`.
//!
//! Each worker owns one recycled [`Workspace`]; a job is the full life of
//! one transaction instance — begin, the template's steps (lock + data
//! operation at grant time, then the step's simulated computation),
//! commit. An abort (deadlock victim, 2PL-HP wound, OCC invalidation)
//! restarts the same job from step 0 on the same thread, exactly like the
//! simulator's slot reset.

use crate::jobs;
use crate::manager::{CommitOutcome, JobStats, LockManager, Outcome};
use rtdb_core::ProtocolKind;
use rtdb_storage::{Database, History, SerializationGraph, Workspace};
use rtdb_types::{InstanceId, Priority, TransactionSet, TxnId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration for one [`run`].
#[derive(Clone, Copy, Debug)]
pub struct RtConfig {
    /// Which concurrency-control protocol mediates lock requests.
    pub kind: ProtocolKind,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Wall-clock nanoseconds of busy-work per simulated tick of a step's
    /// duration. `0` skips the busy-work entirely (fastest, maximum
    /// contention churn — the test default).
    pub tick_ns: u64,
}

impl RtConfig {
    /// Defaults: 4 threads, no busy-work.
    pub fn new(kind: ProtocolKind) -> Self {
        RtConfig {
            kind,
            threads: 4,
            tick_ns: 0,
        }
    }

    /// Set the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the per-tick busy-work duration.
    pub fn with_tick_ns(mut self, tick_ns: u64) -> Self {
        self.tick_ns = tick_ns;
        self
    }
}

/// Per-job outcome, in commit order.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The committed instance.
    pub id: InstanceId,
    /// Its template's base priority.
    pub priority: Priority,
    /// Wall-clock begin→commit latency, including restarts.
    pub latency_ns: u64,
    /// Aborts this job absorbed before committing.
    pub restarts: u32,
    /// Times this job parked on a denied lock request.
    pub block_events: u32,
    /// Distinct lower-priority templates that ever blocked it.
    pub lower_blockers: Vec<TxnId>,
    /// Zero-based position in the global commit order.
    pub commit_index: u64,
}

/// Everything a [`run`] produced.
#[derive(Debug)]
pub struct RtResult {
    /// Protocol name (e.g. `"PCP-DA"`).
    pub protocol: String,
    /// Protocol kind that ran.
    pub kind: ProtocolKind,
    /// Worker threads used.
    pub threads: usize,
    /// The full event history, in install/commit linearization order.
    pub history: History,
    /// Final committed database state.
    pub db: Database,
    /// Jobs committed (always `jobs.len()` — every job retries to commit).
    pub committed: u64,
    /// Total aborts absorbed across all jobs.
    pub restarts: u64,
    /// Wait-for cycles broken by aborting a victim.
    pub deadlocks_resolved: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-job outcomes, sorted by commit order.
    pub jobs: Vec<JobReport>,
}

impl RtResult {
    /// The conflict graph `SG(H)` of the run's history.
    pub fn serialization_graph(&self) -> SerializationGraph {
        SerializationGraph::build(&self.history)
    }

    /// True if the history is conflict-serializable (acyclic `SG(H)`).
    pub fn is_conflict_serializable(&self) -> bool {
        self.serialization_graph().find_cycle().is_none()
    }

    /// Committed transactions per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.committed as f64 / secs
        } else {
            0.0
        }
    }
}

/// Execute `job_queue` on `config.threads` OS threads under
/// `config.kind`, returning the complete history, final database and
/// per-job reports. Every job runs to commit (aborts restart it), so the
/// run always drains the queue.
pub fn run(set: &TransactionSet, job_queue: &[InstanceId], config: RtConfig) -> RtResult {
    let manager = LockManager::new(set, config.kind);
    let next = AtomicUsize::new(0);
    let reports: Mutex<Vec<JobReport>> = Mutex::new(Vec::with_capacity(job_queue.len()));
    let threads = config.threads.max(1);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(set, job_queue, &manager, &next, &reports, config.tick_ns));
        }
    });
    let elapsed = start.elapsed();

    let report = manager.finish();
    let mut jobs = reports
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    jobs.sort_by_key(|j| j.commit_index);

    RtResult {
        protocol: config.kind.name().to_string(),
        kind: config.kind,
        threads,
        history: report.history,
        db: report.db,
        committed: report.commits,
        restarts: report.restarts,
        deadlocks_resolved: report.deadlocks_resolved,
        elapsed,
        jobs,
    }
}

/// Convenience: generate a seeded job list (see [`jobs::job_list`]) and
/// [`run`] it.
pub fn run_jobs(set: &TransactionSet, total: usize, seed: u64, config: RtConfig) -> RtResult {
    let queue = jobs::job_list(set, total, seed);
    run(set, &queue, config)
}

fn worker(
    set: &TransactionSet,
    job_queue: &[InstanceId],
    manager: &LockManager<'_>,
    next: &AtomicUsize,
    reports: &Mutex<Vec<JobReport>>,
    tick_ns: u64,
) {
    let mut ws = Workspace::new(InstanceId::first(TxnId(0)));
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&id) = job_queue.get(i) else {
            return;
        };
        let begun = Instant::now();
        let stats = execute_job(set, manager, id, &mut ws, tick_ns);
        let latency_ns = begun.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let report = JobReport {
            id,
            priority: set.priority_of(id.txn),
            latency_ns,
            restarts: stats.restarts,
            block_events: stats.block_events,
            lower_blockers: stats.lower_blockers,
            commit_index: stats.commit_index,
        };
        reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(report);
    }
}

/// Run one instance to commit, restarting from step 0 on every abort.
fn execute_job(
    set: &TransactionSet,
    manager: &LockManager<'_>,
    id: InstanceId,
    ws: &mut Workspace,
    tick_ns: u64,
) -> JobStats {
    let template = set.template(id.txn);
    let steps = template.steps.as_slice();
    manager.begin(id);
    'attempt: loop {
        ws.reset(id);
        for (step_index, step) in steps.iter().enumerate() {
            if let Some((item, mode)) = step.op.access() {
                match manager.acquire(id, step_index, item, mode, ws) {
                    Outcome::Done => {}
                    Outcome::Restart => continue 'attempt,
                }
            }
            spin_work(step.duration, tick_ns);
            // Early releases (and CCP's early installs) apply after every
            // *non-final* step; the final step's locks fall to commit.
            if step_index + 1 < steps.len() {
                match manager.step_done(id, step_index, ws) {
                    Outcome::Done => {}
                    Outcome::Restart => continue 'attempt,
                }
            }
        }
        match manager.commit(id, ws) {
            CommitOutcome::Committed(stats) => return stats,
            CommitOutcome::Restart => continue 'attempt,
        }
    }
}

/// Busy-wait for `duration` simulated ticks at `tick_ns` wall-clock
/// nanoseconds per tick. The runtime never sleeps inside a job: a blocked
/// *lock* parks on a condvar, but computation is modelled as CPU work.
fn spin_work(duration: rtdb_types::Duration, tick_ns: u64) {
    let ns = duration.raw().saturating_mul(tick_ns);
    if ns == 0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_nanos(ns);
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}
