//! The closed-loop runtime: worker threads draining a job queue through
//! the internal `LockManager`.
//!
//! Each worker owns one recycled [`Workspace`](rtdb_storage::Workspace);
//! a job is the full life of
//! one transaction instance — begin, the template's steps (lock + data
//! operation at grant time, then the step's simulated computation),
//! commit. An abort (deadlock victim, 2PL-HP wound, OCC invalidation)
//! restarts the same job from step 0 on the same thread, exactly like the
//! simulator's slot reset.

use crate::combining::{CombinerStats, DEFAULT_FAST_RETRIES, DEFAULT_PARK_GRACE};
use crate::histogram::LatencyHistogram;
use crate::jobs;
use crate::manager::{
    CommitOutcome, JobStats, ManagerKind, Outcome, WorkerCtx, DEFAULT_PARK_TIMEOUT,
};
use crate::sharded::{ShardStats, ShardedManager};
use crate::snapshot::{ReaderLog, SnapshotSide};
use rtdb_core::{AbortBreakdown, ProtocolKind};
use rtdb_storage::{Database, History, SerializationGraph, VersionedValue};
use rtdb_types::{InstanceId, LockMode, Priority, TransactionSet, TxnId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for one [`run`].
#[derive(Clone, Copy, Debug)]
pub struct RtConfig {
    /// Which concurrency-control protocol mediates lock requests.
    pub kind: ProtocolKind,
    /// Which lock-manager implementation mediates protocol state. The
    /// default ([`ManagerKind::Mutex`]) is the differential oracle;
    /// [`ManagerKind::Combining`] is the flat-combining delegation
    /// manager.
    pub manager: ManagerKind,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Wall-clock nanoseconds of busy-work per simulated tick of a step's
    /// duration. `0` skips the busy-work entirely (fastest, maximum
    /// contention churn — the test default).
    pub tick_ns: u64,
    /// Park `wait_timeout` safety net for blocked lock requests: on
    /// expiry the waiter re-runs the wake-up re-evaluation and a deadlock
    /// sweep itself, healing lost wake-ups and cycles that formed without
    /// a block event. The default (25 ms) never matters on the fast path;
    /// the admission dispatcher and latency-sensitive tests can tighten
    /// it.
    pub park_timeout: Duration,
    /// Lock-manager shards: items partition across this many independent
    /// per-shard managers (see the `sharded` module). `1` (the default)
    /// is the classic unsharded manager, bit-identical to earlier
    /// releases. Values above 1 require a shardable protocol
    /// ([`ProtocolKind::shardable`]) and are clamped to
    /// [`rtdb_core::MAX_SHARDS`].
    pub shards: usize,
    /// Combining-manager fast-path retry budget: how many times a worker
    /// attempts the opportunistic `try_lock` before publishing its
    /// operation to the combiner. Ignored by [`ManagerKind::Mutex`].
    pub fast_retries: u32,
    /// Combining-manager grace spin a parked operation waits before
    /// parking its thread. Ignored by [`ManagerKind::Mutex`].
    pub park_grace: Duration,
    /// Serve read-only transactions from multiversion snapshots instead
    /// of the lock manager. Effective only for protocols whose update
    /// model makes commit-stamp snapshots serializable (see
    /// `ProtocolKind::snapshot_exempt` — every workspace-model protocol;
    /// CCP's early installs disqualify it and its read-only jobs simply
    /// keep taking locks). Exempt jobs never touch the lock table, never
    /// raise the system ceiling, never block a writer and never abort.
    pub snapshot_reads: bool,
    /// Jittered exponential abort→restart delay (see [`RestartBackoff`]).
    pub backoff: RestartBackoff,
}

/// The abort→restart backoff policy: a victim sleeps a jittered,
/// exponentially growing delay before re-acquiring its locks, so a
/// deadlock victim cannot reform the identical cycle in the same instant
/// and starve the peer it was aborted for. Disable it only in
/// deterministic single-threaded tests, where restarts cannot race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartBackoff {
    /// Master switch; `false` restarts immediately (deterministic tests).
    pub enabled: bool,
    /// Lower bound on the per-tick cost estimate feeding the first delay:
    /// `base = 16 * max(tick_ns, base_floor_ns)`, i.e. roughly one job
    /// service time even when `tick_ns` is 0.
    pub base_floor_ns: u64,
    /// Hard cap on a single delay, so no victim is parked for a
    /// macroscopic slice of a run.
    pub cap_ns: u64,
}

impl Default for RestartBackoff {
    fn default() -> Self {
        RestartBackoff {
            enabled: true,
            base_floor_ns: 500,
            cap_ns: 4_000_000,
        }
    }
}

impl RtConfig {
    /// Defaults: mutex manager, 4 threads, no busy-work, 25 ms park
    /// timeout, snapshot reads off, default restart backoff.
    pub fn new(kind: ProtocolKind) -> Self {
        RtConfig {
            kind,
            manager: ManagerKind::default(),
            threads: 4,
            tick_ns: 0,
            park_timeout: DEFAULT_PARK_TIMEOUT,
            shards: 1,
            fast_retries: DEFAULT_FAST_RETRIES,
            park_grace: DEFAULT_PARK_GRACE,
            snapshot_reads: false,
            backoff: RestartBackoff::default(),
        }
    }

    /// Set the lock-manager shard count (1 = unsharded).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the combining fast-path retry budget.
    pub fn with_fast_retries(mut self, fast_retries: u32) -> Self {
        self.fast_retries = fast_retries;
        self
    }

    /// Set the combining parked-operation grace spin.
    pub fn with_park_grace(mut self, park_grace: Duration) -> Self {
        self.park_grace = park_grace;
        self
    }

    /// Select the lock-manager implementation.
    pub fn with_manager(mut self, manager: ManagerKind) -> Self {
        self.manager = manager;
        self
    }

    /// Set the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the per-tick busy-work duration.
    pub fn with_tick_ns(mut self, tick_ns: u64) -> Self {
        self.tick_ns = tick_ns;
        self
    }

    /// Set the park `wait_timeout` safety net.
    pub fn with_park_timeout(mut self, park_timeout: Duration) -> Self {
        self.park_timeout = park_timeout;
        self
    }

    /// Enable or disable the multiversion snapshot read path.
    pub fn with_snapshot_reads(mut self, on: bool) -> Self {
        self.snapshot_reads = on;
        self
    }

    /// Replace the restart-backoff policy.
    pub fn with_backoff(mut self, backoff: RestartBackoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Disable the restart backoff (deterministic tests only).
    pub fn without_backoff(mut self) -> Self {
        self.backoff.enabled = false;
        self
    }

    /// True when this run actually serves read-only jobs from snapshots:
    /// the switch is on *and* the protocol's update model permits it.
    pub fn snapshot_active(&self) -> bool {
        self.snapshot_reads && self.kind.snapshot_exempt()
    }
}

/// Per-job outcome, in commit order.
///
/// All `_ns` timestamps are wall-clock offsets from the run's start (the
/// admission front-end's `t0`, or the moment [`run`] spawned its workers
/// for the closed loop).
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The committed instance.
    pub id: InstanceId,
    /// Its template's base priority.
    pub priority: Priority,
    /// Wall-clock admission→commit latency, including restarts. Always
    /// exactly [`JobReport::queue_ns`] `+` [`JobReport::service_ns`].
    pub latency_ns: u64,
    /// Queueing delay: admission → a worker starting the job. Zero in the
    /// closed loop, where a worker *is* the admitter.
    pub queue_ns: u64,
    /// Service latency: worker start → commit, including restarts.
    pub service_ns: u64,
    /// Intended release time. The closed loop has no releases; there this
    /// equals the admission time.
    pub release_ns: u64,
    /// The tenant the originating request was billed to (0 — the default
    /// tenant — for every closed-loop job).
    pub tenant: u32,
    /// Absolute deadline (`release + period`, scaled to wall-clock ns by
    /// the submitter). `None` when the job carries no deadline — every
    /// closed-loop job.
    pub deadline_ns: Option<u64>,
    /// Commit completion time.
    pub commit_ns: u64,
    /// Aborts this job absorbed before committing.
    pub restarts: u32,
    /// Times this job parked on a denied lock request.
    pub block_events: u32,
    /// Distinct lower-priority templates that ever blocked it.
    pub lower_blockers: Vec<TxnId>,
    /// Zero-based position in the global commit order. Snapshot readers
    /// are ordered after every lock-path commit (they hold no position in
    /// the lock manager's commit stream — the serializability oracle
    /// places them by [`JobReport::snapshot`] instead).
    pub commit_index: u64,
    /// The commit stamp this job's reads were served at, when it ran on
    /// the lock-exempt snapshot path: it observed exactly the state after
    /// the first `snapshot` lock-path commits. `None` for lock-based jobs.
    pub snapshot: Option<u64>,
}

impl JobReport {
    /// True if the job committed after its deadline. Jobs without a
    /// deadline never miss.
    pub fn missed_deadline(&self) -> bool {
        self.deadline_ns.is_some_and(|d| self.commit_ns > d)
    }
}

/// Committed/missed counts of one base-priority level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PriorityMisses {
    /// The base-priority level ([`Priority::level`]).
    pub priority: u32,
    /// Jobs of this priority that committed.
    pub committed: u64,
    /// Of those, jobs that committed after their deadline.
    pub missed: u64,
}

impl PriorityMisses {
    /// Miss ratio `missed / committed` (0.0 when nothing committed).
    pub fn ratio(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.missed as f64 / self.committed as f64
        }
    }
}

/// Per-tenant admission/outcome accounting of one front-end run.
///
/// `committed + shed + rejected` equals the tenant's offered load — every
/// request a submitter pushed is exactly one of the three (a
/// [`crate::SubmitOutcome::Closed`] bounce counts as rejected).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant id ([`crate::JobRequest::tenant`]).
    pub tenant: u32,
    /// Jobs of this tenant that committed.
    pub committed: u64,
    /// Of those, jobs that committed after their deadline.
    pub missed: u64,
    /// Jobs shed from the admission queue before running.
    pub shed: u64,
    /// Jobs rejected at admission (full queue under
    /// [`crate::AdmissionPolicy::Reject`], or submitted after shutdown).
    pub rejected: u64,
}

impl TenantStats {
    /// Requests this tenant offered: `committed + shed + rejected`.
    pub fn offered(&self) -> u64 {
        self.committed + self.shed + self.rejected
    }

    /// Deadline-miss ratio over *committed* jobs (0.0 when none
    /// committed).
    pub fn miss_ratio(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.missed as f64 / self.committed as f64
        }
    }

    /// Fraction of *offered* requests that failed to meet their deadline
    /// for any reason — missed, shed, or rejected. A shed or rejected
    /// job never commits, so it never meets its deadline; this is the
    /// tenant-experienced failure ratio and the headline metric of the
    /// multi-tenant overload scenario.
    pub fn fail_ratio(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            (self.missed + self.shed + self.rejected) as f64 / offered as f64
        }
    }
}

/// Fold per-job reports and the admission queue's per-tenant shed/reject
/// counters into [`TenantStats`] rows, sorted by tenant id.
pub(crate) fn tenant_stats(
    jobs: &[JobReport],
    counts: &[crate::admission::TenantCounts],
) -> Vec<TenantStats> {
    let mut rows: Vec<TenantStats> = Vec::new();
    let row = |tenant: u32, rows: &mut Vec<TenantStats>| -> usize {
        match rows.iter().position(|r| r.tenant == tenant) {
            Some(i) => i,
            None => {
                rows.push(TenantStats {
                    tenant,
                    committed: 0,
                    missed: 0,
                    shed: 0,
                    rejected: 0,
                });
                rows.len() - 1
            }
        }
    };
    for job in jobs {
        let i = row(job.tenant, &mut rows);
        rows[i].committed += 1;
        if job.missed_deadline() {
            rows[i].missed += 1;
        }
    }
    for c in counts {
        let i = row(c.tenant, &mut rows);
        rows[i].shed += c.shed;
        rows[i].rejected += c.rejected;
    }
    rows.sort_by_key(|r| r.tenant);
    rows
}

/// Everything a [`run`] produced.
#[derive(Debug)]
pub struct RtResult {
    /// Protocol name (e.g. `"PCP-DA"`).
    pub protocol: String,
    /// Protocol kind that ran.
    pub kind: ProtocolKind,
    /// Lock-manager implementation that ran.
    pub manager: ManagerKind,
    /// Worker threads used.
    pub threads: usize,
    /// The full event history, in install/commit linearization order.
    pub history: History,
    /// Final committed database state.
    pub db: Database,
    /// Jobs committed (always `jobs.len()` — every job retries to commit).
    pub committed: u64,
    /// Total aborts absorbed across all jobs.
    pub restarts: u64,
    /// Why the manager aborted instances, by cause. Restarts the manager
    /// never saw (cross-shard no-wait self-aborts) are *not* included, so
    /// `abort_reasons.total() <= restarts`.
    pub abort_reasons: AbortBreakdown,
    /// Wait-for cycles broken by aborting a victim.
    pub deadlocks_resolved: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-job outcomes, sorted by commit order.
    pub jobs: Vec<JobReport>,
    /// Jobs the admission queue shed under
    /// [`crate::AdmissionPolicy::ShedOldest`] /
    /// [`crate::AdmissionPolicy::LeastSlack`]. Always 0 in the closed
    /// loop.
    pub shed: u64,
    /// Jobs the admission queue rejected under
    /// [`crate::AdmissionPolicy::Reject`] (or submitted after shutdown).
    /// Always 0 in the closed loop.
    pub rejected: u64,
    /// Per-tenant outcome accounting, sorted by tenant id. A single row
    /// for tenant 0 when nobody tagged tenants; empty in the closed loop.
    pub tenants: Vec<TenantStats>,
    /// Sheds per transaction template ([`rtdb_types::TxnId::index`]) —
    /// the per-priority shed telemetry (map through
    /// `set.priority_of`). Empty in the closed loop.
    pub shed_by_txn: Vec<u64>,
    /// Total admission→commit latency distribution, merged from the
    /// per-worker histograms after the threads joined.
    pub latency_hist: LatencyHistogram,
    /// Park-timeout safety-net firings: wake-ups (mutex manager) or
    /// nudge publications (combining manager) caused by a blocked
    /// request's `wait_timeout` expiring. Deterministic replays assert
    /// this is 0 — a nonzero count there would reveal a lost wake-up
    /// otherwise silently healed by the net.
    pub park_timeout_wakeups: u64,
    /// Combining-pass telemetry (all-zero under [`ManagerKind::Mutex`]).
    pub combiner: CombinerStats,
    /// Whether the snapshot read path was active for this run (the config
    /// switch was on *and* the protocol's update model permitted it).
    pub snapshot_reads: bool,
    /// Jobs that committed on the lock-exempt snapshot path (included in
    /// [`RtResult::committed`]).
    pub snapshots: u64,
    /// Final value of the lock table's monotone transition counter: every
    /// grant, release or conversion bumps it, so 0 proves the run never
    /// took a single lock.
    pub lock_transitions: u64,
    /// Longest per-item version chain the snapshot store ever held — the
    /// epoch GC's memory-flatness telemetry (0 when the path is off).
    pub mv_high_water: usize,
    /// Lock-manager shards the run used (1 = unsharded).
    pub shards: usize,
    /// Jobs whose template spans more than one shard (0 when
    /// [`RtResult::shards`] is 1).
    pub cross_shard_txns: u64,
    /// Per-shard telemetry, indexed by shard. Per-shard latency
    /// distributions, when a caller collects them, aggregate through
    /// [`LatencyHistogram::merge`] exactly like the per-worker histograms
    /// do.
    pub per_shard: Vec<ShardStats>,
}

impl RtResult {
    /// The conflict graph `SG(H)` of the run's history.
    pub fn serialization_graph(&self) -> SerializationGraph {
        SerializationGraph::build(&self.history)
    }

    /// `(reader, stamp)` for every job that committed on the snapshot
    /// path — the positions the snapshot serializability oracle needs.
    pub fn snapshot_stamps(&self) -> Vec<(InstanceId, u64)> {
        self.jobs
            .iter()
            .filter_map(|j| j.snapshot.map(|s| (j.id, s)))
            .collect()
    }

    /// True if the history is conflict-serializable (acyclic `SG(H)`).
    pub fn is_conflict_serializable(&self) -> bool {
        self.serialization_graph().find_cycle().is_none()
    }

    /// Committed transactions per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.committed as f64 / secs
        } else {
            0.0
        }
    }

    /// Committed jobs that missed their deadline.
    pub fn deadline_misses(&self) -> u64 {
        self.jobs.iter().filter(|j| j.missed_deadline()).count() as u64
    }

    /// Overall miss ratio over committed jobs (0.0 when nothing
    /// committed). Shed and rejected jobs are *not* counted as misses —
    /// they are reported separately ([`RtResult::shed`],
    /// [`RtResult::rejected`]).
    pub fn miss_ratio(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.deadline_misses() as f64 / self.jobs.len() as f64
        }
    }

    /// Per-priority deadline-miss accounting, highest priority first —
    /// directly comparable with the simulator's per-template miss
    /// metrics.
    pub fn misses_by_priority(&self) -> Vec<PriorityMisses> {
        let mut bands: Vec<PriorityMisses> = Vec::new();
        for job in &self.jobs {
            let level = job.priority.level();
            let band = match bands.iter_mut().find(|b| b.priority == level) {
                Some(b) => b,
                None => {
                    bands.push(PriorityMisses {
                        priority: level,
                        committed: 0,
                        missed: 0,
                    });
                    bands.last_mut().expect("just pushed")
                }
            };
            band.committed += 1;
            if job.missed_deadline() {
                band.missed += 1;
            }
        }
        bands.sort_by_key(|b| std::cmp::Reverse(b.priority));
        bands
    }
}

/// Execute `job_queue` on `config.threads` OS threads under
/// `config.kind`, returning the complete history, final database and
/// per-job reports. Every job runs to commit (aborts restart it), so the
/// run always drains the queue.
pub fn run(set: &TransactionSet, job_queue: &[InstanceId], config: RtConfig) -> RtResult {
    let threads = config.threads.max(1);
    let snap = snapshot_side(set, &config);
    let manager = ShardedManager::new(set, &config, snap.clone());
    let shards = manager.shard_count();
    let next = AtomicUsize::new(0);
    let reports: Mutex<Vec<JobReport>> = Mutex::new(Vec::with_capacity(job_queue.len()));

    let start = Instant::now();
    let latency_hist = std::thread::scope(|scope| {
        let manager = &manager;
        let next = &next;
        let reports = &reports;
        let config = &config;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let snap = snap.as_deref();
                scope.spawn(move || {
                    worker(
                        set, job_queue, manager, snap, next, reports, config, w, start,
                    )
                })
            })
            .collect();
        let mut hist = LatencyHistogram::new();
        for h in handles {
            hist.merge(&h.join().expect("worker panicked"));
        }
        hist
    });
    let elapsed = start.elapsed();

    let sharded = manager.finish();
    let mut report = sharded.report;
    let jobs = reports
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (jobs, snapshots, mv_high_water) =
        merge_snapshot_jobs(jobs, snap.as_deref(), &mut report.history, report.commits);

    RtResult {
        protocol: config.kind.name().to_string(),
        kind: config.kind,
        manager: config.manager,
        threads,
        history: report.history,
        db: report.db,
        committed: report.commits + snapshots,
        restarts: report.restarts,
        abort_reasons: report.abort_reasons,
        deadlocks_resolved: report.deadlocks_resolved,
        elapsed,
        jobs,
        shed: 0,
        rejected: 0,
        tenants: Vec::new(),
        shed_by_txn: Vec::new(),
        latency_hist,
        park_timeout_wakeups: report.park_timeout_wakeups,
        combiner: report.combiner,
        snapshot_reads: snap.is_some(),
        snapshots,
        lock_transitions: report.lock_transitions,
        mv_high_water,
        shards,
        cross_shard_txns: sharded.cross_shard_txns,
        per_shard: sharded.per_shard,
    }
}

/// Build the snapshot side-car when the run will actually use it.
pub(crate) fn snapshot_side(set: &TransactionSet, config: &RtConfig) -> Option<Arc<SnapshotSide>> {
    config
        .snapshot_active()
        .then(|| Arc::new(SnapshotSide::for_set(set, config.threads.max(1))))
}

/// Run epilogue shared with the admission front-end: merge the reader
/// logs into the history, offset reader commit indices past the
/// `lock_commits` lock-path commits, and re-sort the job reports into the
/// global commit order. Returns `(jobs, snapshots, mv_high_water)`.
pub(crate) fn merge_snapshot_jobs(
    mut jobs: Vec<JobReport>,
    snap: Option<&SnapshotSide>,
    history: &mut History,
    lock_commits: u64,
) -> (Vec<JobReport>, u64, usize) {
    let (snapshots, mv_high_water) = match snap {
        Some(side) => {
            side.merge_into(history);
            for j in jobs.iter_mut().filter(|j| j.snapshot.is_some()) {
                j.commit_index += lock_commits;
            }
            (side.committed(), side.store.high_water())
        }
        None => (0, 0),
    };
    jobs.sort_by_key(|j| j.commit_index);
    (jobs, snapshots, mv_high_water)
}

/// Convenience: generate a seeded job list (see [`jobs::job_list`]) and
/// [`run`] it.
pub fn run_jobs(set: &TransactionSet, total: usize, seed: u64, config: RtConfig) -> RtResult {
    let queue = jobs::job_list(set, total, seed);
    run(set, &queue, config)
}

/// Saturating `u128 → u64` nanosecond conversion for [`std::time::Duration`]s.
pub(crate) fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

#[allow(clippy::too_many_arguments)]
fn worker(
    set: &TransactionSet,
    job_queue: &[InstanceId],
    manager: &ShardedManager<'_>,
    snap: Option<&SnapshotSide>,
    next: &AtomicUsize,
    reports: &Mutex<Vec<JobReport>>,
    config: &RtConfig,
    worker_index: usize,
    t0: Instant,
) -> LatencyHistogram {
    let mut ctx = WorkerCtx::new(worker_index);
    let mut hist = LatencyHistogram::new();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&id) = job_queue.get(i) else {
            return hist;
        };
        let begun = Instant::now();
        let stats = execute_job(set, manager, snap, id, &mut ctx, config);
        let committed = Instant::now();
        let latency_ns = dur_ns(committed.duration_since(begun));
        hist.record(latency_ns);
        let report = JobReport {
            id,
            priority: set.priority_of(id.txn),
            latency_ns,
            // Closed loop: the worker admits and starts the job in the
            // same breath, so queueing delay is zero and service is the
            // whole latency.
            queue_ns: 0,
            service_ns: latency_ns,
            release_ns: dur_ns(begun.duration_since(t0)),
            tenant: 0,
            deadline_ns: None,
            commit_ns: dur_ns(committed.duration_since(t0)),
            restarts: stats.restarts,
            block_events: stats.block_events,
            lower_blockers: stats.lower_blockers,
            commit_index: stats.commit_index,
            snapshot: stats.snapshot,
        };
        reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(report);
    }
}

/// Run one instance to commit, restarting from step 0 on every abort.
/// Read-only jobs take the lock-free snapshot path when `snap` is live.
pub(crate) fn execute_job(
    set: &TransactionSet,
    manager: &ShardedManager<'_>,
    snap: Option<&SnapshotSide>,
    id: InstanceId,
    ctx: &mut WorkerCtx,
    config: &RtConfig,
) -> JobStats {
    let template = set.template(id.txn);
    if let Some(side) = snap {
        if template.is_read_only() {
            return execute_snapshot_job(set, side, id, ctx, config);
        }
    }
    let steps = template.steps.as_slice();
    manager.begin(id, ctx);
    let mut attempt: u32 = 0;
    'attempt: loop {
        if attempt > 0 {
            restart_backoff(id, attempt, config.tick_ns, &config.backoff);
        }
        attempt += 1;
        ctx.ws.reset(id);
        for (step_index, step) in steps.iter().enumerate() {
            if let Some((item, mode)) = step.op.access() {
                match manager.acquire(id, step_index, item, mode, ctx) {
                    Outcome::Done => {}
                    Outcome::Restart => continue 'attempt,
                }
            }
            spin_work(step.duration, config.tick_ns);
            // Early releases (and CCP's early installs) apply after every
            // *non-final* step; the final step's locks fall to commit.
            if step_index + 1 < steps.len() {
                match manager.step_done(id, step_index, ctx) {
                    Outcome::Done => {}
                    Outcome::Restart => continue 'attempt,
                }
            }
        }
        match manager.commit(id, ctx) {
            CommitOutcome::Committed(stats) => return stats,
            CommitOutcome::Restart => continue 'attempt,
        }
    }
}

/// The lock-exempt job body: pin a commit stamp once, resolve every read
/// against the version chains, commit without touching the manager. No
/// protocol decision runs, no lock-table transition happens, nothing can
/// block or abort this job, and the pinned stamp keeps the epoch GC from
/// reclaiming the versions it still needs.
fn execute_snapshot_job(
    set: &TransactionSet,
    side: &SnapshotSide,
    id: InstanceId,
    ctx: &mut WorkerCtx,
    config: &RtConfig,
) -> JobStats {
    let template = set.template(id.txn);
    let stamp = side.store.pin(ctx.worker);
    ctx.ws.reset(id);
    let mut reads = Vec::new();
    for step in &template.steps {
        if let Some((item, mode)) = step.op.access() {
            debug_assert_eq!(mode, LockMode::Read, "read-only template wrote");
            let vv = side
                .store
                .read_at(item, stamp)
                .unwrap_or(VersionedValue::INITIAL);
            let rec = ctx.ws.read_versioned(item, vv.value, vv.version);
            reads.push((item, rec.value, rec.version));
        }
        spin_work(step.duration, config.tick_ns);
    }
    side.store.unpin(ctx.worker);
    let ordinal = side.commit_reader(ctx.worker, ReaderLog { id, reads });
    JobStats {
        commit_index: ordinal,
        restarts: 0,
        block_events: 0,
        lower_blockers: Vec::new(),
        snapshot: Some(stamp),
    }
}

/// Jittered exponential delay between an abort and the restart it forces.
///
/// Protocols that resolve deadlocks by victim restart rely on the victim
/// *not* re-acquiring its locks in the same instant it was aborted: a
/// reader aborted out of a lock-upgrade cycle that immediately re-grabs
/// its shared lock reforms the identical cycle and starves the pending
/// writer indefinitely. Thread-scheduling latency used to provide that
/// gap by accident; inline combiner grants remove it, so the restart
/// delay is explicit — `sleep`, not spin, so the yielded CPU goes to the
/// transactions the victim was deadlocked with. Deterministically
/// jittered per `(instance, attempt)` so simultaneous victims
/// desynchronise instead of colliding again in lock-step.
fn restart_backoff(id: InstanceId, attempt: u32, tick_ns: u64, policy: &RestartBackoff) {
    if !policy.enabled {
        return;
    }
    // First delay ~ one job service time (a handful of steps at a few
    // ticks each), quadrupling per repeat so a victim caught behind a
    // convoy of conflicting higher-priority instances outwaits the whole
    // convoy within a few aborts. Capped so no victim is parked for a
    // macroscopic slice of a run.
    let base = 16 * tick_ns.max(policy.base_floor_ns);
    let ns = (base << (2 * (attempt - 1)).min(8)).min(policy.cap_ns);
    let seed = ((id.txn.0 as u64) << 32 | id.seq as u64)
        ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let jitter = 0.5 + rtdb_util::Rng::seed(seed).f64(); // [0.5, 1.5)
    std::thread::sleep(Duration::from_nanos((ns as f64 * jitter) as u64));
}

/// Busy-wait for `duration` simulated ticks at `tick_ns` wall-clock
/// nanoseconds per tick. The runtime never sleeps inside a job: a blocked
/// *lock* parks on a condvar, but computation is modelled as CPU work.
fn spin_work(duration: rtdb_types::Duration, tick_ns: u64) {
    let ns = duration.raw().saturating_mul(tick_ns);
    if ns == 0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_nanos(ns);
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}
